"""Legacy setup shim.

Kept so that ``pip install -e .`` works on environments without the
``wheel`` package (PEP 660 editable builds need it; ``setup.py
develop`` does not).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
