"""T8 — safe commutativity of binary set operators.

The checker verifies that ⊢″-accepted unions/intersections yield
∼-matching outcomes in both orders, over random operand pairs; plus
the bijection matcher itself (the ∼ oracle the theorem is stated with)
on object graphs of growing size.
"""

import pytest

import workloads
from repro.lang.ast import SetOp, SetOpKind
from repro.metatheory.theorems import check_safe_commutativity
from repro.model.types import SetType
from repro.semantics.bijection import find_bijection


def test_t8_random_unions(benchmark):
    import random

    from repro.metatheory.generators import QueryGenerator

    schema, ee, oe, machine, ctx, _ = workloads.random_suite(seed=501, n_queries=0)
    rng = random.Random(501)
    gen = QueryGenerator(schema, oe, rng, max_depth=3)
    pairs = []
    for _ in range(6):
        elem = gen.random_type(depth=0)
        pairs.append(
            SetOp(
                SetOpKind.UNION,
                gen.query(SetType(elem)),
                gen.query(SetType(elem)),
            )
        )

    def run():
        reports = [
            check_safe_commutativity(machine, ee, oe, q, max_paths=3_000)
            for q in pairs
        ]
        assert all(reports), [r.detail for r in reports if not r]
        return len(reports)

    benchmark(run)


def test_t8_add_add_commutes_up_to_bijection(benchmark):
    """Both operands create objects (A/A): ⊢″ accepts and the theorem's
    bijection absorbs the differing oid orders."""
    db = workloads.sigma4()
    q = db.parse(
        '{new Person(name: "l", address: "x")} union '
        '{new Person(name: "r", address: "y")}'
    )
    assert not db.commutation_conflicts(q)

    def run():
        return check_safe_commutativity(db.machine, db.ee, db.oe, q)

    report = benchmark(run)
    assert report, report.detail


@pytest.mark.parametrize("n", [4, 16, 64])
def test_bijection_matcher_scaling(benchmark, n):
    """The ∼ oracle on two renamed copies of an n-object graph."""
    from repro.lang.ast import IntLit, OidRef
    from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord

    def build(prefix):
        oe = ObjectEnv()
        members = set()
        for i in range(n):
            oid = f"@{prefix}_{i}"
            nxt = f"@{prefix}_{(i + 1) % n}"
            oe = oe.with_object(
                oid,
                ObjectRecord("P", (("k", IntLit(i % 7)), ("next", OidRef(nxt)))),
            )
            members.add(oid)
        ee = ExtentEnv({"Ps": ("P", frozenset(members))})
        return OidRef(f"@{prefix}_0"), ee, oe

    v1, ee1, oe1 = build("a")
    v2, ee2, oe2 = build("b")

    def run():
        return find_bijection(v1, ee1, oe1, v2, ee2, oe2)

    bij = benchmark(run)
    assert bij is not None and len(bij) == n
