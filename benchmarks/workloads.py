"""Shared workload builders for the benchmark harness.

The paper is a formal-semantics paper with no measured tables; the
artifacts to regenerate are its four figures (the formal systems), its
worked examples, and Theorems 1–8.  Every ``bench_*.py`` file in this
directory corresponds to one row of the experiment index in DESIGN.md
and draws its inputs from here, so the workloads are identical across
benchmarks and across runs (all generation is seeded).

Workloads:

* :func:`hr` — the §2 Employee/Manager database at a configurable
  scale;
* :func:`jack_jill` — the §1 P/F database (2 P objects, no F);
* :func:`sigma4` — the §4 Person/Employee database (Jack/Utah,
  Jill/NYC);
* :func:`random_suite` — seeded random (schema, store, machine, typed
  query list) tuples via :mod:`repro.metatheory.generators`.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager

from repro import obs
from repro.db.database import Database
from repro.lang.ast import Query
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.model.types import ClassType, Type
from repro.semantics.machine import Machine
from repro.typing.context import TypeContext

HR_ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    bool is_adult() { return this.age >= 18; }
}
class Manager extends Person (extent Managers) {
    attribute int level;
}
class Employee extends Person (extent Employees) {
    attribute int EmpID;
    attribute int GrossSalary;
    attribute Manager UniqueManager;
    int NetSalary(int TaxRate) { return this.GrossSalary - TaxRate; }
}
"""

JACK_JILL_ODL = """
class P extends Object (extent Ps) {
    attribute string name;
    string loop() { while (true) { } }
}
class F extends Object (extent Fs) {
    attribute string name;
    attribute P pal;
}
"""

SIGMA4_ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string address;
}
class Employee extends Person (extent Employees) {
}
"""

JACK_JILL_QUERY = """
{ (if size(Fs) = 0
   then struct(result: "Peter", witness: new F(name: "Peter", pal: p)).result
   else p.name)
  | p <- Ps }
"""

JACK_JILL_LOOP_QUERY = """
{ (if p.name = "Jack"
    then (if size(Fs) = 0 then p.loop() else "Jack")
    else struct(r: p.name, w: new F(name: "Peter", pal: p)).r)
  | p <- Ps }
"""

# Queries the typing/effects/reduction figures are exercised with, over
# the HR schema.  Chosen to cover every rule at least once.
HR_QUERIES = [
    "{ e.name | e <- Employees, e.GrossSalary > 4000 }",
    "{ struct(who: e.name, net: e.NetSalary(500)) | e <- Employees }",
    "{ e.UniqueManager.name | e <- Employees, e.is_adult() }",
    "select distinct p.name from p in Persons where p.age >= 18",
    "{ (Person) e | e <- Employees } union Persons",
    "size(Employees) + size(Managers) * 2",
    "exists e in Employees : e.GrossSalary > 5000",
    "forall e in Employees : e.age > 10",
    "{ struct(m: m.name, team: { e.EmpID | e <- Employees, "
    "e.UniqueManager == m }) | m <- Managers }",
    "if size(Managers) = 0 then {} else { m.level | m <- Managers }",
]


def hr(n_employees: int = 4, n_managers: int = 2) -> Database:
    """The §2 database at a given scale (seeded, deterministic)."""
    db = Database.from_odl(HR_ODL)
    rng = random.Random(11)
    managers = [
        db.insert("Manager", name=f"mgr{i}", age=40 + i, level=i % 4)
        for i in range(n_managers)
    ]
    for i in range(n_employees):
        db.insert(
            "Employee",
            name=f"emp{i}",
            age=20 + (i * 7) % 40,
            EmpID=i,
            GrossSalary=3500 + rng.randrange(2000),
            UniqueManager=managers[i % n_managers],
        )
    return db


def jack_jill(method_fuel: int = 500) -> Database:
    """The §1 database: P objects Jack and Jill, no F objects."""
    db = Database.from_odl(JACK_JILL_ODL, method_fuel=method_fuel)
    db.insert("P", name="Jack")
    db.insert("P", name="Jill")
    return db


def sigma4() -> Database:
    """The §4 database: Person Jack/Utah, Employee Jill/NYC."""
    db = Database.from_odl(SIGMA4_ODL)
    db.insert("Person", name="Jack", address="Utah")
    db.insert("Employee", name="Jill", address="NYC")
    return db


class BenchObs:
    """Per-benchmark observability: wall-times, steps, rule histograms.

    ``measure(name)`` wraps one benchmark in an ``obs`` span and
    records its wall-time; when instrumentation is enabled (set
    ``REPRO_BENCH_OBS=1``) it also diffs the ``rule_fired_total``
    counters, so each record carries the Figure 2/4 rule histogram and
    the step count of everything that ran inside.  ``write()`` dumps
    the collected records as ``BENCH_obs.json`` — the machine-readable
    bench trajectory the ROADMAP's perf work diffs against.

    Wall-time is recorded unconditionally (a ``perf_counter`` pair);
    the machine's own instrumentation stays off unless opted into, so
    default benchmark numbers are unaffected.
    """

    def __init__(self, path: str | None = None):
        self.path = path or os.environ.get(
            "REPRO_BENCH_OBS_PATH", "BENCH_obs.json"
        )
        self.records: dict[str, dict] = {}

    @staticmethod
    def _rule_counts() -> dict[str, float]:
        return {
            dict(labels).get("rule", ""): value
            for labels, value in
            obs.REGISTRY.counter_values("rule_fired_total").items()
        }

    @contextmanager
    def measure(self, name: str):
        before = self._rule_counts() if obs.enabled() else {}
        start = time.perf_counter()
        with obs.span("bench", name=name):
            yield
        elapsed = time.perf_counter() - start
        record: dict = {"wall_time_s": elapsed}
        if obs.enabled():
            after = self._rule_counts()
            rules = {
                rule: int(n - before.get(rule, 0))
                for rule, n in after.items()
                if n - before.get(rule, 0) > 0
            }
            record["rules"] = rules
            record["steps"] = sum(rules.values())
        self.records[name] = record

    def write(self) -> str:
        with open(self.path, "w", encoding="utf-8") as fp:
            json.dump(self.records, fp, indent=2, sort_keys=True)
            fp.write("\n")
        return self.path


def random_suite(
    seed: int,
    n_queries: int,
    *,
    depth: int = 4,
    allow_new: bool = True,
):
    """(schema, ee, oe, machine, ctx, queries): a seeded random workload."""
    rng = random.Random(seed)
    schema = make_random_schema(rng)
    ee, oe, supply = make_random_store(schema, rng)
    machine = Machine(schema, oid_supply=supply)
    gen = QueryGenerator(schema, oe, rng, allow_new=allow_new, max_depth=depth)
    queries: list[Query] = [gen.query(gen.random_type()) for _ in range(n_queries)]
    oid_types: dict[str, Type] = {
        oid: ClassType(rec.cname) for oid, rec in oe.items()
    }
    ctx = TypeContext(schema, vars=oid_types)
    return schema, ee, oe, machine, ctx, queries


REF_GRAPH_ODL = """
class Node extends Object (extent nodes) {
    attribute int tag;
}
class Ref extends Node (extent refs) {
    attribute Node next;
}
"""


def ref_graph(edges: dict) -> Database:
    """A Node/Ref database holding an arbitrary reference graph.

    ``edges`` maps node names to their ``next`` target (or None for a
    leaf).  Installed by direct env construction — the public
    ``insert`` cannot create cycles, and the traverse benchmarks need
    both cyclic and acyclic shapes at scale.
    """
    from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord
    from repro.lang.ast import IntLit, OidRef

    db = Database.from_odl(REF_GRAPH_ODL)
    recs, refs, nodes = {}, set(), set()
    for i, (name, tgt) in enumerate(sorted(edges.items())):
        oid = f"@{name}"
        if tgt is None:
            recs[oid] = ObjectRecord("Node", (("tag", IntLit(i)),))
            nodes.add(oid)
        else:
            recs[oid] = ObjectRecord(
                "Ref", (("tag", IntLit(i)), ("next", OidRef(f"@{tgt}")))
            )
            refs.add(oid)
    db.ee = ExtentEnv(
        {"nodes": ("Node", frozenset(nodes)), "refs": ("Ref", frozenset(refs))}
    )
    db.oe = ObjectEnv(recs)
    return db


def random_tree(n: int, seed: int = 1) -> dict:
    """A seeded random ``n``-node tree (edges point child -> parent)."""
    rng = random.Random(seed)
    edges = {"n00000": None}
    for i in range(1, n):
        edges[f"n{i:05d}"] = f"n{rng.randrange(i):05d}"
    return edges


def ring(n: int) -> dict:
    """One ``n``-node cycle."""
    return {f"c{i:05d}": f"c{(i + 1) % n:05d}" for i in range(n)}
