"""Replication benchmark workloads → ``BENCH_replica.json``.

Measures what WAL-shipped read replicas buy a scheduled batch: with no
replicas, every writer serialises behind every earlier read it
conflicts with (admission order is the law); with replicas attached,
those same reads are **pinned** — they capture an immutable (EE, OE)
snapshot from a covering replica at admission and leave the conflict
graph entirely, so the writer chain starts immediately and overlaps
the read wave.

**The cost model.**  As in ``sched_workloads.py`` the win is latency
hiding, made explicit with injected I/O latency (``FaultPlan``,
``kind="latency"``): every ``store.read`` carries the cost of a remote
page read, every ``commit`` the cost of a durable write.  The batch is
a wave of distinct read-only queries followed by a chain of writers
sized so the two phases take comparable wall time — a no-replica run
pays read-wave *plus* writer-chain (the first writer conflicts with
every read), a replicated run pays ``max`` of the two.  The theoretical
ceiling is therefore 2.0×; the gate is ≥1.8× at 4 replicas.

The run is also differential: both runs must answer every query with
exactly the values the other produced (reads answer from the pre-batch
state in both schedules; writers allocate oids in admission order in
both), and the replicated run must have really pinned its reads and
routed none of them to the primary in degradation.

Usage::

    PYTHONPATH=src python benchmarks/replica_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/replica_workloads.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from workloads import hr  # noqa: E402

from repro.resilience.faults import FaultPlan, FaultRule, inject  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
SCALE = dict(n_employees=30, n_managers=3) if QUICK else dict(
    n_employees=80, n_managers=6
)
WORKERS = 8
N_REPLICAS = 4
#: reads per batch — kept below WORKERS so the first writer has a free
#: worker the moment it becomes ready (which, pinned, is immediately)
N_READS = 6
N_WRITES = 8
# sized so read wave ≈ writer chain (the 2.0× ceiling needs balance):
# one read costs ~1.6 store.read hits, the chain costs N_WRITES commits
READ_LATENCY = 0.11 if QUICK else 0.3  # injected per store.read
WRITE_LATENCY = 0.015 if QUICK else 0.04  # injected per commit
SPEEDUP_BAR = 1.8  # acceptance gate at 4 replicas


def batch() -> list[str]:
    """``N_READS`` distinct reads over Persons, then ``N_WRITES``
    Person-creating writers.

    Every writer carries ``A(Person)`` and every read ``R(Person)``, so
    without replicas the conflict graph makes the writer chain wait for
    the whole read wave; with replicas the reads pin (no earlier batch
    writer exists when they are admitted) and the chain starts at once.
    """
    reads = [
        f"{{ p.name | p <- Persons, p.age > {18 + 3 * i} }}"
        for i in range(N_READS)
    ]
    writes = [
        f'new Person(name: "burst{i}", age: {30 + i})'
        for i in range(N_WRITES)
    ]
    return reads + writes


def latency_plan() -> FaultPlan:
    return FaultPlan((
        FaultRule(site="store.read", every=1, kind="latency",
                  delay=READ_LATENCY),
        FaultRule(site="commit", every=1, kind="latency",
                  delay=WRITE_LATENCY),
    ))


def _open(directory: str):
    db = hr(**SCALE)
    # replication ships over the WAL, so both runs journal (sync=False:
    # the injected commit latency models durability cost, not the fsync)
    db.attach_wal(directory, sync=False)
    return db


def run_without_replicas(sources: list[str], directory: str):
    db = _open(directory)
    with inject(latency_plan()):
        start = time.perf_counter()
        res = db.run_many(sources, workers=WORKERS)
        wall = time.perf_counter() - start
    stats = dict(db._last_batch)
    db.close()
    return wall, [o.value for o in res], stats


def run_with_replicas(sources: list[str], directory: str):
    db = _open(directory)
    rset = db.replicate(N_REPLICAS)
    with inject(latency_plan()):
        start = time.perf_counter()
        res = db.run_many(sources, workers=WORKERS)
        wall = time.perf_counter() - start
    stats = dict(db._last_batch)
    routing = rset.snapshot()
    db.close()
    return wall, [o.value for o in res], stats, routing


def bench(sources: list[str]) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        base_wall, base_values, base_stats = run_without_replicas(
            sources, os.path.join(tmp, "baseline")
        )
        repl_wall, repl_values, repl_stats, routing = run_with_replicas(
            sources, os.path.join(tmp, "replicated")
        )
    # differential: same batch, two schedules, one answer — reads see
    # the pre-batch state in both (pinned snapshots ≡ conflict-graph
    # ordering), writers allocate oids in admission order in both
    assert base_values == repl_values, "replicated batch diverged"
    assert repl_stats["pinned_reads"] == N_READS, (
        f"expected every read pinned, got {repl_stats['pinned_reads']}"
    )
    assert routing["pinned"] == N_READS and routing["degraded"] == 0, (
        f"routing degraded: {routing}"
    )
    assert base_stats["pinned_reads"] == 0  # nothing to pin against
    speedup = base_wall / repl_wall if repl_wall > 0 else float("inf")
    row = {
        "workload": "read_wave_plus_writer_chain",
        "queries": len(sources),
        "reads": N_READS,
        "writes": N_WRITES,
        "workers": WORKERS,
        "replicas": N_REPLICAS,
        "no_replicas_s": round(base_wall, 4),
        "replicated_s": round(repl_wall, 4),
        "speedup": round(speedup, 2),
        "conflict_edges_without": base_stats["conflict_edges"],
        "conflict_edges_with": repl_stats["conflict_edges"],
        "pinned_reads": repl_stats["pinned_reads"],
        "routed_total": routing["routed"],
        "degraded_total": routing["degraded"],
    }
    print(
        f"{row['workload']:<28} {len(sources):>3} queries  "
        f"no-replicas {base_wall * 1e3:8.1f} ms  "
        f"x{N_REPLICAS} replicas {repl_wall * 1e3:8.1f} ms  "
        f"{speedup:5.2f}x  "
        f"(edges {base_stats['conflict_edges']} -> "
        f"{repl_stats['conflict_edges']}, "
        f"{repl_stats['pinned_reads']} pinned)"
    )
    return row


def main() -> int:
    rows = [bench(batch())]
    report = {
        "quick": QUICK,
        "scale": SCALE,
        "read_latency_s": READ_LATENCY,
        "write_latency_s": WRITE_LATENCY,
        "speedup_bar": SPEEDUP_BAR,
        "workloads": rows,
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_replica.json")
    with open(out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(out)}")
    gated = rows[0]
    if gated["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: replicated speedup {gated['speedup']}x "
            f"< {SPEEDUP_BAR}x bar at {N_REPLICAS} replicas"
        )
        return 1
    print(
        f"OK: replicated speedup {gated['speedup']}x >= {SPEEDUP_BAR}x "
        f"at {N_REPLICAS} replicas"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
