"""T5–T6 — effect subject reduction and progress.

Every reduction step's dynamic effect label, and the residual query's
inferred effect, must stay within the statically inferred ε (Theorem
5); and effect-typed non-values always step (Theorem 6).  The checkers
re-typecheck after *every* step, which is what the timings quantify.
"""

import workloads
from repro.effects.checker import EffectChecker
from repro.metatheory.theorems import check_progress, check_subject_reduction
from repro.semantics.evaluator import evaluate


def test_t5_per_step_effect_bound(benchmark):
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=301, n_queries=10, depth=4
    )

    def run():
        reports = [
            check_subject_reduction(machine, ee, oe, q) for q in queries
        ]
        assert all(reports), [r.detail for r in reports if not r]
        return len(reports)

    benchmark(run)


def test_t5_trace_containment_hr(benchmark):
    """On the curated suite: final trace ⊆ inferred effect, per query."""
    db = workloads.hr()
    ctx = db.type_context()
    checker = EffectChecker()
    pairs = []
    for src in workloads.HR_QUERIES:
        q = db.parse(src)
        _, static = checker.check(ctx, q)
        pairs.append((q, static))
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        ok = 0
        for q, static in pairs:
            trace = evaluate(machine, ee, oe, q).effect
            assert trace.subeffect_of(static)
            ok += 1
        return ok

    assert benchmark(run) == len(pairs)


def test_t5_strictness_gap(benchmark):
    """The inferred effect may strictly exceed the trace (the (Does)
    slack): conditionals whose untaken branch has effects."""
    db = workloads.hr()
    q = db.parse(
        'if size(Managers) < 0 then {new Person(name: "x", age: 1)} '
        "else { (Person) e | e <- Employees }"
    )
    ctx = db.type_context()
    checker = EffectChecker()
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        _, static = checker.check(ctx, q)
        trace = evaluate(machine, ee, oe, q).effect
        return static, trace

    static, trace = benchmark(run)
    assert trace.subeffect_of(static)
    assert trace != static  # A(Person) inferred but never performed


def test_t6_progress_with_effects(benchmark):
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=302, n_queries=10, depth=4
    )

    def run():
        reports = [check_progress(machine, ee, oe, q) for q in queries]
        assert all(reports)
        return len(reports)

    benchmark(run)
