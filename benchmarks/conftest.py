"""Benchmark-wide observability harness.

Every ``bench_*.py`` test is wrapped in an ``obs`` span and timed; the
collected records are written to ``BENCH_obs.json`` at session end
(name → wall-time, plus steps and the per-rule firing histogram when
``REPRO_BENCH_OBS=1`` turns the machine's instrumentation on).

By default instrumentation stays **off**, so pytest-benchmark numbers
are identical to an uninstrumented run — the JSON then carries
wall-times only.
"""

from __future__ import annotations

import os

import pytest

import workloads
from repro import obs

HARNESS = workloads.BenchObs()


def pytest_configure(config: pytest.Config) -> None:
    if os.environ.get("REPRO_BENCH_OBS", "") not in ("", "0"):
        obs.enable()


@pytest.fixture(autouse=True)
def bench_obs(request: pytest.FixtureRequest):
    with HARNESS.measure(request.node.name):
        yield


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if HARNESS.records:
        HARNESS.write()
    if obs.enabled():
        obs.disable()
