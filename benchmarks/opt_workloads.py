"""Optimizer v2 benchmark workloads → ``BENCH_opt.json``.

Measures the statistics-driven optimizer against the v1 constants-only
cost model on three gated workloads:

**skewed_join** (gate: ≥3×).  A two-extent join whose two range
predicates have wildly different true selectivities (one keeps ~0.25%,
the other ~99.5%).  The v1 model prices both at the flat 0.5 default,
so the orders tie and the written (bad) order survives; the v2 model's
equi-depth histograms discriminate, and the reorder search flips the
selective side to the outer position.  Both plans are executed and the
values compared — the win must come with identical answers.

**adaptive_replan** (gates: ≥1 replan, identical results).  A derived
source (nested intersect) whose compile-time estimate is ~8 rows but
whose observed cardinality is hundreds.  The first execution aborts on
the misestimate, recompiles with the observation as a cardinality
override — flipping the join order — and restarts.  The replanned value
must equal the sequential big-step run's (Theorem 4: the plan is
read-only, so a restart cannot change observables).

**misestimate_p90** (gate: p90 ≤ 4).  ``explain_analyze`` over a mixed
workload on skewed data; every operator's symmetric misestimate factor
``max(actual/est, est/actual)`` is pooled and the 90th percentile
gated.  This is the accuracy claim behind the other two: the stats
catalog prices what actually happens.

Usage::

    PYTHONPATH=src python benchmarks/opt_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/opt_workloads.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.db.database import Database  # noqa: E402
from repro.exec.cache import PlanEntry  # noqa: E402
from repro.exec.compiler import compile_plan  # noqa: E402
from repro.exec.engine import execute_plan  # noqa: E402
from repro.obs.profile import misestimate_percentile  # noqa: E402
from repro.optimizer.cost import CostModel, cost_rules  # noqa: E402
from repro.optimizer.planner import optimize  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N = 700 if QUICK else 2000
JOIN_BAR = 3.0
P90_BAR = 4.0

ODL = """
class A extends Object (extent As) {
    attribute int val;
    attribute int grp;
}
class B extends Object (extent Bs) {
    attribute int val;
    attribute int id;
}
class Tiny extends Object (extent Tinys) {
    attribute int n;
}
"""


def build() -> Database:
    db = Database.from_odl(ODL)
    for i in range(N):
        # grp is heavily skewed: value 0 holds 90% of the rows
        db.insert("A", val=i, grp=0 if i % 10 != 9 else i)
    for i in range(N):
        db.insert("B", val=i, id=i)
    for i in range(10):
        db.insert("Tiny", n=i)
    db.analyze()
    return db


def compile_with(db: Database, src: str, model: CostModel):
    """One query through the optimize+compile pipeline under ``model``."""
    q = db.parse(src)
    _, eff = db.typecheck_with_effect(q)
    normalised = optimize(db, q, cost_rules(model), model=model).query
    plan = compile_plan(
        db.schema,
        db._definitions,
        normalised,
        method_mode=db.method_mode,
        method_fuel=db.machine.method_fuel,
        cost_model=model,
    )
    return PlanEntry(
        plan=plan,
        reads=eff.reads(),
        static_effect=eff,
        stats_epoch=model.stats_epoch,
    )


def v1_model(db: Database) -> CostModel:
    """The pre-stats cost model: extent sizes + System-R constants."""
    return CostModel({e: len(db.ee.members(e)) for e in db.ee.names()})


def timed_plan(db: Database, entry: PlanEntry) -> tuple[float, object]:
    start = time.perf_counter()
    value, _, _ = execute_plan(db, entry)
    return time.perf_counter() - start, value


def bench_skewed_join() -> dict:
    db = build()
    db.replan_ratio = None  # isolate planning quality from replanning
    lo = max(1, N // 400)  # a.val < lo keeps ~0.25%
    hi = N - max(1, N // 200)  # b.val < hi keeps ~99.5%
    src = (
        f"{{ struct(x: a.val, y: b.val) | b <- Bs, a <- As, "
        f"b.val < {hi}, a.val < {lo} }}"
    )
    v1_entry = compile_with(db, src, v1_model(db))
    v2_entry = compile_with(db, src, CostModel.from_database(db))
    v1_s, v1_val = timed_plan(db, v1_entry)
    v2_s, v2_val = timed_plan(db, v2_entry)
    assert v1_val == v2_val, "skewed_join: plans disagree on the answer"
    speedup = v1_s / v2_s if v2_s > 0 else float("inf")
    row = {
        "workload": "skewed_join",
        "rows_per_extent": N,
        "v1_constants_s": round(v1_s, 4),
        "v2_stats_s": round(v2_s, 4),
        "speedup": round(speedup, 2),
        "result_rows": len(v1_val.items),
        "gated": True,
        "bar": JOIN_BAR,
    }
    print(
        f"skewed_join        v1 {v1_s * 1e3:8.1f} ms  "
        f"v2 {v2_s * 1e3:8.1f} ms  {speedup:5.2f}x"
    )
    return row


def bench_adaptive_replan() -> dict:
    db = build()
    src = (
        "{ struct(a: s.val, b: t.n) | s <- (As intersect "
        "(As intersect (As intersect As))), t <- Tinys }"
    )
    start = time.perf_counter()
    first = db.run(src, commit=False)
    first_s = time.perf_counter() - start
    replans = db._qstats["replans"]
    start = time.perf_counter()
    second = db.run(src, commit=False)
    second_s = time.perf_counter() - start
    sequential = db.run(src, commit=False, engine="bigstep")
    identical = (
        first.value == sequential.value and second.value == sequential.value
    )
    dec = db.plan_decision(db.parse(src))
    note = next(
        (n for n in dec.plan.notes if n.startswith("replan:")), None
    )
    row = {
        "workload": "adaptive_replan",
        "rows_per_extent": N,
        "replans": replans,
        "replan_note": note,
        "first_run_s": round(first_s, 4),
        "replanned_run_s": round(second_s, 4),
        "results_identical_to_sequential": identical,
        "gated": True,
    }
    print(
        f"adaptive_replan    replans={replans}  identical={identical}  "
        f"({note})"
    )
    return row


def bench_misestimate_p90() -> dict:
    db = build()
    lo, mid = max(1, N // 100), N // 2
    workload = [
        "{ a.val | a <- As }",
        f"{{ a.val | a <- As, a.val < {lo} }}",
        f"{{ a.val | a <- As, a.val < {mid} }}",
        f"{{ a.val | a <- As, a.val >= {mid} }}",
        "{ a.val | a <- As, a.grp = 0 }",  # the hot key
        f"{{ a.val | a <- As, a.grp = {N + 1} }}",  # absent key
        f"{{ struct(x: a.val, y: b.id) | a <- As, b <- Bs, "
        f"a.val = b.id, b.val < {mid} }}",
        f"{{ b.id | b <- Bs, b.id = {mid} }}",
        "{ struct(x: a.grp, y: t.n) | a <- As, t <- Tinys, "
        "a.grp = t.n }",
    ]
    factors: list[float] = []
    per_query = {}
    for src in workload:
        prof = db.explain_analyze(src)
        p = misestimate_percentile(prof.nodes, 1.0)  # worst node
        per_query[src] = round(p, 2)
        for node in prof.nodes:
            r = node.misestimate
            if r is None:
                factors.append(p)
            elif r > 0:
                factors.append(max(r, 1.0 / r))
    factors.sort()
    p90 = factors[min(len(factors) - 1, int(0.9 * len(factors)))]
    row = {
        "workload": "misestimate_p90",
        "rows_per_extent": N,
        "queries": len(workload),
        "operators_scored": len(factors),
        "p90": round(p90, 2),
        "worst_factor_per_query": per_query,
        "gated": True,
        "bar": P90_BAR,
    }
    print(
        f"misestimate_p90    {len(factors)} operators  p90={p90:.2f}  "
        f"(bar {P90_BAR})"
    )
    return row


def main() -> int:
    rows = [
        bench_skewed_join(),
        bench_adaptive_replan(),
        bench_misestimate_p90(),
    ]
    report = {
        "quick": QUICK,
        "rows_per_extent": N,
        "join_bar": JOIN_BAR,
        "p90_bar": P90_BAR,
        "workloads": rows,
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_opt.json")
    with open(out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(out)}")
    failed = False
    by_name = {r["workload"]: r for r in rows}
    sj = by_name["skewed_join"]
    if sj["speedup"] < sj["bar"]:
        print(f"FAIL: skewed_join {sj['speedup']}x < {sj['bar']}x bar")
        failed = True
    else:
        print(f"OK: skewed_join {sj['speedup']}x >= {sj['bar']}x")
    ar = by_name["adaptive_replan"]
    if ar["replans"] < 1 or not ar["results_identical_to_sequential"]:
        print(
            f"FAIL: adaptive_replan replans={ar['replans']} "
            f"identical={ar['results_identical_to_sequential']}"
        )
        failed = True
    else:
        print(f"OK: adaptive_replan {ar['replans']} replan(s), identical")
    mp = by_name["misestimate_p90"]
    if mp["p90"] > mp["bar"]:
        print(f"FAIL: misestimate_p90 {mp['p90']} > {mp['bar']} bar")
        failed = True
    else:
        print(f"OK: misestimate_p90 {mp['p90']} <= {mp['bar']}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
