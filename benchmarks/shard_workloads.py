"""Sharding benchmark workloads → ``BENCH_shard.json``.

Measures the sharded engine (``Database.shard(C, k=8, by=attr)``)
against the identical unsharded database on two gated workloads:

**pruned_read_mix** (gate: ≥2.5×, quick ≥2.0×).  A mixed read/write
loop over shard-partitionable scan/filter and hash-join queries — every
query carries a shard-attribute equality, so the compiled plan confines
each access to one shard.  Each iteration commits one single-shard
insert, then re-runs the query mix.  The sharded engine wins three
ways, all algorithmic (GIL-oblivious):

* *per-shard index partials*: the write dirties one shard, so the next
  probe rebuilds 1/k of the attribute index instead of all of it;
* *per-shard result-cache survival*: cached answers whose recorded
  dynamic reads are confined to untouched shards are promoted, not
  evicted (Theorem 5 refined to shard granularity), so most queries in
  the mix never re-execute;
* *pruned probes/scans*: a cold query touches one shard's rows, not
  the extent's.

The unsharded engine pays a full index rebuild and a full result-cache
eviction per write — exactly the wholesale-commit behaviour this PR
replaces.

**disjoint_writers** (gate: ≥1.5×, quick ≥1.3×).  A ``run_many`` batch
of ``new Person(...)`` writers spread across shards, under injected
``machine.step`` latency (the resilience layer's ``kind="latency"`` —
how a remote store round-trip behaves; the sleeps release the GIL).
With per-shard conflict refinement, A(C)-writers into *disjoint* shards
commute under merge-install and overlap; the unsharded conflict graph
serialises every A(C)/A(C) pair.  Throughput is writers per second.

**parallel_scan** (informational, ungated).  A whole-extent scan under
injected ``exec.shard`` latency: the per-shard pipelines overlap the
per-task stall on the worker pool.  Recorded for telemetry — on one
core the win is latency hiding, and the unsharded engine never visits
``exec.shard``, so there is no like-for-like ratio to gate.

Usage::

    PYTHONPATH=src python benchmarks/shard_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/shard_workloads.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.db.database import Database  # noqa: E402
from repro.resilience.faults import FaultPlan, FaultRule, inject  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
K = 8
REGIONS = 16
SCALE = (
    dict(n_persons=1500, n_orders=375, iters=4)
    if QUICK
    else dict(n_persons=6000, n_orders=1500, iters=8)
)
READ_BAR = 2.0 if QUICK else 2.5
WRITE_BAR = 1.3 if QUICK else 1.5
STEP_LATENCY = 0.002  # injected per machine.step in the writer batch
SHARD_LATENCY = 0.004  # injected per exec.shard task in the scan row

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string region;
    attribute int age;
}
class Order extends Object (extent Orders) {
    attribute string item;
    attribute string region;
    attribute int qty;
}
"""


def build(sharded: bool) -> Database:
    """The same seed data either way; only the layout differs."""
    db = Database.from_odl(ODL)
    if sharded:
        db.shard("Person", k=K, by="region")
        db.shard("Order", k=K, by="region")
    for i in range(SCALE["n_persons"]):
        db.insert(
            "Person",
            name=f"p{i}",
            region=f"r{i % REGIONS}",
            age=i % 80,
        )
    for i in range(SCALE["n_orders"]):
        db.insert(
            "Order", item=f"it{i}", region=f"r{i % REGIONS}", qty=i % 9
        )
    return db


def read_mix() -> list[str]:
    """Partitionable scan/filter and hash-join queries, all confined by
    a shard-attribute equality, spread across the shards."""
    mix = [
        f'{{ p.name | p <- Persons, p.region = "r{j}", p.age > 10 }}'
        for j in range(1, 9)
    ]
    mix += [
        f'{{ o.item | o <- Orders, o.region = "r{j}", o.qty > 2 }}'
        for j in range(1, 5)
    ]
    # two-extent hash join: the probe key (p.region, a literal after the
    # first equality) prunes the Orders-side index build to one shard
    mix += [
        f'{{ struct(n: p.name, it: o.item) | '
        f'p <- Persons, p.region = "r{j}", '
        f'o <- Orders, p.region = o.region, o.qty > 5 }}'
        for j in range(1, 3)
    ]
    return mix


def canon(values: list) -> list:
    return [sorted(v.items, key=repr) for v in values]


def run_read_mix(db: Database) -> tuple[float, list]:
    qs = [db.parse(s) for s in read_mix()]
    for q in qs:  # warm plan + result caches in both modes alike
        db.run(q)
    out = []
    start = time.perf_counter()
    for it in range(SCALE["iters"]):
        db.insert("Person", name=f"w{it}", region="r0", age=30)
        for q in qs:
            out.append(db.run(q).value)
    return time.perf_counter() - start, out


def bench_read_mix() -> dict:
    sharded_s, sharded_vals = run_read_mix(build(True))
    plain_s, plain_vals = run_read_mix(build(False))
    assert canon(sharded_vals) == canon(plain_vals), (
        "pruned_read_mix: sharded run diverged from unsharded"
    )
    speedup = plain_s / sharded_s if sharded_s > 0 else float("inf")
    row = {
        "workload": "pruned_read_mix",
        "queries_per_iter": len(read_mix()),
        "iters": SCALE["iters"],
        "shards": K,
        "unsharded_s": round(plain_s, 4),
        "sharded_s": round(sharded_s, 4),
        "speedup": round(speedup, 2),
        "gated": True,
        "bar": READ_BAR,
    }
    print(
        f"pruned_read_mix    unsharded {plain_s * 1e3:8.1f} ms  "
        f"sharded {sharded_s * 1e3:8.1f} ms  {speedup:5.2f}x"
    )
    return row


def writer_batch(n: int) -> list[str]:
    return [
        f'new Person(name: "batch{i}", region: "r{i % K}", age: {20 + i})'
        for i in range(n)
    ]


def build_writer_seed(sharded: bool) -> Database:
    """A small seed for the writer gate: the claim is about commit
    overlap, not extent size, and a big extent only adds identical
    serial per-commit cost to both sides."""
    db = Database.from_odl(ODL)
    if sharded:
        db.shard("Person", k=K, by="region")
    for i in range(400):
        db.insert(
            "Person", name=f"p{i}", region=f"r{i % K}", age=i % 80
        )
    return db


def bench_disjoint_writers() -> dict:
    n = 12 if QUICK else 16
    plan = FaultPlan(
        (
            FaultRule(
                site="machine.step",
                every=1,
                kind="latency",
                delay=STEP_LATENCY,
            ),
        )
    )
    walls = {}
    conflicts = {}
    for sharded in (True, False):
        db = build_writer_seed(sharded)
        batch = writer_batch(n)
        with inject(plan):
            start = time.perf_counter()
            res = db.run_many(batch, workers=8)
            walls[sharded] = time.perf_counter() - start
        conflicts[sharded] = res.conflict_edges
        assert (
            len(db.ee.members("Persons")) == 400 + n
        ), "disjoint_writers: lost a committed insert"
    speedup = walls[False] / walls[True] if walls[True] > 0 else float("inf")
    row = {
        "workload": "disjoint_writers",
        "writers": n,
        "workers": 8,
        "step_latency_s": STEP_LATENCY,
        "serialized_s": round(walls[False], 4),
        "sharded_s": round(walls[True], 4),
        "throughput_serialized_wps": round(n / walls[False], 1),
        "throughput_sharded_wps": round(n / walls[True], 1),
        "conflict_edges_serialized": conflicts[False],
        "conflict_edges_sharded": conflicts[True],
        "speedup": round(speedup, 2),
        "gated": True,
        "bar": WRITE_BAR,
    }
    print(
        f"disjoint_writers   serialized {walls[False] * 1e3:6.1f} ms  "
        f"sharded {walls[True] * 1e3:6.1f} ms  {speedup:5.2f}x  "
        f"(conflict edges {conflicts[False]} -> {conflicts[True]})"
    )
    return row


def bench_parallel_scan() -> dict:
    """Ungated: per-shard pipelines overlapping injected task latency."""
    from repro.exec import parallel as _parallel

    saved = _parallel.MIN_ROWS
    _parallel.MIN_ROWS = 0  # force fan-out at benchmark scale
    try:
        plan = FaultPlan(
            (
                FaultRule(
                    site="exec.shard",
                    every=1,
                    kind="latency",
                    delay=SHARD_LATENCY,
                ),
            )
        )
        db = build(True)
        src = "{ p.name | p <- Persons, p.age > 40 }"
        db.run(src)  # warm the plan; distinct text below defeats reuse
        with inject(plan):
            start = time.perf_counter()
            got = db.run("{ p.name | p <- Persons, p.age > 41 }")
            wall = time.perf_counter() - start
        pool = _parallel.snapshot()
        rows = len(got.value.items)
    finally:
        _parallel.MIN_ROWS = saved
    return {
        "workload": "parallel_scan",
        "shards": K,
        "task_latency_s": SHARD_LATENCY,
        "wall_s": round(wall, 4),
        "serial_latency_floor_s": K * SHARD_LATENCY,
        "rows_out": rows,
        "pool_workers": pool["workers"],
        "gated": False,
    }


def main() -> int:
    rows = [bench_read_mix(), bench_disjoint_writers(), bench_parallel_scan()]
    report = {
        "quick": QUICK,
        "scale": SCALE,
        "shards": K,
        "read_bar": READ_BAR,
        "write_bar": WRITE_BAR,
        "workloads": rows,
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_shard.json")
    with open(out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(out)}")
    failed = False
    for row in rows:
        if not row.get("gated"):
            continue
        if row["speedup"] < row["bar"]:
            print(
                f"FAIL: {row['workload']} speedup {row['speedup']}x "
                f"< {row['bar']}x bar"
            )
            failed = True
        else:
            print(
                f"OK: {row['workload']} speedup {row['speedup']}x "
                f">= {row['bar']}x"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
