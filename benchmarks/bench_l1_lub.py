"""L1 — the introduction's LUB observation.

"a least upper bound of two types need not necessarily exist (because
we have both classes and interfaces)!" — measured as: LUB computation
over class-only hierarchies (always defined), the search that exhibits
the failure once interfaces join, and the ODMG counterexample checked
on every run.
"""

import random

import pytest

from repro.model.lub import (
    InterfaceHierarchy,
    find_lub_failure,
    odmg_counterexample,
)
from repro.model.types import OBJECT


def _random_class_hierarchy(rng: random.Random, n: int) -> InterfaceHierarchy:
    parents: dict[str, str | None] = {}
    names = [f"C{i}" for i in range(n)]
    for i, name in enumerate(names):
        parents[name] = OBJECT if i == 0 else names[rng.randrange(i)]
    return InterfaceHierarchy(class_parent=parents)


@pytest.mark.parametrize("n", [8, 32, 128])
def test_class_only_lubs_always_exist(benchmark, n):
    h = _random_class_hierarchy(random.Random(n), n)
    names = sorted(h.class_parent)

    def run():
        lubs = 0
        for a in names:
            for b in names:
                assert h.lub(a, b) is not None
                lubs += 1
        return lubs

    assert benchmark(run) == len(names) ** 2


def test_odmg_counterexample(benchmark):
    """The failure the paper points out, re-exhibited each run."""

    def run():
        h = odmg_counterexample()
        return h.lub("Clerk", "Temp"), h.minimal_upper_bounds("Clerk", "Temp")

    lub, mins = benchmark(run)
    assert lub is None
    assert mins == frozenset({"Payable", "Insurable"})


def test_failure_search(benchmark):
    """Cost of scanning a mixed hierarchy for pairs without a LUB."""
    h = InterfaceHierarchy(
        class_parent={f"C{i}": OBJECT for i in range(12)},
        implements={
            f"C{i}": frozenset({"I", "J"} if i % 3 == 0 else {"I"})
            for i in range(12)
        },
        iface_parents={"I": frozenset(), "J": frozenset()},
    )

    def run():
        return find_lub_failure(h)

    failure = benchmark(run)
    assert failure is not None
    a, b, mins = failure
    assert len(mins) == 2
