"""X1 — the §3.1 collection-kind extension (bags, lists) and the §6.2
ordered-iteration determinism observation.

The paper: "we have only provided one collection type, set, although we
could have easily added others (bags, lists)" (§3.1) and, on XQuery:
"defines a deterministic query language (the iteration is over
sequences)" (§6.2).  The benchmarks measure bag/list operator
evaluation and — the reproduction target — that list iteration
collapses the schedule space to exactly 1 while set iteration is n!.
"""

import math

import pytest

import workloads
from repro.semantics.explorer import explore


def test_bag_operator_throughput(benchmark):
    db = workloads.hr()
    queries = [
        db.parse(src)
        for src in [
            "bag(1, 2, 2) union bag(2, 3, 3)",
            "bag(1, 2, 2, 3, 3, 3) intersect bag(2, 3)",
            "bag(1, 2, 2, 3) except bag(2, 3, 3)",
            "size(bag(1, 1, 1, 1) union bag(2))",
            "toset(bag(1, 1, 2, 2, 3))",
        ]
    ]

    def run():
        return [db.run(q, commit=False).value for q in queries]

    values = benchmark(run)
    assert len(values) == 5


def test_list_pipeline(benchmark):
    db = workloads.hr()
    q = db.parse("{ x * x | x <- list(1, 2, 3, 4, 5) union list(6, 7) }")

    def run():
        return db.run(q, commit=False)

    result = benchmark(run)
    assert result.python() == frozenset({1, 4, 9, 16, 25, 36, 49})


@pytest.mark.parametrize("n", [3, 4, 5])
def test_schedule_space_set_vs_list(benchmark, n):
    """The headline shape: n! schedules for a set, exactly 1 for the
    same elements in a list."""
    db = workloads.hr()
    items = ", ".join(str(i) for i in range(n))
    set_q = db.parse(f"{{ x | x <- {{{items}}} }}")
    list_q = db.parse(f"{{ x | x <- list({items}) }}")

    def run():
        ex_set = explore(db.machine, db.ee, db.oe, set_q)
        ex_list = explore(db.machine, db.ee, db.oe, list_q)
        return ex_set.paths, ex_list.paths

    set_paths, list_paths = benchmark(run)
    assert set_paths == math.factorial(n)
    assert list_paths == 1


def test_interfering_body_list_vs_set(benchmark):
    """⊢′ rejects the interfering body over a set but accepts it over a
    list (ordered iteration ⇒ deterministic), and the dynamic check
    agrees."""
    db = workloads.jack_jill()
    body = (
        '(if size(Fs) = 0 '
        ' then struct(r: "a", w: new F(name: "a", pal: p)).r '
        ' else p.name)'
    )
    set_src = "{ %s | p <- Ps }" % body
    # iterate P objects in a *fixed* list order instead
    (o1, o2) = sorted(db.extent("Ps"))
    list_src = "{ %s | p <- list(%s, %s) }" % (body, o1, o2)

    def run():
        return (
            db.is_deterministic(set_src),
            db.is_deterministic(list_src),
            db.explore(list_src).paths,
        )

    set_ok, list_ok, list_paths = benchmark(run)
    assert not set_ok
    assert list_ok
    assert list_paths == 1
