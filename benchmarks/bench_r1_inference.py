"""R1 — schema-requirements inference (the paper's citation [23]).

"We require that the types of the parameters are given (we do not
provide type inference for definitions; this has been considered
elsewhere for ODMG OQL [23])" — §3.1.  This experiment exercises our
implementation of [23]'s idea: inference throughput on schema-less
queries, and agreement with the Figure 1 checker (every requirement
report of a checkable query is satisfied by the schema it was written
against).
"""

import pytest

import workloads
from repro.lang.parser import parse_query
from repro.typing.inference import check_against, infer_requirements

SCHEMALESS = [
    "{ e.name | e <- Employees, e.GrossSalary > 4000 }",
    "{ struct(who: e.name, net: e.NetSalary(500)) | e <- Employees }",
    "{ e.UniqueManager.name | e <- Employees, e.is_adult() }",
    "size(Employees) + size(Managers) * 2",
    "exists e in Employees : e.GrossSalary > 5000",
    "{ struct(m: m.name, team: { e.EmpID | e <- Employees, "
    "e.UniqueManager == m }) | m <- Managers }",
]


def test_inference_throughput(benchmark):
    queries = [parse_query(src) for src in SCHEMALESS]

    def run():
        return [infer_requirements(q) for q in queries]

    reports = benchmark(run)
    # every query constrains at least one free identifier (its extents)
    assert all(r.free_idents for r in reports)


def test_requirements_satisfied_by_hr_schema(benchmark):
    """Agreement with Figure 1: the HR schema meets every requirement
    inferred from queries written against it."""
    db = workloads.hr()
    queries = [parse_query(src) for src in SCHEMALESS]

    def run():
        problems = []
        for q in queries:
            rep = infer_requirements(q)
            problems.extend(check_against(rep, db.schema))
        return problems

    assert benchmark(run) == []


def test_violation_detection(benchmark):
    """A schema that misses a requirement is caught."""
    db = workloads.hr()
    q = parse_query("((Person) p).favourite_colour")

    def run():
        return check_against(infer_requirements(q), db.schema)

    problems = benchmark(run)
    assert any("favourite_colour" in p for p in problems)


@pytest.mark.parametrize("n_gens", [1, 2, 3])
def test_inference_scaling(benchmark, n_gens):
    """Cost as the number of generators (join width) grows."""
    gens = ", ".join(f"x{i} <- Src{i}" for i in range(n_gens))
    fields = ", ".join(f"f{i}: x{i}.attr{i}" for i in range(n_gens))
    q = parse_query(f"{{ struct({fields}) | {gens} }}")

    def run():
        return infer_requirements(q)

    rep = benchmark(run)
    assert len(rep.free_idents) == n_gens
