"""Recursive-traversal benchmark workloads → ``BENCH_traverse.json``.

Exercises the three complexity routes of the compiled `traverse`
construct and gates the two perf claims of the routing design:

* ``interval_ancestor_closure`` — the unbounded ancestor closure of a
  10k-node random tree.  After the first ask builds the persistent
  interval index, repeated extent-sourced traversals answer from the
  index's memoized stab (Theorem 5 keeps it valid until a cone class
  is written).  The amortized interval answer must beat the semi-naive
  chase by ``INTERVAL_BAR`` (10×); the cold first-stab and full
  end-to-end times are reported unbarred for context.
* ``cyclic_projection`` — ``{ x.tag | x <- traverse(...) }`` over a
  cycle, where the interval index refuses (cyclic) and the compiled
  route degrades to the fuel-charged semi-naive chase.  The compiled
  semi-naive execution must beat the big-step evaluator by
  ``SEMI_NAIVE_BAR`` (5×) end to end.

Every timed query is differentially checked against the big-step
fixpoint before any timing counts.  CI runs quick mode as the
``traverse-smoke`` perf-regression gate.

Usage::

    PYTHONPATH=src python benchmarks/traverse_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/traverse_workloads.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from workloads import random_tree, ref_graph, ring  # noqa: E402

from repro.exec.engine import execute_plan  # noqa: E402
from repro.semantics.bigstep import evaluate_bigstep  # noqa: E402
from repro.semantics.traverse import chase  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
TREE_N = 4_000 if QUICK else 10_000
RING_N = 800 if QUICK else 2_000
REPEATS = 3 if QUICK else 5
INTERVAL_BAR = 10.0  # amortized interval route vs semi-naive chase
SEMI_NAIVE_BAR = 5.0  # compiled semi-naive vs big-step on cyclic


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_interval(report: dict, failures: list) -> None:
    db = ref_graph(random_tree(TREE_N))
    red_src = "traverse(x in refs over next)"
    yellow_src = f"traverse(x in refs over next depth <= {2 * TREE_N})"

    red = db.plan_decision(red_src)
    yellow = db.plan_decision(yellow_src)
    assert red.engine == yellow.engine == "compiled"
    assert any("red" in n for n in red.entry.plan.notes)
    assert any("yellow" in n for n in yellow.entry.plan.notes)

    # differential check (also warms the interval index)
    t0 = time.perf_counter()
    red_value, _, _ = execute_plan(db, red.entry)
    first_ask_s = time.perf_counter() - t0
    yellow_value, _, _ = execute_plan(db, yellow.entry)
    big = evaluate_bigstep(db.machine, db.ee, db.oe, db.parse(red_src))
    assert red_value == yellow_value == big.value, "route divergence"
    snap = db._closure_indexes.snapshot()
    assert snap and all(e["usable"] for e in snap.values())

    # route cores on the live store: the memoized interval stab vs the
    # semi-naive chase with its per-node budget tick
    idx = next(iter(db._closure_indexes._indexes.values()))[-1]
    starts = db.ee.members("refs")
    ticks = [0]

    def tick(n: int = 1) -> None:
        ticks[0] += n

    interval_answer = idx.closure_of_extent(db.ee, "refs")
    chase_answer, _ = chase(db.oe, starts, "next", None, tick=tick)
    assert interval_answer == chase_answer

    interval_s = _best_of(lambda: idx.closure_of_extent(db.ee, "refs"))
    chase_s = _best_of(lambda: chase(db.oe, starts, "next", None, tick=tick))
    speedup = chase_s / interval_s if interval_s else float("inf")

    red_s = _best_of(lambda: execute_plan(db, red.entry))
    yellow_s = _best_of(lambda: execute_plan(db, yellow.entry))

    rec = {
        "tree_nodes": TREE_N,
        "closure_size": len(interval_answer),
        "interval_s": interval_s,
        "chase_s": chase_s,
        "speedup_vs_chase": speedup,
        "first_ask_s": first_ask_s,
        "end_to_end_red_s": red_s,
        "end_to_end_yellow_s": yellow_s,
        "end_to_end_ratio": yellow_s / red_s if red_s else float("inf"),
    }
    report["workloads"]["interval_ancestor_closure"] = rec
    status = "ok" if speedup >= INTERVAL_BAR else f"BELOW {INTERVAL_BAR:g}x BAR"
    print(
        f"{'interval_ancestor_closure':<28} interval {interval_s * 1e6:9.1f} µs"
        f"   chase {chase_s * 1e3:8.3f} ms   {speedup:9.1f}x   {status}"
    )
    print(
        f"{'':<28} first ask {first_ask_s * 1e3:7.2f} ms   "
        f"end-to-end red {red_s * 1e3:.2f} ms / yellow {yellow_s * 1e3:.2f} ms"
    )
    if speedup < INTERVAL_BAR:
        failures.append(
            f"interval_ancestor_closure: {speedup:.1f}x < {INTERVAL_BAR:g}x"
        )


def bench_cyclic(report: dict, failures: list) -> None:
    db = ref_graph(ring(RING_N))
    src = "{ x.tag | x <- traverse(x in refs over next) }"
    q = db.parse(src)
    decision = db.plan_decision(q)
    assert decision.engine == "compiled", decision.reason

    compiled_value, _, _ = execute_plan(db, decision.entry)
    big = evaluate_bigstep(db.machine, db.ee, db.oe, q)
    assert compiled_value == big.value, "cyclic projection divergence"
    # the interval index must have refused the cyclic store
    snap = db._closure_indexes.snapshot()
    assert all(e["cyclic"] for e in snap.values())

    compiled_s = _best_of(lambda: execute_plan(db, decision.entry))
    bigstep_s = _best_of(
        lambda: evaluate_bigstep(db.machine, db.ee, db.oe, q), repeats=2
    )
    speedup = bigstep_s / compiled_s if compiled_s else float("inf")

    rec = {
        "ring_nodes": RING_N,
        "compiled_s": compiled_s,
        "bigstep_s": bigstep_s,
        "speedup_vs_bigstep": speedup,
    }
    report["workloads"]["cyclic_projection"] = rec
    status = (
        "ok" if speedup >= SEMI_NAIVE_BAR else f"BELOW {SEMI_NAIVE_BAR:g}x BAR"
    )
    print(
        f"{'cyclic_projection':<28} compiled {compiled_s * 1e3:8.2f} ms"
        f"   bigstep {bigstep_s * 1e3:8.2f} ms   {speedup:9.1f}x   {status}"
    )
    if speedup < SEMI_NAIVE_BAR:
        failures.append(
            f"cyclic_projection: {speedup:.1f}x < {SEMI_NAIVE_BAR:g}x"
        )


def main() -> int:
    report: dict = {
        "quick": QUICK,
        "tree_nodes": TREE_N,
        "ring_nodes": RING_N,
        "repeats": REPEATS,
        "bars": {"interval": INTERVAL_BAR, "semi_naive": SEMI_NAIVE_BAR},
        "workloads": {},
    }
    failures: list[str] = []
    bench_interval(report, failures)
    bench_cyclic(report, failures)

    path = os.environ.get("REPRO_BENCH_TRAVERSE_PATH", "BENCH_traverse.json")
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {path}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
