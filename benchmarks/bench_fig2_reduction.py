"""F2 — Figure 2: the small-step operational semantics.

Measures the machine along three axes: single-step cost (decompose +
rule + plug), full →→ evaluation of the HR suite, and step-count/time
scaling as the database grows (comprehension evaluation is the
dominant workload of any OQL engine).
"""

import pytest

import workloads
from repro.lang.values import is_value
from repro.semantics.evaluator import evaluate
from repro.semantics.machine import Config


def test_single_step(benchmark):
    """Cost of one reduction step on a mid-sized configuration."""
    db = workloads.hr()
    q = db.parse("{ e.EmpID + 1 | e <- Employees, e.GrossSalary > 4000 }")
    cfg = Config(db.ee, db.oe, q)
    machine = db.machine

    def run():
        return machine.step(cfg)

    result = benchmark(run)
    assert result.rule == "Extent"


def test_evaluate_hr_suite(benchmark):
    """Full evaluation of the curated rule-covering suite."""
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        return [evaluate(machine, ee, oe, q).steps for q in queries]

    steps = benchmark(run)
    assert all(s > 0 for s in steps)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_comprehension_scaling(benchmark, n):
    """Steps and time for one generator over an n-element extent.

    The (ND comp) rule peels one element per step, so the step count is
    linear in n while per-step plugging makes time superlinear — the
    shape to observe here.
    """
    db = workloads.hr(n_employees=n)
    q = db.parse("{ e.EmpID | e <- Employees }")
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        return evaluate(machine, ee, oe, q)

    result = benchmark(run)
    assert is_value(result.value)
    assert len(result.value.items) == n


def test_join_style_query(benchmark):
    """Two nested generators (a join): the quadratic workload."""
    db = workloads.hr(n_employees=6)
    q = db.parse(
        "{ struct(a: e.EmpID, b: m.level) "
        "| e <- Employees, m <- Managers, e.UniqueManager == m }"
    )
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        return evaluate(machine, ee, oe, q)

    result = benchmark(run)
    assert len(result.value.items) == 6
