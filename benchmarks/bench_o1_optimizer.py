"""O1 — effect-guided optimization wins (§4's application, §7's agenda).

Measures (a) the rewriting pipeline's own cost, (b) the run-time step
reduction its legal rewrites buy on representative queries (predicate
pushdown, unnesting, constant folding), and (c) that the rewrites
preserve observable behaviour — asserted via the answer, with full
∼-equivalence covered by the test-suite.
"""

import pytest

import workloads
from repro.optimizer.planner import optimize
from repro.semantics.evaluator import evaluate

OPTIMIZABLE = [
    # predicate pushdown across an unrelated generator
    "{ struct(a: e.name, b: x) | e <- Employees, x <- {1, 2, 3}, e.GrossSalary > 4000 }",
    # unnesting + pushdown
    "{ y | y <- { e.EmpID | e <- Employees }, y < 2 }",
    # constant folding cascade
    "{ e.EmpID | e <- Employees, 1 + 1 = 2, e.EmpID < 2 * 5 }",
    # dead generator elimination
    "{ struct(a: e.name, b: z) | e <- Employees, z <- {}, e.is_adult() }",
]


def test_pipeline_cost(benchmark):
    db = workloads.hr()
    queries = [db.parse(src) for src in OPTIMIZABLE]

    def run():
        return [optimize(db, q) for q in queries]

    results = benchmark(run)
    assert all(r.changed for r in results)


@pytest.mark.parametrize("idx", range(len(OPTIMIZABLE)))
def test_step_savings(benchmark, idx):
    """Run-time reduction-step savings per optimizable query."""
    db = workloads.hr()
    q = db.parse(OPTIMIZABLE[idx])
    opt = optimize(db, q).query
    machine, ee, oe = db.machine, db.ee, db.oe
    baseline = evaluate(machine, ee, oe, q)

    def run():
        return evaluate(machine, ee, oe, opt)

    result = benchmark(run)
    assert result.steps <= baseline.steps
    assert result.value == baseline.value


def test_pushdown_scaling_win(benchmark):
    """The classic shape: pushdown's advantage grows with the crossed
    generator's size (here |{1..8}| per surviving employee)."""
    db = workloads.hr(n_employees=6)
    src = (
        "{ struct(a: e.name, b: x) | e <- Employees, "
        "x <- {1, 2, 3, 4, 5, 6, 7, 8}, e.EmpID < 1 }"
    )
    q = db.parse(src)
    opt = optimize(db, q).query
    machine, ee, oe = db.machine, db.ee, db.oe
    before = evaluate(machine, ee, oe, q).steps

    def run():
        return evaluate(machine, ee, oe, opt)

    result = benchmark(run)
    # only 1 of 6 employees survives the predicate: the optimized query
    # should beat the baseline by several× on steps
    assert result.steps * 2 < before
