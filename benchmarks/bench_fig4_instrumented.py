"""F4 — Figure 4: the instrumented (effect-tracing) semantics.

The instrumented semantics is Figure 2 plus an effect label per step.
In this implementation the machine always produces the label and the
evaluator folds it; the two measurable artifacts are (a) evaluation
with trace folding and rule recording vs the bare value-producing run,
and (b) the per-step label distribution of the suite (how many steps
carry a non-∅ label — extents, news, methods — versus administrative
steps).
"""

import workloads
from repro.effects.algebra import EMPTY
from repro.semantics.evaluator import evaluate, trace_steps
from repro.semantics.machine import Config


def test_plain_evaluation(benchmark):
    """Baseline: evaluate, ignore rule history (effects still folded)."""
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        return [evaluate(machine, ee, oe, q).value for q in queries]

    benchmark(run)


def test_instrumented_evaluation(benchmark):
    """Figure 4 run: fold effects and record the rule per step."""
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        return [
            evaluate(machine, ee, oe, q, keep_rules=True).effect
            for q in queries
        ]

    effects = benchmark(run)
    assert any(not e.is_empty() for e in effects)


def test_step_stream_consumption(benchmark):
    """Consuming the raw step stream (per-step labels, Figure 4's ─ε→)."""
    db = workloads.hr()
    q = db.parse("{ struct(a: e.name, b: e.NetSalary(100)) | e <- Employees }")
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        labelled = 0
        total = 0
        for step in trace_steps(machine, Config(ee, oe, q)):
            total += 1
            if step.effect != EMPTY:
                labelled += 1
        return labelled, total

    labelled, total = benchmark(run)
    # exactly one extent read carries R(Person-extent) — methods are
    # read-only (ε″ = ∅) and everything else is administrative
    assert labelled == 1
    assert total > 10
