"""M1 — the §5 method design space.

Compares the two design points the paper delineates: read-only methods
(§2 core, ε″ = ∅) and effectful methods (§5: bodies read extents,
create objects, update attributes, threading EE/OE through ⇓).
Measures invocation cost per mode, the method type/effect checker, and
asserts soundness is preserved when queries call effectful methods.
"""

import pytest

import workloads
from repro.db.database import Database
from repro.lang.ast import IntLit, MethodCall, OidRef
from repro.metatheory.theorems import check_subject_reduction
from repro.methods.ast import AccessMode
from repro.methods.typing import check_schema_methods

EFFECTFUL_ODL = """
class Account extends Object (extent Accounts) {
    attribute int balance;
    int get() { return this.balance; }
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
    Account spawn() effect A(Account) {
        return new Account(balance: 0);
    }
    int total() effect R(Account) {
        var t : int := 0;
        for (a in extent(Accounts)) { t := t + a.balance; }
        return t;
    }
}
"""


def _bank(n: int = 5) -> Database:
    db = Database.from_odl(EFFECTFUL_ODL, method_mode=AccessMode.EFFECTFUL)
    for i in range(n):
        db.insert("Account", balance=100 * i)
    return db


def test_readonly_method_invocation(benchmark):
    """§2 mode: pure method calls inside a comprehension."""
    db = workloads.hr()
    q = db.parse("{ e.NetSalary(300) | e <- Employees }")

    def run():
        return db.run(q, commit=False)

    result = benchmark(run)
    assert result.effect.writes() == frozenset()


def test_effectful_update_invocation(benchmark):
    """§5 mode: an attribute-updating body, invoked from a query."""
    db = _bank()
    (a, *_)= sorted(db.extent("Accounts"))
    q = MethodCall(OidRef(a), "deposit", (IntLit(1),))

    def run():
        return db.run(q, commit=False)

    result = benchmark(run)
    assert "Account" in result.effect.updates()


def test_effectful_extent_scan(benchmark):
    """§5 mode: a body that iterates its own extent (R effect)."""
    db = _bank(8)
    (a, *_) = sorted(db.extent("Accounts"))
    q = MethodCall(OidRef(a), "total", ())

    def run():
        return db.run(q, commit=False)

    result = benchmark(run)
    assert result.python() == sum(100 * i for i in range(8))
    assert "Account" in result.effect.reads()


def test_method_checker_cost(benchmark):
    """Type/effect checking every MJava body in the schema."""
    db = _bank()

    def run():
        return check_schema_methods(db.schema, AccessMode.EFFECTFUL)

    effects = benchmark(run)
    assert effects[("Account", "get")].is_empty()
    assert not effects[("Account", "deposit")].is_empty()


def test_soundness_with_effectful_methods(benchmark):
    """Theorem 1/5 hold with §5 methods in the loop (the extended
    paper's soundness claim, sampled)."""
    db = _bank(3)
    q = db.parse("{ a.deposit(5) | a <- Accounts }")

    def run():
        return check_subject_reduction(db.machine, db.ee, db.oe, q)

    report = benchmark(run)
    assert report, report.detail
