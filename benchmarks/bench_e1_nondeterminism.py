"""E1 — the §1 Jack/Jill observably non-deterministic query.

Regenerates the paper's headline example: the query has exactly two
observable answers — {"Peter","Jill"} when Jack is visited first and
{"Peter","Jack"} when Jill is — and the ⊢′ analysis statically flags
the R(F)/A(F) interference.  Assertions inside the benchmark bodies
re-verify the example on every run; the timings measure the explorer
and the analysis.
"""

import workloads
from repro.effects.determinism import analyze_determinism
from repro.semantics.strategy import FIRST, LAST


def test_explore_all_schedules(benchmark):
    """Enumerate every reduction order; exactly 2 observable answers."""
    db = workloads.jack_jill()
    q = db.parse(workloads.JACK_JILL_QUERY)

    def run():
        return db.explore(q)

    ex = benchmark(run)
    answers = {str(v) for v in ex.distinct_values()}
    assert answers == {'{"Jill", "Peter"}', '{"Jack", "Peter"}'}
    assert not ex.deterministic()


def test_run_both_schedules(benchmark):
    """The two concrete runs the paper narrates."""
    db = workloads.jack_jill()
    q = db.parse(workloads.JACK_JILL_QUERY)

    def run():
        first = db.run(q, strategy=FIRST, commit=False).python()
        last = db.run(q, strategy=LAST, commit=False).python()
        return first, last

    first, last = benchmark(run)
    assert first == frozenset({"Peter", "Jill"})   # Jack visited first
    assert last == frozenset({"Peter", "Jack"})    # Jill visited first


def test_static_detection(benchmark):
    """⊢′ finds the interference without running anything (Theorem 7)."""
    db = workloads.jack_jill()
    q = db.parse(workloads.JACK_JILL_QUERY)

    def run():
        return analyze_determinism(
            db.schema, q, var_types=db.oid_types()
        )

    _, eff, witnesses = benchmark(run)
    assert "F" in eff.reads() and "F" in eff.adds()
    assert len(witnesses) == 1
    assert witnesses[0].conflicting == frozenset({"F"})
