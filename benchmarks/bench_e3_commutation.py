"""E3 — the §4 intersection-commutation counterexample.

One Person ("Jack"/"Utah") and one Employee ("Jill"/"NYC"): the left
operand of ∩ creates a Person per Employee, the right reads the Person
extent.  Original answer: the singleton Jill/Utah object; commuted:
"the empty set!".  ⊢″ refuses the rewrite; the optimizer declines it;
and the benchmark re-verifies both answers every run.
"""

import workloads
from repro.effects.commutativity import analyze_commutativity
from repro.lang.ast import SetOp, SetOpKind
from repro.optimizer.planner import try_commute

CREATOR_SRC = '{ new Person(name: e.name, address: "Utah") | e <- Employees }'


def _queries(db):
    creator = db.parse(CREATOR_SRC)
    reader = db.parse("Persons")
    return (
        SetOp(SetOpKind.INTERSECT, creator, reader),
        SetOp(SetOpKind.INTERSECT, reader, creator),
    )


def test_original_vs_commuted_answers(benchmark):
    db = workloads.sigma4()
    original, commuted = _queries(db)

    def run():
        a = db.run(original, commit=False)
        b = db.run(commuted, commit=False)
        return a, b

    a, b = benchmark(run)
    assert len(a.value.items) == 1  # the Jill/Utah object
    (only,) = a.value.items
    rec = a.oe.get(only.name)
    assert rec.attr("name").value == "Jill"
    assert rec.attr("address").value == "Utah"
    assert b.value.items == ()  # "the empty set!"


def test_static_refusal(benchmark):
    """⊢″ (Theorem 8's gate) detects the conflict without running."""
    db = workloads.sigma4()
    original, _ = _queries(db)

    def run():
        return analyze_commutativity(
            db.schema, original, var_types=db.oid_types()
        )

    _, _, conflicts = benchmark(run)
    assert len(conflicts) == 1


def test_optimizer_declines(benchmark):
    db = workloads.sigma4()
    original, _ = _queries(db)

    def run():
        return try_commute(db, original)

    assert not benchmark(run).changed


def test_safe_commutation_applies(benchmark):
    """Contrast: pure-read operands commute, and the rewrite is taken."""
    db = workloads.sigma4()
    q = db.parse("Persons intersect Employees")

    def run():
        return try_commute(db, q)

    assert benchmark(run).changed
