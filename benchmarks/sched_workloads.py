"""Scheduler benchmark workloads → ``BENCH_sched.json``.

Measures ``Database.run_many`` against a sequential loop over the same
batch on the §2 HR database, and gates on the read-heavy workload
showing a ≥2× wall-clock win at 8 workers.

**What the win is.**  The runners are CPython threads, so pure
computation does not parallelise (the GIL serialises it — see
``docs/CONCURRENCY.md``).  The speedup the scheduler buys is *latency
hiding*: every ``store.read`` site carries injected I/O latency (the
resilience layer's ``FaultPlan``, ``kind="latency"`` — exactly how a
remote page read would behave), the sleeps release the GIL, and
non-conflicting read-only queries overlap those stalls.  That is the
deployment story for an object database whose extents live behind a
disk or network, and it is honest about what thread-level scheduling
can and cannot buy on one core.

The mixed read/write workload is recorded for telemetry (conflict rate,
achieved overlap) but not gated: writers serialise by design, so its
speedup depends on the read/write mix.

Usage::

    PYTHONPATH=src python benchmarks/sched_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/sched_workloads.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from workloads import hr  # noqa: E402

from repro.resilience.faults import FaultPlan, FaultRule, inject  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
SCALE = dict(n_employees=60, n_managers=6) if QUICK else dict(
    n_employees=200, n_managers=12
)
WORKERS = 8
READ_LATENCY = 0.004  # injected per store.read, released while sleeping
SPEEDUP_BAR = 2.0  # acceptance gate on the read-heavy batch


def read_heavy_batch(n: int = 24) -> list[str]:
    """``n`` *distinct* read-only queries (distinct plan-cache keys, so
    neither run is answered from the result cache)."""
    out = []
    for i in range(n):
        bar = 3500 + 83 * i
        out.append(
            f"{{ e.name | e <- Employees, e.GrossSalary > {bar} }}"
        )
    return out


def mixed_batch(n_reads: int = 18, n_writes: int = 6) -> list[str]:
    """Reads interleaved with Person-creating writers (A(Person))."""
    batch = read_heavy_batch(n_reads)
    for i in range(n_writes):
        batch.insert(
            (i + 1) * len(batch) // (n_writes + 1),
            f'new Person(name: "batch{i}", age: {30 + i})',
        )
    return batch


def latency_plan() -> FaultPlan:
    return FaultPlan(
        (FaultRule(site="store.read", every=1, kind="latency",
                   delay=READ_LATENCY),)
    )


def run_sequential(batch: list[str]) -> tuple[float, list]:
    db = hr(**SCALE)
    with inject(latency_plan()):
        start = time.perf_counter()
        results = [db.run(src) for src in batch]
        wall = time.perf_counter() - start
    return wall, [r.value for r in results]


def run_scheduled(batch: list[str], workers: int) -> tuple[float, list, object]:
    db = hr(**SCALE)
    with inject(latency_plan()):
        start = time.perf_counter()
        res = db.run_many(batch, workers=workers)
        wall = time.perf_counter() - start
    return wall, res.values(), res


def bench(name: str, batch: list[str], workers: int) -> dict:
    seq_wall, seq_values = run_sequential(batch)
    par_wall, par_values, res = run_scheduled(batch, workers)
    # differential check: the scheduled run must answer exactly like the
    # sequential run (these batches create no objects the answers name,
    # so plain equality is the right bar here — the fuzz suite covers ∼)
    assert seq_values == par_values, f"{name}: scheduled run diverged"
    speedup = seq_wall / par_wall if par_wall > 0 else float("inf")
    row = {
        "workload": name,
        "queries": len(batch),
        "workers": workers,
        "sequential_s": round(seq_wall, 4),
        "scheduled_s": round(par_wall, 4),
        "speedup": round(speedup, 2),
        "conflict_edges": res.conflict_edges,
        "conflict_rate": round(res.conflict_rate, 3),
    }
    print(
        f"{name:<18} {len(batch):>3} queries  "
        f"seq {seq_wall * 1e3:8.1f} ms  sched {par_wall * 1e3:8.1f} ms  "
        f"{speedup:5.2f}x  ({res.conflict_edges} conflict edges)"
    )
    return row


def main() -> int:
    n_reads = 12 if QUICK else 24
    rows = [
        bench("read_heavy", read_heavy_batch(n_reads), WORKERS),
        bench(
            "mixed_read_write",
            mixed_batch(
                n_reads=9 if QUICK else 18, n_writes=3 if QUICK else 6
            ),
            WORKERS,
        ),
    ]
    report = {
        "quick": QUICK,
        "scale": SCALE,
        "read_latency_s": READ_LATENCY,
        "speedup_bar": SPEEDUP_BAR,
        "workloads": rows,
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_sched.json")
    with open(out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(out)}")
    read_heavy = rows[0]
    if read_heavy["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: read-heavy speedup {read_heavy['speedup']}x "
            f"< {SPEEDUP_BAR}x bar"
        )
        return 1
    print(f"OK: read-heavy speedup {read_heavy['speedup']}x >= {SPEEDUP_BAR}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
