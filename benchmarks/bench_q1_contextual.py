"""Q1 — contextual-equivalence testing (§7 future work).

"We also plan to develop notions of query equivalence based upon
'contextual equivalence'" — the refutation half, measured: the cost of
sweeping the type-directed context family over (a) genuinely
equivalent pairs (full sweep, no distinction — the expensive case) and
(b) inequivalent pairs (early exit at the first separating context).
"""

import workloads
from repro.optimizer.contextual import contextually_distinct


def test_equivalent_pair_full_sweep(benchmark):
    """No context separates ``{p | p <- Persons}`` from ``Persons``:
    the search runs the whole family."""
    db = workloads.sigma4()
    a = db.parse("{p | p <- Persons}")
    b = db.parse("Persons")

    def run():
        return contextually_distinct(db, a, b)

    assert benchmark(run) is None


def test_idempotent_union(benchmark):
    db = workloads.sigma4()
    a = db.parse("Persons union Persons")
    b = db.parse("Persons")

    def run():
        return contextually_distinct(db, a, b)

    assert benchmark(run) is None


def test_inequivalent_pair_early_exit(benchmark):
    """Identity context separates {1} from {2}: near-instant exit."""
    db = workloads.sigma4()
    a = db.parse("{1}")
    b = db.parse("{2}")

    def run():
        return contextually_distinct(db, a, b)

    assert benchmark(run) is not None


def test_effectful_pair_detected(benchmark):
    """Same answer, different side effect — a context exposes it."""
    db = workloads.sigma4()
    a = db.parse("size(Employees)")
    b = db.parse(
        'size({ struct(x: e, y: new Person(name: "p", address: "q")).x '
        "| e <- Employees })"
    )

    def run():
        return contextually_distinct(db, a, b)

    d = benchmark(run)
    assert d is not None


def test_optimizer_rewrites_survive_sweep(benchmark):
    """Every pipeline rewrite on the suite is contextually unseparated."""
    from repro.optimizer.planner import optimize

    db = workloads.hr(n_employees=2, n_managers=1)
    pairs = []
    for src in [
        "{e.name | e <- Employees, 1 = 1}",
        "struct(a: size(Persons), b: 1 + 1).a",
    ]:
        q = db.parse(src)
        res = optimize(db, q)
        assert res.changed
        pairs.append((q, res.query))

    def run():
        return [contextually_distinct(db, a, b, depth=1) for a, b in pairs]

    results = benchmark(run)
    assert results == [None, None]
