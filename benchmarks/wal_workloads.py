"""Durability benchmark workloads → ``BENCH_wal.json``.

Measures what the write-ahead log costs at commit time and what it
buys back at recovery time:

* **commit latency** — the same insert-heavy workload against a
  volatile database, a journalled one with flush-only appends
  (``sync=False``), and a journalled one with an fsync per commit.
  The acceptance gate is on the *flush-only* configuration: WAL-on
  wall clock ≤ 1.5× WAL-off.  Effect-bounded delta records keep the
  per-commit payload proportional to the commit's A-set, not to the
  store, which is what makes the bar reachable.  The fsync column is
  reported, not gated — it measures the disk, not the code, and CI
  block devices vary wildly.

* **recovery time vs log length** — recover directories whose logs
  hold increasing numbers of records; the report records wall clock
  and records/second.  Replay is physical (no re-evaluation), so this
  should scale linearly in the log, not in the store's history.

Usage::

    PYTHONPATH=src python benchmarks/wal_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/wal_workloads.py
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.db.database import Database  # noqa: E402
from repro.db.recovery import recover  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_COMMITS = 120 if QUICK else 400
RECOVERY_LENGTHS = [25, 100] if QUICK else [50, 200, 400]
REPEATS = 4 if QUICK else 3
OVERHEAD_BAR = 1.5  # acceptance gate, flush-only configuration

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Team extends Object (extent Teams) {
    attribute string tag;
}
"""


def commit_workload(n: int) -> list[str]:
    out = []
    for i in range(n):
        if i % 4 == 3:
            out.append(f'new Team(tag: "t{i}")')
        else:
            out.append(f'new Person(name: "p{i}", age: {18 + i % 50})')
    return out


def run_commits(batch: list[str], *, wal: str) -> float:
    """Wall clock for the batch; ``wal`` is off | flush | fsync."""
    tmp = tempfile.mkdtemp(prefix="walbench-")
    try:
        if wal == "off":
            db = Database.from_odl(ODL)
        else:
            db = Database.open(tmp, ODL, sync=(wal == "fsync"))
        start = time.perf_counter()
        for src in batch:
            db.run(src)
        wall = time.perf_counter() - start
        db.close()
        return wall
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_commit_latency() -> dict:
    batch = commit_workload(N_COMMITS)
    walls = {}
    for mode in ("off", "flush", "fsync"):
        walls[mode] = min(run_commits(batch, wal=mode) for _ in range(REPEATS))
    row = {
        "workload": "insert_commits",
        "commits": N_COMMITS,
        "wal_off_s": round(walls["off"], 4),
        "wal_flush_s": round(walls["flush"], 4),
        "wal_fsync_s": round(walls["fsync"], 4),
        "flush_overhead_x": round(walls["flush"] / walls["off"], 3),
        "fsync_overhead_x": round(walls["fsync"] / walls["off"], 3),
        "per_commit_off_us": round(walls["off"] / N_COMMITS * 1e6, 1),
        "per_commit_flush_us": round(walls["flush"] / N_COMMITS * 1e6, 1),
    }
    print(
        f"insert_commits   {N_COMMITS:>4} commits  "
        f"off {walls['off'] * 1e3:7.1f} ms  "
        f"flush {walls['flush'] * 1e3:7.1f} ms "
        f"({row['flush_overhead_x']:.2f}x)  "
        f"fsync {walls['fsync'] * 1e3:7.1f} ms "
        f"({row['fsync_overhead_x']:.2f}x)"
    )
    return row


def bench_recovery(n_records: int) -> dict:
    tmp = tempfile.mkdtemp(prefix="walbench-rec-")
    try:
        db = Database.open(tmp, ODL, sync=False)
        for src in commit_workload(n_records):
            db.run(src)
        db.close()
        wall = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            res = recover(tmp, attach=False)
            wall = min(wall, time.perf_counter() - start)
        assert res.replayed == n_records
        row = {
            "workload": "recovery",
            "log_records": n_records,
            "recovery_s": round(wall, 4),
            "records_per_s": round(n_records / wall) if wall else None,
        }
        print(
            f"recovery         {n_records:>4} records  "
            f"{wall * 1e3:7.1f} ms  ({row['records_per_s']} rec/s)"
        )
        return row
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main() -> int:
    commit_row = bench_commit_latency()
    recovery_rows = [bench_recovery(n) for n in RECOVERY_LENGTHS]
    report = {
        "quick": QUICK,
        "overhead_bar_x": OVERHEAD_BAR,
        "workloads": [commit_row, *recovery_rows],
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_wal.json")
    with open(out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(out)}")
    if commit_row["flush_overhead_x"] > OVERHEAD_BAR:
        print(
            f"FAIL: WAL-on (flush) overhead {commit_row['flush_overhead_x']}x "
            f"> {OVERHEAD_BAR}x bar"
        )
        return 1
    print(
        f"OK: WAL-on (flush) overhead {commit_row['flush_overhead_x']}x "
        f"<= {OVERHEAD_BAR}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
