"""B1 — big-step vs small-step evaluation.

§3.3 chooses the reduction presentation for its metatheory; a real
engine would normalise.  This experiment quantifies the trade: the
reduction machine pays decompose+plug per step, the big-step evaluator
does one recursive pass — same answers (asserted), different constant
factors, and the gap widens with data size (more steps = more plugs).
"""

import pytest

import workloads
from repro.semantics.bigstep import evaluate_bigstep
from repro.semantics.evaluator import evaluate


def test_smallstep_suite(benchmark):
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]

    def run():
        return [
            evaluate(db.machine, db.ee, db.oe, q).value for q in queries
        ]

    benchmark(run)


def test_bigstep_suite(benchmark):
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    small = [evaluate(db.machine, db.ee, db.oe, q).value for q in queries]

    def run():
        return [
            evaluate_bigstep(db.machine, db.ee, db.oe, q).value
            for q in queries
        ]

    values = benchmark(run)
    assert values == small  # presentations agree


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_bigstep_scaling(benchmark, n):
    """Big-step over growing extents — compare the shape against
    F2's ``test_comprehension_scaling`` (small-step): the reduction
    machine grows superlinearly (plugging), big-step stays ~linear."""
    db = workloads.hr(n_employees=n)
    q = db.parse("{ e.EmpID | e <- Employees }")

    def run():
        return evaluate_bigstep(db.machine, db.ee, db.oe, q)

    result = benchmark(run)
    assert len(result.value.items) == n


def test_join_bigstep(benchmark):
    db = workloads.hr(n_employees=6)
    q = db.parse(
        "{ struct(a: e.EmpID, b: m.level) "
        "| e <- Employees, m <- Managers, e.UniqueManager == m }"
    )
    small = evaluate(db.machine, db.ee, db.oe, q)

    def run():
        return evaluate_bigstep(db.machine, db.ee, db.oe, q)

    result = benchmark(run)
    assert result.value == small.value
