"""T7 — ⊢′-accepted queries are deterministic up to the oid bijection.

Three measurements: the theorem checker over random queries (static
accept ⇒ all schedules ∼-agree); the positive case where object
creation per element still yields ∼-equal outcomes; and the analysis
cost itself (it is static and must be cheap relative to exploration).
"""

import workloads
from repro.effects.determinism import analyze_determinism
from repro.metatheory.theorems import check_determinism
from repro.semantics.bijection import equivalent


def test_t7_random_queries(benchmark):
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=401, n_queries=8, depth=3
    )

    def run():
        reports = [
            check_determinism(machine, ee, oe, q, max_paths=3_000)
            for q in queries
        ]
        assert all(reports), [r.detail for r in reports if not r]
        return len(reports)

    benchmark(run)


def test_t7_creation_without_read(benchmark):
    """A body that only *adds* is accepted by ⊢′, and indeed all
    schedules agree up to ∼ (different oid orders, same database)."""
    db = workloads.jack_jill()
    q = db.parse("{ struct(a: p.name, b: new F(name: p.name, pal: p)).a | p <- Ps }")
    assert db.is_deterministic(q)

    def run():
        return db.explore(q)

    ex = benchmark(run)
    assert len(ex.distinct_values()) == 1
    first = ex.outcomes[0]
    assert all(
        equivalent(first.value, first.ee, first.oe, o.value, o.ee, o.oe)
        for o in ex.outcomes[1:]
    )


def test_t7_static_vs_dynamic_cost(benchmark):
    """⊢′ is a constant-cost static pass; the exploration it replaces is
    factorial.  Timing the static side of that trade-off."""
    db = workloads.hr(n_employees=8)
    q = db.parse(
        "{ struct(a: e.name, b: new Person(name: e.name, age: 0)).a "
        "| e <- Employees }"
    )

    def run():
        return analyze_determinism(db.schema, q, var_types=db.oid_types())

    _, _, witnesses = benchmark(run)
    assert not witnesses  # add-only body: accepted


def test_t7_rejection_is_justified(benchmark):
    """⊢′ rejects the Jack/Jill query, and the rejection is not noise:
    the explorer confirms genuinely distinct outcomes."""
    db = workloads.jack_jill()
    q = db.parse(workloads.JACK_JILL_QUERY)

    def run():
        _, _, witnesses = analyze_determinism(
            db.schema, q, var_types=db.oid_types()
        )
        ex = db.explore(q)
        return witnesses, ex

    witnesses, ex = benchmark(run)
    assert witnesses
    assert len(ex.distinct_values()) == 2
