"""E2 — the §1 ``loop`` variant: schedule-dependent termination.

The query terminates when Jill is visited first and diverges (fuel
exhaustion on the ``while (true)`` method body) when Jack is.  The
benchmarks time the terminating schedule, the cost of *detecting*
divergence at a given fuel level, and the explorer's combined view.
"""

import pytest

import workloads
from repro.errors import FuelExhausted
from repro.semantics.strategy import FIRST, LAST


def test_terminating_schedule(benchmark):
    db = workloads.jack_jill()
    q = db.parse(workloads.JACK_JILL_LOOP_QUERY)

    def run():
        return db.run(q, strategy=LAST, commit=False)

    result = benchmark(run)
    assert result.python() == frozenset({"Jack", "Jill"})


@pytest.mark.parametrize("fuel", [100, 1_000, 10_000])
def test_divergence_detection_cost(benchmark, fuel):
    """Time to conclude 'diverged' scales linearly with the fuel bound
    — the price of making non-termination observable."""
    db = workloads.jack_jill(method_fuel=fuel)
    q = db.parse(workloads.JACK_JILL_LOOP_QUERY)

    def run():
        try:
            db.run(q, strategy=FIRST, commit=False, max_steps=fuel)
            return False
        except FuelExhausted:
            return True

    assert benchmark(run) is True


def test_explorer_mixed_outcomes(benchmark):
    """One exploration seeing both the value and the divergence."""
    db = workloads.jack_jill(method_fuel=200)
    q = db.parse(workloads.JACK_JILL_LOOP_QUERY)

    def run():
        return db.explore(q, max_steps=1_000)

    ex = benchmark(run)
    assert ex.diverged
    assert [str(v) for v in ex.distinct_values()] == ['{"Jack", "Jill"}']
