"""Compiled-engine benchmark workloads → ``BENCH_exec.json``.

Runs the set-at-a-time compiled engine of :mod:`repro.exec` against the
big-step evaluator (the fastest interpreted presentation) on the §2 HR
database at scale, checks the answers agree, and records wall-times and
speedups.  Exits non-zero if the compiled engine *loses* to big-step on
any workload, or if the multi-generator join workload falls short of
the 10× bar — CI runs this in quick mode as a perf-regression gate.

Usage::

    PYTHONPATH=src python benchmarks/exec_workloads.py          # full
    REPRO_BENCH_QUICK=1 PYTHONPATH=src python benchmarks/exec_workloads.py

Workloads (all read-only, so Theorem 4 routes them to the compiled
engine automatically):

* ``join_nested_teams``  — the §2 manager→team nested join
  (HR_QUERIES[8]): per-manager subcomprehension turned into one shared
  hash table over ``Employees.UniqueManager``;
* ``join_flat_pairs``    — a flat two-generator oid equi-join;
* ``filter_selective``   — a selective single-extent filter;
* ``setops_union``       — cast + union over two extents;
* ``cached_repeat``      — the same query issued repeatedly through
  ``Database.run`` (plan + result cache; the effect system proves no
  intervening write, so replays are O(1)).

A second report, ``BENCH_obs.json``, records the cost of ``.explain
analyze``'s per-operator instrumentation: profiled execution (prebuilt
plan, compile cost excluded) must stay within ``PROFILE_BAR`` (1.5×)
of the plain compiled engine, and a profiled run with observability
off must leave the obs stores untouched.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from workloads import hr  # noqa: E402

from repro.semantics.bigstep import evaluate_bigstep  # noqa: E402
from repro.exec.engine import execute_plan  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
SCALE = dict(n_employees=150, n_managers=15) if QUICK else dict(
    n_employees=400, n_managers=25
)
REPEATS = 3 if QUICK else 5
JOIN_BAR = 10.0  # the PR's acceptance bar on the join workloads
PROFILE_BAR = 1.5  # max allowed profiled/plain execution ratio

WORKLOADS = {
    "join_nested_teams": (
        "{ struct(m: m.name, team: { e.EmpID | e <- Employees, "
        "e.UniqueManager == m }) | m <- Managers }"
    ),
    "join_flat_pairs": (
        "{ struct(e: e.EmpID, m: m.name) "
        "| e <- Employees, m <- Managers, m == e.UniqueManager }"
    ),
    "filter_selective": (
        "{ e.name | e <- Employees, e.GrossSalary > 5400 }"
    ),
    "setops_union": "{ (Person) e | e <- Employees } union Persons",
}


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(db, src: str) -> dict:
    q = db.parse(src)
    decision = db.plan_decision(q)
    assert decision.engine == "compiled", (src, decision.reason)
    entry = decision.entry

    # answers must agree before any timing counts
    compiled_value, _, ops = execute_plan(db, entry)
    big = evaluate_bigstep(db.machine, db.ee, db.oe, q)
    assert compiled_value == big.value, f"value mismatch on {src!r}"

    compiled_s = _best_of(lambda: execute_plan(db, entry))
    bigstep_s = _best_of(
        lambda: evaluate_bigstep(db.machine, db.ee, db.oe, q)
    )
    return {
        "query": " ".join(src.split()),
        "compiled_s": compiled_s,
        "bigstep_s": bigstep_s,
        "speedup_vs_bigstep": bigstep_s / compiled_s,
        "compiled_ops": ops,
    }


def bench_cached_repeat(db, n: int = 200) -> dict:
    src = WORKLOADS["join_flat_pairs"]
    first = db.run(src, commit=False)  # compiles + executes + caches
    start = time.perf_counter()
    for _ in range(n):
        replay = db.run(src, commit=False)
    replay_total = time.perf_counter() - start
    assert replay.value == first.value
    fresh = db.plan_decision(src).entry
    fresh_s = _best_of(lambda: execute_plan(db, fresh))
    per_replay = replay_total / n
    return {
        "query": " ".join(src.split()),
        "replays": n,
        "replay_s": per_replay,
        "fresh_exec_s": fresh_s,
        "speedup_vs_fresh": fresh_s / per_replay if per_replay else float("inf"),
    }


def bench_profile_overhead(db, src: str) -> dict:
    """Profiled vs plain execution on prebuilt plans (no compile cost)."""
    from repro.exec.engine import compile_profiled, execute_profiled

    q = db.parse(src)
    entry = db.plan_decision(q).entry
    plan, _, _ = compile_profiled(db, q)

    plain_value, _, _ = execute_plan(db, entry)
    prof_value, _, run, _ = execute_profiled(db, plan)
    assert prof_value == plain_value, f"profiled value mismatch on {src!r}"
    assert all(n >= 0 for n in run.rows)

    plain_s = _best_of(lambda: execute_plan(db, entry))
    profiled_s = _best_of(lambda: execute_profiled(db, plan))
    return {
        "query": " ".join(src.split()),
        "plain_s": plain_s,
        "profiled_s": profiled_s,
        "overhead": profiled_s / plain_s if plain_s else 1.0,
        "operators": len(plan.ops),
    }


def _assert_obs_off_untouched(db, src: str) -> None:
    """A profiled run with obs disabled must not feed the obs stores."""
    from repro import obs

    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    try:
        db.explain_analyze(src)
        assert not obs.TRACER.finished, "spans recorded with obs off"
        assert not obs.STREAM.events, "events recorded with obs off"
        assert not obs.REGISTRY.collect(), "metrics recorded with obs off"
    finally:
        if was_enabled:
            obs.enable()


def bench_obs(db) -> int:
    """The ``BENCH_obs.json`` report; returns the number of failures."""
    report: dict = {"quick": QUICK, "scale": SCALE, "bar": PROFILE_BAR,
                    "workloads": {}}
    failures: list[str] = []
    for name, src in WORKLOADS.items():
        rec = bench_profile_overhead(db, src)
        report["workloads"][name] = rec
        status = "ok" if rec["overhead"] <= PROFILE_BAR else (
            f"ABOVE {PROFILE_BAR:g}x BAR"
        )
        print(
            f"{name:<22} plain    {rec['plain_s'] * 1e3:8.3f} ms   "
            f"profiled {rec['profiled_s'] * 1e3:8.3f} ms   "
            f"{rec['overhead']:7.2f}x   {status}"
        )
        if rec["overhead"] > PROFILE_BAR:
            failures.append(
                f"{name}: profiling overhead {rec['overhead']:.2f}x > "
                f"{PROFILE_BAR:g}x"
            )
    _assert_obs_off_untouched(db, WORKLOADS["join_flat_pairs"])
    print("obs-off check: profiled run left spans/events/metrics empty")
    report["obs_off_untouched"] = True

    path = os.environ.get("REPRO_BENCH_OBS_PATH", "BENCH_obs.json")
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {path}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
    return len(failures)


def main() -> int:
    db = hr(**SCALE)
    report: dict = {
        "quick": QUICK,
        "scale": SCALE,
        "repeats": REPEATS,
        "workloads": {},
    }
    failures: list[str] = []
    for name, src in WORKLOADS.items():
        rec = bench_workload(db, src)
        report["workloads"][name] = rec
        speedup = rec["speedup_vs_bigstep"]
        bar = JOIN_BAR if name.startswith("join") else 1.0
        status = "ok" if speedup >= bar else f"BELOW {bar:g}x BAR"
        print(
            f"{name:<22} compiled {rec['compiled_s'] * 1e3:8.3f} ms   "
            f"bigstep {rec['bigstep_s'] * 1e3:8.3f} ms   "
            f"{speedup:8.1f}x   {status}"
        )
        if speedup < bar:
            failures.append(
                f"{name}: {speedup:.1f}x < required {bar:g}x"
            )
    rec = bench_cached_repeat(db)
    report["workloads"]["cached_repeat"] = rec
    print(
        f"{'cached_repeat':<22} replay   {rec['replay_s'] * 1e6:8.1f} µs   "
        f"fresh   {rec['fresh_exec_s'] * 1e6:8.1f} µs   "
        f"{rec['speedup_vs_fresh']:8.1f}x"
    )

    path = os.environ.get("REPRO_BENCH_EXEC_PATH", "BENCH_exec.json")
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {path}")

    if bench_obs(db):
        return 1
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
