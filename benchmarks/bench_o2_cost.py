"""O2 — cost-based generator reordering on catalog statistics.

The System-R move in one rule: put the smaller relation in the outer
loop.  Legality comes from the §4 effect discipline (both sources
write-free and termination-safe); profitability from extent statistics.
The benchmark measures the win growing with the size asymmetry — the
classic join-ordering shape.
"""

import pytest

from repro.db.database import Database
from repro.optimizer.cost import CostModel, optimize_with_costs
from repro.semantics.evaluator import evaluate

ODL = """
class Big extends Object (extent Bigs) { attribute int n; }
class Small extends Object (extent Smalls) { attribute int n; }
"""


def _db(n_big: int, n_small: int = 1) -> Database:
    db = Database.from_odl(ODL)
    for i in range(n_big):
        db.insert("Big", n=i)
    for i in range(n_small):
        db.insert("Small", n=100 + i)
    return db


JOIN = "{ struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls }"


@pytest.mark.parametrize("n_big", [4, 8, 16])
def test_reorder_win_grows_with_asymmetry(benchmark, n_big):
    db = _db(n_big)
    q = db.parse(JOIN)
    res = optimize_with_costs(db, q)
    assert "reorder-generators" in res.rules_fired()
    baseline = evaluate(db.machine, db.ee, db.oe, q)

    def run():
        return evaluate(db.machine, db.ee, db.oe, res.query)

    out = benchmark(run)
    assert out.value == baseline.value
    assert out.steps < baseline.steps


def test_cost_model_snapshot(benchmark):
    db = _db(16, 4)

    def run():
        m = CostModel.from_database(db)
        return (
            m.eval_cost(db.parse(JOIN)),
            m.eval_cost(db.parse(
                "{ struct(a: b.n, c: s.n) | s <- Smalls, b <- Bigs }"
            )),
        )

    big_outer, small_outer = benchmark(run)
    assert small_outer < big_outer


def test_pipeline_with_costs(benchmark):
    """All three rewrites compose: drop the true predicate, reorder the
    generators (Smalls outer), then push the s-predicate inward."""
    db = _db(8, 2)
    q = db.parse(
        "{ struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls, 1 = 1, s.n < 200 }"
    )

    def run():
        return optimize_with_costs(db, q)

    res = benchmark(run)
    fired = res.rules_fired()
    assert "reorder-generators" in fired
    assert "true-pred" in fired
    assert "pred-pushdown" in fired
    # final shape: filter runs before the big extent is even read
    assert res.query == db.parse(
        "{ struct(a: b.n, c: s.n) | s <- Smalls, s.n < 200, b <- Bigs }"
    )
