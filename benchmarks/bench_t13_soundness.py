"""T1–T3 — subject reduction, progress, type soundness.

Runs the executable theorem checkers of
:mod:`repro.metatheory.theorems` over seeded random well-typed
configurations; the benchmark bodies assert every report holds, so a
passing benchmark is also a (sampled) re-verification of §3.4.
"""

import pytest

import workloads
from repro.metatheory.theorems import (
    check_progress,
    check_subject_reduction,
    check_type_soundness,
)
from repro.semantics.strategy import LAST, RandomStrategy


def test_t1_subject_reduction(benchmark):
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=101, n_queries=10, depth=4
    )

    def run():
        reports = [
            check_subject_reduction(machine, ee, oe, q) for q in queries
        ]
        assert all(reports), [r.detail for r in reports if not r]
        return sum(r.steps_checked for r in reports)

    steps = benchmark(run)
    assert steps > 0


def test_t2_progress(benchmark):
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=102, n_queries=10, depth=4
    )

    def run():
        reports = [check_progress(machine, ee, oe, q) for q in queries]
        assert all(reports), [r.detail for r in reports if not r]
        return len(reports)

    benchmark(run)


def test_t3_type_soundness_multi_strategy(benchmark):
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=103, n_queries=8, depth=4
    )
    strategies = (LAST, RandomStrategy(1), RandomStrategy(2))

    def run():
        reports = [
            check_type_soundness(machine, ee, oe, q, strategies=strategies)
            for q in queries
        ]
        assert all(reports), [r.detail for r in reports if not r]
        return len(reports)

    benchmark(run)


@pytest.mark.parametrize("depth", [3, 5])
def test_t1_cost_by_depth(benchmark, depth):
    """Verification cost grows with query depth (retype every step)."""
    schema, ee, oe, machine, ctx, queries = workloads.random_suite(
        seed=104 + depth, n_queries=5, depth=depth
    )

    def run():
        for q in queries:
            assert check_subject_reduction(machine, ee, oe, q)

    benchmark(run)
