"""F3 — Figure 3: the effect type system.

Measures effect inference throughput and its overhead relative to the
plain Figure 1 checker (the effect system is "an adjunct to the type
system" and "trivial to implement" — §7; the measured overhead
quantifies that claim), and verifies on the suite that the inferred
effect bounds the dynamic trace (Theorem 5's corollary).
"""

import pytest

import workloads
from repro.effects.checker import EffectChecker
from repro.semantics.evaluator import evaluate
from repro.typing.checker import check_query


def test_effect_inference_hr_suite(benchmark):
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    ctx = db.type_context()
    checker = EffectChecker()

    def run():
        return [checker.check(ctx, q)[1] for q in queries]

    effects = benchmark(run)
    # the suite reads extents; at least one effect must be non-empty
    assert any(not e.is_empty() for e in effects)


def test_overhead_vs_plain_typing(benchmark):
    """Effect checking does strictly more work than Figure 1; measure
    the combined judgement so the delta to F1's numbers is the latent
    cost of the ε component."""
    _, _, _, _, ctx, queries = workloads.random_suite(seed=3, n_queries=30, depth=5)
    checker = EffectChecker()

    def run():
        out = []
        for q in queries:
            t1 = check_query(ctx, q)
            t2, eff = checker.check(ctx, q)
            assert t1 == t2
            out.append(eff)
        return out

    benchmark(run)


def test_static_bounds_dynamic(benchmark):
    """ε_static ⊇ ε_dynamic on every suite query (checked in the loop)."""
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    ctx = db.type_context()
    checker = EffectChecker()
    machine, ee, oe = db.machine, db.ee, db.oe

    def run():
        ok = 0
        for q in queries:
            _, static = checker.check(ctx, q)
            dynamic = evaluate(machine, ee, oe, q).effect
            assert dynamic.subeffect_of(static)
            ok += 1
        return ok

    assert benchmark(run) == len(queries)
