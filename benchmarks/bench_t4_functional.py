"""T4 — functional (``new``-free) queries are strictly deterministic.

The explorer enumerates every reduction order of random functional
queries and asserts a single structurally-identical outcome — exactly
Theorem 4's statement (no oid bijection needed).  The scaling benchmark
shows the factorial growth of the schedule space that makes the
*static* guarantee valuable.
"""

import pytest

import workloads
from repro.lang.parser import parse_query
from repro.metatheory.theorems import check_functional_determinism
from repro.model.types import SetType
from repro.semantics.explorer import count_schedules


def test_t4_random_functional_queries(benchmark):
    import random

    from repro.metatheory.generators import QueryGenerator

    schema, ee, oe, machine, ctx, _ = workloads.random_suite(
        seed=201, n_queries=0
    )
    rng = random.Random(201)
    gen = QueryGenerator(schema, oe, rng, allow_new=False, max_depth=3)
    queries = [gen.query(SetType(gen.random_type(depth=0))) for _ in range(6)]

    def run():
        reports = [
            check_functional_determinism(machine, ee, oe, q, max_paths=3_000)
            for q in queries
        ]
        assert all(reports), [r.detail for r in reports if not r]
        return len(reports)

    benchmark(run)


@pytest.mark.parametrize("n", [3, 4, 5])
def test_schedule_space_growth(benchmark, n):
    """|schedules| = n! for one generator over n elements."""
    import math

    schema, ee, oe, machine, ctx, _ = workloads.random_suite(seed=202, n_queries=0)
    items = ", ".join(str(i) for i in range(n))
    q = parse_query(f"{{ x + 1 | x <- {{{items}}} }}")

    def run():
        return count_schedules(machine, ee, oe, q)

    assert benchmark(run) == math.factorial(n)


def test_hr_functional_query_all_orders(benchmark):
    """A realistic functional query over the HR store: one outcome."""
    db = workloads.hr(n_employees=3)
    q = db.parse("{ struct(a: e.name, b: e.NetSalary(100)) | e <- Employees }")

    def run():
        return db.explore(q)

    ex = benchmark(run)
    assert len(ex.outcomes) == 1
    assert ex.paths == 6  # 3! iteration orders, all agreeing
