"""F1 — Figure 1: the IOQL type system.

Regenerates the figure as an executable artifact: type-checks (a) the
curated HR query suite covering every rule of Figure 1 and (b) random
well-typed queries of increasing depth, measuring checker throughput.
Correctness (acceptance of well-typed queries, rejection of ill-typed
mutants) is asserted inside the benchmark bodies — a benchmark that
passes has also re-verified the figure's rules on its inputs.
"""

import pytest

import workloads
from repro.errors import IOQLTypeError
from repro.typing.checker import check_query


def test_typecheck_hr_suite(benchmark):
    """Throughput of Figure 1 over the curated rule-covering suite."""
    db = workloads.hr()
    queries = [db.parse(src) for src in workloads.HR_QUERIES]
    ctx = db.type_context()

    def run():
        return [check_query(ctx, q) for q in queries]

    types = benchmark(run)
    assert len(types) == len(queries)


@pytest.mark.parametrize("depth", [3, 5, 7])
def test_typecheck_random_by_depth(benchmark, depth):
    """Checker cost as query depth grows (random well-typed inputs)."""
    _, _, _, _, ctx, queries = workloads.random_suite(
        seed=depth, n_queries=30, depth=depth
    )

    def run():
        return [check_query(ctx, q) for q in queries]

    types = benchmark(run)
    assert len(types) == 30


def test_reject_ill_typed_mutants(benchmark):
    """The figure's other half: ill-typed programs are *rejected*.

    Mutants break one rule each (operand types, arity, unknown
    attribute, downcast, heterogeneous set, non-bool guard…).
    """
    db = workloads.hr()
    ctx = db.type_context()
    mutants = [
        db.parse(src)
        for src in [
            "1 + true",
            "{1, true}",
            "size(1)",
            "(Manager) { p | p <- Persons }",  # cast of a set
            "if 1 then 2 else 3",
            "{ e.salary | e <- Employees }",  # unknown attribute
            "{ e.NetSalary() | e <- Employees }",  # arity
            '1 = "one"',
            "1 == 2",
            "{ x | x <- 5 }",
        ]
    ]

    def run():
        rejected = 0
        for m in mutants:
            try:
                check_query(ctx, m)
            except IOQLTypeError:
                rejected += 1
        return rejected

    assert benchmark(run) == len(mutants)
