"""The IOQL type system of Figure 1.

Implements the judgements

* ``E; D; Q ⊢_ioql q : σ``          (:func:`check_query`)
* ``E; D ⊢_def def : σ⃗ → σ′``       (:func:`check_definition`)
* ``E ⊢_prog def₀ … defₖ q : σ``    (:func:`check_program`)

as a syntax-directed algorithm: each rule of Figure 1 is one branch of
:func:`check_query`.  Where the declarative system would use multiple
premises of a common type, the algorithm computes least upper bounds
(classes always have LUBs under single inheritance; other type pairs
may not, in which case the query is ill-typed).

The checker is *pure*: it raises :class:`IOQLTypeError` on failure and
returns the inferred type on success.  Runtime configurations (queries
containing oids) are checked with the same function — the oid part of
``Q`` is supplied by the caller (see
:func:`repro.db.database.Database.type_context`).
"""

from __future__ import annotations

from functools import reduce

from repro.errors import IOQLTypeError, SchemaError
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    Comp,
    DefCall,
    Definition,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Program,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)
from repro.model.closure import attr_declared, reachable_closure, result_lub
from repro.model.schema import Schema
from repro.model.subtyping import check_type_well_formed
from repro.model.types import (
    BOOL,
    EMPTY_SET_T,
    INT,
    NEVER,
    OBJECT,
    STRING,
    BagType,
    ClassType,
    FuncType,
    ListType,
    NeverType,
    RecordType,
    SetType,
    Type,
)
from repro.typing.context import TypeContext


def check_query(ctx: TypeContext, q: Query) -> Type:
    """Infer the type of ``q`` under (E; D; Q), or raise IOQLTypeError."""
    # -- (Int), (Bool), string extension -------------------------------
    if isinstance(q, IntLit):
        return INT
    if isinstance(q, BoolLit):
        return BOOL
    if isinstance(q, StrLit):
        return STRING

    # -- (Ident): variables and oids both live in Q ---------------------
    if isinstance(q, (Var, OidRef)):
        return ctx.var_type(q.name)

    # -- (Extent): E(e) = C ⟹ e : set(C) -------------------------------
    if isinstance(q, ExtentRef):
        return SetType(ClassType(ctx.extent_class(q.name)))

    # -- (Set): common supertype of the elements ------------------------
    if isinstance(q, SetLit):
        if not q.items:
            return EMPTY_SET_T
        elem = _lub_all(ctx, (check_query(ctx, i) for i in q.items), "set literal")
        return SetType(elem)

    # -- bag/list literals and the toset coercion (§3.1 extension) -------
    if isinstance(q, BagLit):
        if not q.items:
            return BagType(NEVER)
        elem = _lub_all(ctx, (check_query(ctx, i) for i in q.items), "bag literal")
        return BagType(elem)
    if isinstance(q, ListLit):
        if not q.items:
            return ListType(NEVER)
        elem = _lub_all(ctx, (check_query(ctx, i) for i in q.items), "list literal")
        return ListType(elem)
    if isinstance(q, ToSet):
        at = _expect_collection(ctx, q.arg, "argument of toset")
        return SetType(at.elem if not isinstance(at, NeverType) else NEVER)

    # -- (Set ops) -------------------------------------------------------
    if isinstance(q, SetOp):
        lt = _expect_collection(ctx, q.left, f"left operand of {q.op.symbol}")
        rt = _expect_collection(ctx, q.right, f"right operand of {q.op.symbol}")
        # both operands must be the same collection kind; lists support
        # only union (concatenation)
        lk, rk = type(lt), type(rt)
        if lk is not rk:
            raise IOQLTypeError(
                f"{q.op.symbol} needs operands of one collection kind, "
                f"got {lt} and {rt}"
            )
        from repro.lang.ast import SetOpKind as _SOK

        if lk is ListType and q.op is not _SOK.UNION:
            raise IOQLTypeError(
                f"lists support only union (concatenation), not {q.op.symbol}"
            )
        elem = _lub(ctx, lt.elem, rt.elem, f"operands of {q.op.symbol}")
        return lk(elem)

    # -- (Int ops) --------------------------------------------------------
    if isinstance(q, IntOp):
        _expect(ctx, q.left, INT, f"left operand of {q.op.value}")
        _expect(ctx, q.right, INT, f"right operand of {q.op.value}")
        return INT

    # -- (Int eq) — extended pointwise to bool/string ----------------------
    if isinstance(q, PrimEq):
        lt = check_query(ctx, q.left)
        rt = check_query(ctx, q.right)
        j = ctx.schema.hierarchy.lub(lt, rt)
        if j is None or not (j.is_primitive() or isinstance(j, NeverType)):
            raise IOQLTypeError(
                f"'=' compares primitive values of one type; got {lt} = {rt}"
            )
        return BOOL

    # -- (Object eq) --------------------------------------------------------
    if isinstance(q, ObjEq):
        for side, name in ((q.left, "left"), (q.right, "right")):
            t = check_query(ctx, side)
            if not isinstance(t, (ClassType, NeverType)):
                raise IOQLTypeError(
                    f"'==' compares objects; {name} operand has type {t}"
                )
        return BOOL

    # -- comparisons (extension) ----------------------------------------------
    if isinstance(q, Cmp):
        _expect(ctx, q.left, INT, f"left operand of {q.op.value}")
        _expect(ctx, q.right, INT, f"right operand of {q.op.value}")
        return BOOL

    # -- (Record) ----------------------------------------------------------
    if isinstance(q, RecordLit):
        labels = q.labels()
        if len(labels) != len(set(labels)):
            raise IOQLTypeError(f"duplicate labels in record {labels}")
        return RecordType(
            tuple((l, check_query(ctx, sub)) for l, sub in q.fields)
        )

    # -- (Record access) / (Attribute): one Field node, two rules ------------
    if isinstance(q, Field):
        tt = check_query(ctx, q.target)
        if isinstance(tt, NeverType):
            # ⊥ propagates through elimination forms (dead code under an
            # empty-set generator); subsumption makes this admissible.
            return NEVER
        if isinstance(tt, RecordType):
            ft = tt.field_type(q.name)
            if ft is None:
                raise IOQLTypeError(
                    f"record {tt} has no label {q.name!r}"
                )
            return ft
        if isinstance(tt, ClassType):
            try:
                return ctx.schema.atype(tt.name, q.name)
            except SchemaError as exc:
                raise IOQLTypeError(str(exc)) from None
        raise IOQLTypeError(
            f".{q.name} needs a record or object target, got {tt}"
        )

    # -- (Definition access) ---------------------------------------------------
    if isinstance(q, DefCall):
        ftype = ctx.def_type(q.name)
        _check_args(ctx, q.args, ftype.params, f"definition {q.name}")
        return ftype.result

    # -- (Size) -------------------------------------------------------------------
    if isinstance(q, Size):
        _expect_collection(ctx, q.arg, "argument of size")
        return INT

    # -- sum aggregate (extension; total, hence soundness-preserving) ---------------
    if isinstance(q, Sum):
        at = _expect_collection(ctx, q.arg, "argument of sum")
        if not ctx.subtype(at.elem, INT):
            raise IOQLTypeError(f"sum needs integer elements, got {at.elem}")
        return INT

    # -- (Cast): upcast only (Note 2) -----------------------------------------------
    if isinstance(q, Cast):
        if not ctx.schema.hierarchy.declared(q.cname):
            raise IOQLTypeError(f"cast to unknown class {q.cname!r}")
        at = check_query(ctx, q.arg)
        if isinstance(at, NeverType):
            return ClassType(q.cname)
        if not isinstance(at, ClassType):
            raise IOQLTypeError(f"cast applies to objects, got {at}")
        if not ctx.schema.hierarchy.is_subclass(at.name, q.cname):
            raise IOQLTypeError(
                f"illegal cast: {at.name} is not a subclass of {q.cname} "
                f"(downcasts are rejected — Note 2)"
            )
        return ClassType(q.cname)

    # -- (Method) ----------------------------------------------------------------------
    if isinstance(q, MethodCall):
        tt = check_query(ctx, q.target)
        if isinstance(tt, NeverType):
            for a in q.args:
                check_query(ctx, a)
            return NEVER
        if not isinstance(tt, ClassType):
            raise IOQLTypeError(
                f"method call target must be an object, got {tt}"
            )
        try:
            mt = ctx.schema.mtype(tt.name, q.mname)
        except SchemaError as exc:
            raise IOQLTypeError(str(exc)) from None
        _check_args(ctx, q.args, mt.params, f"method {tt.name}.{q.mname}")
        return mt.result

    # -- (New): every attribute, exactly once, subtype-compatibly -----------------------
    if isinstance(q, New):
        if q.cname == OBJECT or q.cname not in ctx.schema:
            raise IOQLTypeError(f"cannot instantiate {q.cname!r}")
        declared = dict(ctx.schema.atypes(q.cname))
        given = q.labels()
        if len(given) != len(set(given)):
            raise IOQLTypeError(f"duplicate attribute in new {q.cname}")
        missing = set(declared) - set(given)
        extra = set(given) - set(declared)
        if missing or extra:
            raise IOQLTypeError(
                f"new {q.cname} must define exactly its attributes; "
                f"missing={sorted(missing)} unknown={sorted(extra)}"
            )
        for a, sub in q.fields:
            at = check_query(ctx, sub)
            ctx.require_subtype(at, declared[a], f"attribute {q.cname}.{a}")
        return ClassType(q.cname)

    # -- (Cond) ---------------------------------------------------------------------------
    if isinstance(q, If):
        _expect(ctx, q.cond, BOOL, "condition of if")
        tt = check_query(ctx, q.then)
        et = check_query(ctx, q.els)
        return _lub(ctx, tt, et, "branches of if")

    # -- (Traverse): recursive reference closure (§ traverse extension) ----------------------
    # The result element type is the lub over the subclass-widened
    # reachable closure of the source class under ``attr`` — the chase
    # may surface objects of any class the static closure names, and
    # single inheritance guarantees the lub exists (Object at worst).
    if isinstance(q, Traverse):
        if q.depth is not None and q.depth < 0:
            raise IOQLTypeError(
                f"traverse depth bound must be non-negative, got {q.depth}"
            )
        st = _expect_set(ctx, q.source, f"traverse source for {q.var}")
        if isinstance(st.elem, NeverType):
            return SetType(NEVER)
        if not isinstance(st.elem, ClassType):
            raise IOQLTypeError(
                f"traverse needs a set of objects, got {st}"
            )
        # A primitive-typed attribute is a legitimate chase leaf, but an
        # attribute declared *nowhere* in the widened closure can only
        # be a typo — the traversal would be the identity on its source.
        cone, escaped = reachable_closure(ctx.schema, st.elem.name, q.attr)
        if not escaped and not any(
            attr_declared(ctx.schema, c, q.attr) for c in cone
        ):
            raise IOQLTypeError(
                f"traverse attribute {q.attr!r} is not declared by any "
                f"class reachable from {st.elem.name}"
            )
        return SetType(ClassType(result_lub(ctx.schema, st.elem.name, q.attr)))

    # -- (Comp1)/(Comp2): qualifiers left-to-right, generators bind --------------------------
    if isinstance(q, Comp):
        inner = ctx
        for cq in q.qualifiers:
            if isinstance(cq, Pred):
                ct = check_query(inner, cq.cond)
                if not inner.subtype(ct, BOOL):
                    raise IOQLTypeError(
                        f"comprehension predicate must be bool, got {ct}"
                    )
            else:
                assert isinstance(cq, Gen)
                st = _expect_collection(inner, cq.source, f"generator {cq.var}")
                inner = inner.extend(cq.var, st.elem)
        return SetType(check_query(inner, q.head))

    raise IOQLTypeError(f"unknown query node {type(q).__name__}")


def check_definition(ctx: TypeContext, d: Definition) -> FuncType:
    """The ⊢_def rule: check the body under the parameter bindings."""
    names = d.param_names()
    if len(names) != len(set(names)):
        raise IOQLTypeError(f"duplicate parameter in definition {d.name!r}")
    for x, t in d.params:
        try:
            check_type_well_formed(t, ctx.schema.hierarchy)  # type: ignore[arg-type]
        except SchemaError as exc:
            raise IOQLTypeError(f"parameter {x} of {d.name}: {exc}") from None
    body_ctx = ctx.extend_many({x: t for x, t in d.params})  # type: ignore[misc]
    result = check_query(body_ctx, d.body)
    return FuncType(tuple(t for _, t in d.params), result)  # type: ignore[misc]


def check_program(schema: Schema, p: Program, *, oid_types: dict[str, Type] | None = None) -> Type:
    """The ⊢_prog rule: thread each definition's type into the next.

    Definitions are non-recursive — each may call only those before it.
    ``oid_types`` supplies the oid portion of Q for runtime
    configurations.
    """
    ctx = TypeContext(schema, vars=dict(oid_types or {}))
    for d in p.definitions:
        if d.name in ctx.defs:
            raise IOQLTypeError(f"definition {d.name!r} given twice")
        ctx = ctx.with_def(d.name, check_definition(ctx, d))
    return check_query(ctx, p.query)


def program_context(schema: Schema, p: Program, *, oid_types: dict[str, Type] | None = None) -> TypeContext:
    """The context (E; D; Q) in scope for the final query of ``p``."""
    ctx = TypeContext(schema, vars=dict(oid_types or {}))
    for d in p.definitions:
        ctx = ctx.with_def(d.name, check_definition(ctx, d))
    return ctx


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _check_args(
    ctx: TypeContext,
    args: tuple[Query, ...],
    params: tuple[Type, ...],
    what: str,
) -> None:
    """Call-site rule: arity match, each argument ≤ its parameter type."""
    if len(args) != len(params):
        raise IOQLTypeError(
            f"{what} expects {len(params)} argument(s), got {len(args)}"
        )
    for i, (a, pt) in enumerate(zip(args, params)):
        at = check_query(ctx, a)
        ctx.require_subtype(at, pt, f"argument {i} of {what}")


def _expect(ctx: TypeContext, q: Query, want: Type, what: str) -> None:
    got = check_query(ctx, q)
    if not ctx.subtype(got, want):
        raise IOQLTypeError(f"{what} must have type {want}, got {got}")


def _expect_set(ctx: TypeContext, q: Query, what: str) -> SetType:
    got = check_query(ctx, q)
    if isinstance(got, NeverType):
        # ⊥ ≤ set(⊥): a bottom-typed scrutinee is an acceptable set
        return SetType(NEVER)
    if not isinstance(got, SetType):
        raise IOQLTypeError(f"{what} must be a set, got {got}")
    return got


def _expect_collection(ctx: TypeContext, q: Query, what: str):
    """A set, bag or list type (⊥ counts as the empty set)."""
    got = check_query(ctx, q)
    if isinstance(got, NeverType):
        return SetType(NEVER)
    if not isinstance(got, (SetType, BagType, ListType)):
        raise IOQLTypeError(f"{what} must be a collection, got {got}")
    return got


def _lub(ctx: TypeContext, a: Type, b: Type, what: str) -> Type:
    j = ctx.schema.hierarchy.lub(a, b)
    if j is None:
        raise IOQLTypeError(f"{what} have no common supertype: {a} vs {b}")
    return j


def _lub_all(ctx: TypeContext, types, what: str) -> Type:
    return reduce(lambda a, b: _lub(ctx, a, b, what), types, NEVER)
