"""The Figure 1 type system and schema-requirements inference."""

from repro.typing.checker import check_definition, check_program, check_query
from repro.typing.context import TypeContext
from repro.typing.inference import (
    InferenceReport,
    check_against,
    infer_requirements,
)

__all__ = [
    "InferenceReport",
    "TypeContext",
    "check_against",
    "check_definition",
    "check_program",
    "check_query",
    "infer_requirements",
]
