"""Schema-requirements inference for schema-less queries.

The paper (§3.1) notes that type *inference* for definitions "has been
considered elsewhere for ODMG OQL", citing its companion work
(Trigoni & Bierman, *Inferring the principal type and schema
requirements of an OQL query*, BNCOD 2001).  This module implements
that idea for IOQL: given a query with **no schema and no variable
types**, infer

* a type for the query (possibly containing inference variables);
* the *requirements* the query places on its environment — the types
  of its free identifiers (which is how extent requirements surface:
  a free ``Employees`` used as a generator source demands
  ``set<?a>``), the attributes/methods demanded of object-like values
  (``x.name`` demands a field ``name``), and the attribute types
  demanded of each class instantiated with ``new``.

Any schema/database satisfying the requirements can run the query;
:func:`check_against` verifies a concrete
:class:`~repro.model.schema.Schema` against a report, and the
test-suite confirms inferred-then-checked queries agree with the
Figure 1 checker.

Scope (honest simplifications, documented):

* constraints are *equalities* solved by unification — no subtype
  polymorphism, so a query requiring ``x : Person`` will not also be
  reported as satisfiable with ``x : Employee`` (checking against a
  schema re-admits subtyping);
* a dotted access ``q.l`` yields an *open requirement* usable by either
  a record or a class — it stays a requirement unless unification
  resolves the target;
* casts ``(C) q`` pin ``q`` to exactly ``C`` (no subclass search).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import IOQLTypeError
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    Comp,
    DefCall,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    StrLit,
    Sum,
    ToSet,
    Var,
)
from repro.model.types import (
    BOOL,
    INT,
    STRING,
    BagType,
    ClassType,
    ListType,
    RecordType,
    SetType,
    Type,
)


@dataclass(frozen=True, slots=True)
class TVar(Type):
    """An inference variable ?n — never appears in user schemas."""

    id: int

    def __str__(self) -> str:
        return f"?{self.id}"


@dataclass
class Requirements:
    """What one inference variable must support to be satisfiable."""

    fields: dict[str, Type] = field(default_factory=dict)
    methods: dict[str, tuple[tuple[Type, ...], Type]] = field(default_factory=dict)
    must_be_object: bool = False  # from ==, method calls, casts

    def is_empty(self) -> bool:
        return not self.fields and not self.methods and not self.must_be_object


@dataclass
class InferenceReport:
    """The outcome: the query's type plus its environment demands."""

    type: Type
    free_idents: dict[str, Type]
    open_requirements: dict[int, Requirements]
    class_attrs: dict[str, dict[str, Type]]

    def describe(self) -> str:
        """A human-readable requirements summary."""
        lines = [f"query type: {self.type}"]
        for name, t in sorted(self.free_idents.items()):
            lines.append(f"requires identifier {name} : {t}")
        for cname, attrs in sorted(self.class_attrs.items()):
            sig = ", ".join(f"{a}: {t}" for a, t in sorted(attrs.items()))
            lines.append(f"requires class {cname} with attributes ({sig})")
        for vid, req in sorted(self.open_requirements.items()):
            wants = []
            if req.fields:
                wants.append(
                    "fields " + ", ".join(f"{l}: {t}" for l, t in sorted(req.fields.items()))
                )
            if req.methods:
                wants.append(
                    "methods "
                    + ", ".join(
                        f"{m}({', '.join(map(str, ps))}) -> {r}"
                        for m, (ps, r) in sorted(req.methods.items())
                    )
                )
            if req.must_be_object:
                wants.append("an object type")
            lines.append(f"requires ?{vid} to have " + "; ".join(wants))
        return "\n".join(lines)


class Inferencer:
    """One inference run: Hindley–Milner-style unification plus the
    open field/method requirement store."""

    def __init__(self) -> None:
        self._fresh = itertools.count()
        self.subst: dict[int, Type] = {}
        self.reqs: dict[int, Requirements] = {}
        self.class_attrs: dict[str, dict[str, Type]] = {}

    # -- variables ---------------------------------------------------------
    def fresh(self) -> TVar:
        return TVar(next(self._fresh))

    def resolve(self, t: Type) -> Type:
        """Walk the substitution; normalise inner structure."""
        while isinstance(t, TVar) and t.id in self.subst:
            t = self.subst[t.id]
        if isinstance(t, SetType):
            return SetType(self.resolve(t.elem))
        if isinstance(t, BagType):
            return BagType(self.resolve(t.elem))
        if isinstance(t, ListType):
            return ListType(self.resolve(t.elem))
        if isinstance(t, RecordType):
            return RecordType(tuple((l, self.resolve(f)) for l, f in t.fields))
        return t

    def _occurs(self, vid: int, t: Type) -> bool:
        t = self.resolve(t)
        if isinstance(t, TVar):
            return t.id == vid
        if isinstance(t, (SetType, BagType, ListType)):
            return self._occurs(vid, t.elem)
        if isinstance(t, RecordType):
            return any(self._occurs(vid, f) for _, f in t.fields)
        return False

    # -- unification ----------------------------------------------------------
    def unify(self, a: Type, b: Type, what: str = "") -> None:
        a = self.resolve(a)
        b = self.resolve(b)
        if a == b:
            return
        if isinstance(a, TVar):
            self._bind(a, b, what)
            return
        if isinstance(b, TVar):
            self._bind(b, a, what)
            return
        for kind in (SetType, BagType, ListType):
            if isinstance(a, kind) and isinstance(b, kind):
                self.unify(a.elem, b.elem, what)
                return
        if isinstance(a, RecordType) and isinstance(b, RecordType):
            if a.labels() != b.labels():
                raise IOQLTypeError(
                    f"cannot unify records {a} and {b}"
                    + (f" in {what}" if what else "")
                )
            for (_, fa), (_, fb) in zip(a.fields, b.fields):
                self.unify(fa, fb, what)
            return
        raise IOQLTypeError(
            f"cannot unify {a} with {b}" + (f" in {what}" if what else "")
        )

    def _bind(self, v: TVar, t: Type, what: str) -> None:
        if self._occurs(v.id, t):
            raise IOQLTypeError(f"infinite type: ?{v.id} occurs in {t}")
        self.subst[v.id] = t
        # discharge accumulated requirements against the solution
        req = self.reqs.pop(v.id, None)
        if req is None:
            return
        t = self.resolve(t)
        if isinstance(t, TVar):
            merged = self.reqs.setdefault(t.id, Requirements())
            for l, ft in req.fields.items():
                if l in merged.fields:
                    self.unify(merged.fields[l], ft, f"field {l}")
                else:
                    merged.fields[l] = ft
            for m, sig in req.methods.items():
                if m in merged.methods:
                    ops, ores = merged.methods[m]
                    nps, nres = sig
                    if len(ops) != len(nps):
                        raise IOQLTypeError(f"method {m} used at two arities")
                    for x, y in zip(ops, nps):
                        self.unify(x, y, f"method {m}")
                    self.unify(ores, nres, f"method {m}")
                else:
                    merged.methods[m] = sig
            merged.must_be_object |= req.must_be_object
            return
        if isinstance(t, RecordType):
            if req.must_be_object or req.methods:
                raise IOQLTypeError(
                    f"{t} must be an object type (methods/identity used)"
                )
            for l, ft in req.fields.items():
                have = t.field_type(l)
                if have is None:
                    raise IOQLTypeError(f"record {t} lacks required label {l!r}")
                self.unify(have, ft, f"field {l}")
            return
        if isinstance(t, ClassType):
            attrs = self.class_attrs.setdefault(t.name, {})
            for l, ft in req.fields.items():
                if l in attrs:
                    self.unify(attrs[l], ft, f"attribute {t.name}.{l}")
                else:
                    attrs[l] = ft
            # method requirements transfer to the named class;
            # check_against validates them against a real schema
            if req.methods:
                methods = self._class_methods.setdefault(t.name, {})
                for m, sig in req.methods.items():
                    if m in methods:
                        ops, ores = methods[m]
                        nps, nres = sig
                        if len(ops) != len(nps):
                            raise IOQLTypeError(
                                f"method {m} used at two arities"
                            )
                        for x, y in zip(ops, nps):
                            self.unify(x, y, f"method {m}")
                        self.unify(ores, nres, f"method {m}")
                    else:
                        methods[m] = sig
            return
        if req.is_empty():
            return
        raise IOQLTypeError(
            f"{t} cannot satisfy object/record requirements"
        )

    _class_methods: dict[str, dict]  # set per run by infer_requirements

    # -- the inference walk ------------------------------------------------------
    def infer(self, env: dict[str, Type], q: Query) -> Type:
        if isinstance(q, IntLit):
            return INT
        if isinstance(q, BoolLit):
            return BOOL
        if isinstance(q, StrLit):
            return STRING
        if isinstance(q, (Var, ExtentRef, OidRef)):
            name = q.name
            if name not in env:
                env[name] = self.fresh()
            return env[name]
        if isinstance(q, SetLit):
            elem = self.fresh()
            for i in q.items:
                self.unify(self.infer(env, i), elem, "set literal")
            return SetType(elem)
        if isinstance(q, BagLit):
            elem = self.fresh()
            for i in q.items:
                self.unify(self.infer(env, i), elem, "bag literal")
            return BagType(elem)
        if isinstance(q, ListLit):
            elem = self.fresh()
            for i in q.items:
                self.unify(self.infer(env, i), elem, "list literal")
            return ListType(elem)
        if isinstance(q, ToSet):
            at = self.resolve(self.infer(env, q.arg))
            elem = self.fresh()
            if isinstance(at, TVar):
                # commit to the most common source kind: a bag
                self.unify(at, BagType(elem), "toset")
            elif isinstance(at, (SetType, BagType, ListType)):
                self.unify(at.elem, elem, "toset")
            else:
                raise IOQLTypeError(f"toset of non-collection {at}")
            return SetType(elem)
        if isinstance(q, SetOp):
            lt = self.infer(env, q.left)
            rt = self.infer(env, q.right)
            elem = self.fresh()
            # default collection kind: set (the core language)
            self.unify(lt, SetType(elem), q.op.symbol)
            self.unify(rt, SetType(elem), q.op.symbol)
            return SetType(elem)
        if isinstance(q, IntOp):
            self.unify(self.infer(env, q.left), INT, q.op.value)
            self.unify(self.infer(env, q.right), INT, q.op.value)
            return INT
        if isinstance(q, Cmp):
            self.unify(self.infer(env, q.left), INT, q.op.value)
            self.unify(self.infer(env, q.right), INT, q.op.value)
            return BOOL
        if isinstance(q, PrimEq):
            self.unify(
                self.infer(env, q.left), self.infer(env, q.right), "'='"
            )
            return BOOL
        if isinstance(q, ObjEq):
            for side in (q.left, q.right):
                t = self.resolve(self.infer(env, side))
                if isinstance(t, TVar):
                    self.reqs.setdefault(t.id, Requirements()).must_be_object = True
                elif not isinstance(t, ClassType):
                    raise IOQLTypeError(f"'==' on non-object {t}")
            return BOOL
        if isinstance(q, RecordLit):
            return RecordType(
                tuple((l, self.infer(env, sub)) for l, sub in q.fields)
            )
        if isinstance(q, Field):
            tt = self.resolve(self.infer(env, q.target))
            if isinstance(tt, TVar):
                req = self.reqs.setdefault(tt.id, Requirements())
                if q.name not in req.fields:
                    req.fields[q.name] = self.fresh()
                return req.fields[q.name]
            if isinstance(tt, RecordType):
                ft = tt.field_type(q.name)
                if ft is None:
                    raise IOQLTypeError(f"record {tt} has no label {q.name!r}")
                return ft
            if isinstance(tt, ClassType):
                attrs = self.class_attrs.setdefault(tt.name, {})
                if q.name not in attrs:
                    attrs[q.name] = self.fresh()
                return attrs[q.name]
            raise IOQLTypeError(f".{q.name} on {tt}")
        if isinstance(q, MethodCall):
            tt = self.resolve(self.infer(env, q.target))
            arg_types = tuple(self.infer(env, a) for a in q.args)
            result = self.fresh()
            if isinstance(tt, TVar):
                req = self.reqs.setdefault(tt.id, Requirements())
                req.must_be_object = True
                if q.mname in req.methods:
                    ps, r = req.methods[q.mname]
                    if len(ps) != len(arg_types):
                        raise IOQLTypeError(
                            f"method {q.mname} used at two arities"
                        )
                    for x, y in zip(ps, arg_types):
                        self.unify(x, y, f"method {q.mname}")
                    return r
                req.methods[q.mname] = (arg_types, result)
                return result
            if isinstance(tt, ClassType):
                methods = self._class_methods.setdefault(tt.name, {})
                if q.mname in methods:
                    ps, r = methods[q.mname]
                    for x, y in zip(ps, arg_types):
                        self.unify(x, y, f"method {q.mname}")
                    return r
                methods[q.mname] = (arg_types, result)
                return result
            raise IOQLTypeError(f"method call on {tt}")
        if isinstance(q, New):
            attrs = self.class_attrs.setdefault(q.cname, {})
            for a, sub in q.fields:
                at = self.infer(env, sub)
                if a in attrs:
                    self.unify(attrs[a], at, f"attribute {q.cname}.{a}")
                else:
                    attrs[a] = at
            return ClassType(q.cname)
        if isinstance(q, Cast):
            self.unify(
                self.infer(env, q.arg), ClassType(q.cname), f"cast ({q.cname})"
            )
            return ClassType(q.cname)
        if isinstance(q, Size):
            at = self.resolve(self.infer(env, q.arg))
            if isinstance(at, TVar):
                self.unify(at, SetType(self.fresh()), "size")
            elif not isinstance(at, (SetType, BagType, ListType)):
                raise IOQLTypeError(f"size of non-collection {at}")
            return INT
        if isinstance(q, Sum):
            at = self.resolve(self.infer(env, q.arg))
            if isinstance(at, TVar):
                self.unify(at, SetType(INT), "sum")
            elif isinstance(at, (SetType, BagType, ListType)):
                self.unify(at.elem, INT, "sum")
            else:
                raise IOQLTypeError(f"sum of non-collection {at}")
            return INT
        if isinstance(q, If):
            self.unify(self.infer(env, q.cond), BOOL, "if condition")
            tt = self.infer(env, q.then)
            self.unify(self.infer(env, q.els), tt, "if branches")
            return tt
        if isinstance(q, Comp):
            inner = dict(env)
            bound: set[str] = set()
            for cq in q.qualifiers:
                if isinstance(cq, Pred):
                    self.unify(
                        self.infer(inner, cq.cond), BOOL, "comprehension predicate"
                    )
                else:
                    assert isinstance(cq, Gen)
                    st = self.resolve(self.infer(inner, cq.source))
                    elem = self.fresh()
                    if isinstance(st, TVar):
                        self.unify(st, SetType(elem), f"generator {cq.var}")
                    elif isinstance(st, (SetType, BagType, ListType)):
                        self.unify(st.elem, elem, f"generator {cq.var}")
                    else:
                        raise IOQLTypeError(
                            f"generator {cq.var} over non-collection {st}"
                        )
                    inner[cq.var] = elem
                    bound.add(cq.var)
            head = self.infer(inner, q.head)
            # free identifiers discovered under the comprehension stay
            # required in the outer environment; generator-bound
            # variables are scoped away
            for k, v in inner.items():
                if k not in bound and (k not in env or env[k] is not v):
                    env[k] = v
            return SetType(head)
        if isinstance(q, DefCall):
            raise IOQLTypeError(
                "definition calls are not supported by schema-less "
                "inference (definitions carry explicit types)"
            )
        raise IOQLTypeError(f"unknown query node {type(q).__name__}")


def infer_requirements(q: Query) -> InferenceReport:
    """Infer the type and schema requirements of a schema-less query."""
    inf = Inferencer()
    inf._class_methods = {}
    env: dict[str, Type] = {}
    t = inf.infer(env, q)
    report = InferenceReport(
        type=inf.resolve(t),
        free_idents={k: inf.resolve(v) for k, v in env.items()},
        open_requirements={
            vid: Requirements(
                fields={l: inf.resolve(f) for l, f in r.fields.items()},
                methods={
                    m: (tuple(inf.resolve(p) for p in ps), inf.resolve(res))
                    for m, (ps, res) in r.methods.items()
                },
                must_be_object=r.must_be_object,
            )
            for vid, r in inf.reqs.items()
            if not r.is_empty()
        },
        class_attrs={
            c: {a: inf.resolve(t) for a, t in attrs.items()}
            for c, attrs in inf.class_attrs.items()
        },
    )
    report.class_methods = {  # type: ignore[attr-defined]
        c: {
            m: (tuple(inf.resolve(p) for p in ps), inf.resolve(res))
            for m, (ps, res) in ms.items()
        }
        for c, ms in inf._class_methods.items()
    }
    return report


def check_against(report: InferenceReport, schema) -> list[str]:
    """Check a concrete schema against inferred requirements.

    Returns a list of violations (empty = the schema satisfies every
    *named-class* requirement; free-identifier and open requirements
    describe the query's environment, not the schema, and are reported
    by :meth:`InferenceReport.describe`).
    """
    problems: list[str] = []
    for cname, attrs in report.class_attrs.items():
        if cname not in schema:
            problems.append(f"schema lacks class {cname!r}")
            continue
        declared = dict(schema.atypes(cname))
        for a, want in attrs.items():
            if a not in declared:
                problems.append(f"class {cname} lacks attribute {a!r}")
            elif not isinstance(want, TVar) and declared[a] != want and not schema.subtype(declared[a], want):
                problems.append(
                    f"class {cname}.{a}: schema has {declared[a]}, query "
                    f"needs {want}"
                )
    for cname, methods in getattr(report, "class_methods", {}).items():
        if cname not in schema:
            continue
        for m, (ps, res) in methods.items():
            try:
                mt = schema.mtype(cname, m)
            except Exception:
                problems.append(f"class {cname} lacks method {m!r}")
                continue
            if len(mt.params) != len(ps):
                problems.append(f"method {cname}.{m}: arity mismatch")
    return problems
