"""Executable checkers for Theorems 1–8.

Each function turns one theorem into a falsifiable runtime check over a
concrete configuration.  A ``TheoremReport`` with ``holds=False`` is a
*counterexample to the paper* (or, far more likely, a bug in this
implementation) and carries enough detail to replay it.  The test-suite
and the T-series benchmarks run these over thousands of random
well-typed configurations from :mod:`repro.metatheory.generators`.

Mapping:

=========  ===============================================================
Thm 1      :func:`check_subject_reduction` (types preserved up to ≤)
Thm 2      :func:`check_progress` (non-values can always step)
Thm 3      :func:`check_type_soundness` (never stuck along any run)
Thm 4      :func:`check_functional_determinism` (``new``-free queries:
           all schedules give literally identical (EE, OE, v))
Thm 5      :func:`check_subject_reduction` with effects (per-step effect
           ⊆ inferred; type preserved)
Thm 6      :func:`check_progress` (same statement with effects)
Thm 7      :func:`check_determinism` (⊢′-accepted queries agree up to ∼)
Thm 8      :func:`check_safe_commutativity` (⊢″-commutable operands:
           both orders agree up to ∼)
=========  ===============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.effects.algebra import EMPTY, Effect
from repro.effects.checker import EffectChecker
from repro.effects.determinism import DeterminismChecker
from repro.errors import FuelExhausted, IOQLTypeError, StuckError
from repro.lang.ast import Definition, New, Query, SetOp
from repro.lang.traversal import walk
from repro.lang.values import is_value
from repro.model.schema import Schema
from repro.model.types import ClassType, Type
from repro.db.store import ExtentEnv, ObjectEnv
from repro.semantics.bijection import equivalent
from repro.semantics.explorer import explore
from repro.semantics.machine import Config, Machine
from repro.semantics.strategy import FIRST, Strategy
from repro.typing.context import TypeContext


@dataclass
class TheoremReport:
    """Outcome of checking one theorem on one configuration."""

    theorem: str
    holds: bool
    detail: str = ""
    steps_checked: int = 0

    def __bool__(self) -> bool:
        return self.holds


def _ctx_for(schema: Schema, oe: ObjectEnv, defs=None) -> TypeContext:
    oid_types: dict[str, Type] = {
        oid: ClassType(rec.cname) for oid, rec in oe.items()
    }
    return TypeContext(schema, defs=dict(defs or {}), vars=oid_types)


def is_functional(q: Query, definitions: dict[str, Definition] | None = None) -> bool:
    """The paper's *functional* predicate: no ``new`` anywhere, including
    inside every definition body (we conservatively scan all of DE —
    definitions are non-recursive so reachability refinement would only
    shrink the set)."""
    if any(isinstance(n, New) for n in walk(q)):
        return False
    for d in (definitions or {}).values():
        if any(isinstance(n, New) for n in walk(d.body)):
            return False
    return True


# ---------------------------------------------------------------------------
# Theorems 1 & 5: subject reduction (plain and effect-instrumented)
# ---------------------------------------------------------------------------


def check_subject_reduction(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    strategy: Strategy = FIRST,
    max_steps: int = 2_000,
    defs=None,
) -> TheoremReport:
    """Theorems 1 and 5 along one reduction sequence.

    At every step checks (i) the new configuration still types, at a
    subtype of the original type (Thm 1), and (ii) the step's dynamic
    effect and the residual query's inferred effect are both within the
    original inferred effect ε (Thm 5; the residual bound uses the
    admissible (Does) weakening).
    """
    schema = machine.schema
    checker = EffectChecker()
    try:
        sigma, epsilon = checker.check(_ctx_for(schema, oe, defs), q)
    except IOQLTypeError as exc:
        return TheoremReport("subject-reduction", False, f"initial query ill-typed: {exc}")
    config = Config(ee, oe, q)
    traced = EMPTY
    steps = 0
    while not is_value(config.query) and steps < max_steps:
        try:
            result = machine.step(config, strategy)
        except FuelExhausted:
            return TheoremReport(
                "subject-reduction", True,
                "method diverged (vacuously preserved)", steps,
            )
        except StuckError as exc:
            return TheoremReport(
                "subject-reduction", False, f"stuck at step {steps}: {exc}", steps
            )
        config = result.config
        traced |= result.effect
        steps += 1
        ctx = _ctx_for(schema, config.oe, defs)
        try:
            sigma_p, eps_p = checker.check(ctx, config.query)
        except IOQLTypeError as exc:
            return TheoremReport(
                "subject-reduction",
                False,
                f"step {steps} ({result.rule}) broke typing: {exc}\n"
                f"  query: {config.query}",
                steps,
            )
        if not schema.subtype(sigma_p, sigma):
            return TheoremReport(
                "subject-reduction",
                False,
                f"step {steps} ({result.rule}): type {sigma_p} ≰ {sigma}",
                steps,
            )
        if not result.effect.subeffect_of(epsilon):
            return TheoremReport(
                "subject-reduction",
                False,
                f"step {steps} ({result.rule}): dynamic effect "
                f"{result.effect} ⊄ inferred {epsilon}",
                steps,
            )
        if not eps_p.subeffect_of(epsilon):
            return TheoremReport(
                "subject-reduction",
                False,
                f"step {steps} ({result.rule}): residual effect "
                f"{eps_p} ⊄ inferred {epsilon}",
                steps,
            )
    if not traced.subeffect_of(epsilon):
        return TheoremReport(
            "subject-reduction", False,
            f"accumulated trace {traced} ⊄ inferred {epsilon}", steps,
        )
    return TheoremReport("subject-reduction", True, "", steps)


# ---------------------------------------------------------------------------
# Theorems 2 & 6: progress
# ---------------------------------------------------------------------------


def check_progress(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    strategy: Strategy = FIRST,
    max_steps: int = 2_000,
    defs=None,
) -> TheoremReport:
    """Theorems 2/6: every well-typed non-value configuration can step.

    Walks one reduction sequence; at each point a well-typed non-value
    must yield at least one successor.  (Typing of intermediate states
    is re-established per Theorem 1, which
    :func:`check_subject_reduction` validates separately.)
    """
    schema = machine.schema
    try:
        EffectChecker().check(_ctx_for(schema, oe, defs), q)
    except IOQLTypeError as exc:
        return TheoremReport("progress", False, f"initial query ill-typed: {exc}")
    config = Config(ee, oe, q)
    steps = 0
    while not is_value(config.query) and steps < max_steps:
        try:
            successors = machine.possible_steps(config)
        except FuelExhausted:
            return TheoremReport("progress", True, "method diverged", steps)
        except StuckError as exc:
            return TheoremReport(
                "progress", False, f"no rule applies at step {steps}: {exc}", steps
            )
        if not successors:
            return TheoremReport(
                "progress", False,
                f"well-typed non-value has no successor at step {steps}: "
                f"{config.query}",
                steps,
            )
        idx = strategy.choose(tuple(range(len(successors)))) if len(successors) > 1 else 0
        config = successors[min(idx, len(successors) - 1)].config
        steps += 1
    return TheoremReport("progress", True, "", steps)


# ---------------------------------------------------------------------------
# Theorem 3: type soundness
# ---------------------------------------------------------------------------


def check_type_soundness(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    strategies: tuple[Strategy, ...] = (FIRST,),
    max_steps: int = 5_000,
    defs=None,
) -> TheoremReport:
    """Theorem 3: a well-typed query never reaches a stuck state.

    Runs the query under each given strategy; acceptance means every run
    either reached a value or exhausted fuel (divergence) — but never
    raised :class:`StuckError`.
    """
    schema = machine.schema
    try:
        EffectChecker().check(_ctx_for(schema, oe, defs), q)
    except IOQLTypeError as exc:
        return TheoremReport("type-soundness", False, f"ill-typed: {exc}")
    total = 0
    for strat in strategies:
        config = Config(ee, oe, q)
        steps = 0
        while not is_value(config.query) and steps < max_steps:
            try:
                config = machine.step(config, strat).config
            except FuelExhausted:
                break
            except StuckError as exc:
                return TheoremReport(
                    "type-soundness",
                    False,
                    f"stuck after {steps} steps under {type(strat).__name__}: {exc}",
                    total + steps,
                )
            steps += 1
        total += steps
    return TheoremReport("type-soundness", True, "", total)


# ---------------------------------------------------------------------------
# Theorem 4: functional queries are strictly deterministic
# ---------------------------------------------------------------------------


def check_functional_determinism(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    max_steps: int = 5_000,
    max_paths: int = 20_000,
    definitions: dict[str, Definition] | None = None,
) -> TheoremReport:
    """Theorem 4: all schedules of a ``new``-free query agree *exactly*.

    No bijection is needed: functional queries create no oids, so the
    theorem promises literal equality of EE, OE and the value.
    """
    if not is_functional(q, definitions):
        return TheoremReport(
            "functional-determinism", False, "premise fails: query contains new"
        )
    ex = explore(machine, ee, oe, q, max_steps=max_steps, max_paths=max_paths)
    if ex.truncated:
        return TheoremReport(
            "functional-determinism", True, "exploration truncated; sampled paths agree"
            if len(ex.outcomes) <= 1 else "truncated with disagreement",
        )
    if ex.stuck:
        return TheoremReport("functional-determinism", False, "stuck path found")
    if len(ex.outcomes) > 1:
        return TheoremReport(
            "functional-determinism",
            False,
            f"{len(ex.outcomes)} structurally distinct outcomes: "
            + " / ".join(str(o.value) for o in ex.outcomes[:3]),
            ex.paths,
        )
    return TheoremReport("functional-determinism", True, "", ex.paths)


# ---------------------------------------------------------------------------
# Theorem 7: ⊢′-accepted queries are deterministic up to ∼
# ---------------------------------------------------------------------------


def check_determinism(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    max_steps: int = 5_000,
    max_paths: int = 20_000,
    defs=None,
) -> TheoremReport:
    """Theorem 7 on one configuration.

    If ⊢′ rejects the query the theorem is vacuous (reported as holding
    with a note — rejection is *not* a violation; the analysis is
    conservative).  If ⊢′ accepts, every schedule must agree up to the
    oid bijection ∼.
    """
    schema = machine.schema
    checker = DeterminismChecker()
    try:
        checker.check(_ctx_for(schema, oe, defs), q)
    except IOQLTypeError as exc:
        return TheoremReport("determinism", False, f"ill-typed: {exc}")
    if checker.interferences:
        return TheoremReport(
            "determinism", True, "vacuous: rejected by ⊢′ (interference present)"
        )
    ex = explore(machine, ee, oe, q, max_steps=max_steps, max_paths=max_paths)
    if ex.truncated:
        return TheoremReport("determinism", True, "truncated; sampled paths only")
    if ex.diverged:
        # Note 7's statement quantifies over *terminating* runs; a
        # diverging schedule alongside a value would itself be an
        # observable difference, so we flag it.
        return TheoremReport(
            "determinism", False, "⊢′-accepted query diverged on some schedule"
        )
    if ex.stuck:
        return TheoremReport("determinism", False, "stuck path found")
    first = ex.outcomes[0]
    for other in ex.outcomes[1:]:
        if not equivalent(first.value, first.ee, first.oe, other.value, other.ee, other.oe):
            return TheoremReport(
                "determinism",
                False,
                f"⊢′ accepted but outcomes differ beyond ∼: {first.value} "
                f"vs {other.value}",
                ex.paths,
            )
    return TheoremReport("determinism", True, "", ex.paths)


# ---------------------------------------------------------------------------
# Theorem 8: safe commutativity
# ---------------------------------------------------------------------------


def check_safe_commutativity(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    max_steps: int = 5_000,
    max_paths: int = 20_000,
    defs=None,
) -> TheoremReport:
    """Theorem 8 on one configuration.

    ``q`` must be a commutative binary set operation ``q₁ op q₂``.  If
    the operand effects do not interfere (the ⊢″ side condition), every
    outcome of ``q₁ op q₂`` must have a ∼-equal outcome of
    ``q₂ op q₁`` and vice versa.
    """
    if not isinstance(q, SetOp) or not q.op.commutative:
        return TheoremReport(
            "safe-commutativity", True, "vacuous: not a commutative set op"
        )
    schema = machine.schema
    checker = EffectChecker()
    ctx = _ctx_for(schema, oe, defs)
    try:
        _, le = checker.check(ctx, q.left)
        _, re_ = checker.check(ctx, q.right)
    except IOQLTypeError as exc:
        return TheoremReport("safe-commutativity", False, f"ill-typed: {exc}")
    if le.interferes_with(re_):
        return TheoremReport(
            "safe-commutativity", True, "vacuous: operands interfere (⊢″ rejects)"
        )
    swapped = SetOp(q.op, q.right, q.left)
    e1 = explore(machine, ee, oe, q, max_steps=max_steps, max_paths=max_paths)
    e2 = explore(machine, ee, oe, swapped, max_steps=max_steps, max_paths=max_paths)
    if e1.truncated or e2.truncated:
        return TheoremReport("safe-commutativity", True, "truncated; sampled only")
    if e1.diverged != e2.diverged or bool(e1.stuck) != bool(e2.stuck):
        return TheoremReport(
            "safe-commutativity", False, "divergence/stuckness asymmetry"
        )
    for a in e1.outcomes:
        if not any(
            equivalent(a.value, a.ee, a.oe, b.value, b.ee, b.oe)
            for b in e2.outcomes
        ):
            return TheoremReport(
                "safe-commutativity",
                False,
                f"outcome {a.value} of q₁∪q₂ has no ∼-match after commuting",
                e1.paths + e2.paths,
            )
    for b in e2.outcomes:
        if not any(
            equivalent(b.value, b.ee, b.oe, a.value, a.ee, a.oe)
            for a in e1.outcomes
        ):
            return TheoremReport(
                "safe-commutativity",
                False,
                f"outcome {b.value} of q₂∪q₁ has no ∼-match in the original",
                e1.paths + e2.paths,
            )
    return TheoremReport("safe-commutativity", True, "", e1.paths + e2.paths)
