"""Random generation of schemas, stores and *well-typed* queries.

The metatheory of §3.4/§4 is universally quantified over queries and
runtime environments; we test it by sampling.  The generator is
type-directed: :meth:`QueryGenerator.query` takes a target type and
produces a random query of (a subtype of) that type, so every sample is
well-typed *by construction* — which the test-suite double-checks
against the Figure 1 checker (a disagreement would be a bug in one of
the two).

Generation is seeded and deterministic (a ``random.Random`` instance),
making every hypothesis/benchmark failure replayable.

Knobs:

* ``allow_new`` — with ``False``, generated queries are *functional*
  in the paper's sense (no object creation), the premise of Theorem 4;
* ``allow_methods`` — method calls can diverge; theorems about
  termination-sensitive properties sample with this off;
* ``depth`` — maximum expression depth.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.lang.ast import (
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Var,
    ExtentRef,
)
from repro.model.schema import AttrDef, ClassDef, MethodDef, Schema
from repro.model.types import (
    BOOL,
    INT,
    STRING,
    ClassType,
    RecordType,
    SetType,
    Type,
)
from repro.db.store import ExtentEnv, ObjectEnv, OidSupply, populate

_NAMES = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta"]
_STRINGS = ["ada", "grace", "edsger", "barbara", "tony", "leslie"]


def make_random_schema(rng: random.Random, *, n_classes: int | None = None) -> Schema:
    """A random single-inheritance schema with primitive and object refs.

    Class ``Cᵢ`` may extend any earlier class (or Object) and its
    attributes may reference only earlier classes — this stratification
    makes random store population trivially well-founded.
    """
    n = n_classes if n_classes is not None else rng.randint(2, len(_NAMES))
    classes: list[ClassDef] = []
    for i in range(n):
        name = _NAMES[i]
        superclass = "Object" if i == 0 or rng.random() < 0.5 else _NAMES[rng.randrange(i)]
        inherited = set()
        # collect inherited attribute names to avoid shadowing
        sup = superclass
        while sup != "Object":
            cd = next(c for c in classes if c.name == sup)
            inherited |= {a.name for a in cd.attributes}
            sup = cd.superclass
        attrs: list[AttrDef] = []
        for j in range(rng.randint(1, 3)):
            aname = f"{name.lower()}_a{j}"
            if aname in inherited:
                continue
            choices: list[Type] = [INT, BOOL, STRING]
            if i > 0 and rng.random() < 0.4:
                choices.append(ClassType(_NAMES[rng.randrange(i)]))
            attrs.append(AttrDef(aname, rng.choice(choices)))
        methods: list[MethodDef] = []
        classes.append(
            ClassDef(name, superclass, f"{name}s", tuple(attrs), tuple(methods))
        )
    return Schema(classes)


def make_random_store(
    schema: Schema, rng: random.Random, *, per_class: int = 2
) -> tuple[ExtentEnv, ObjectEnv, OidSupply]:
    """Populate 1..per_class objects of every class (stratified refs)."""
    ee = ExtentEnv.for_schema(schema)
    oe = ObjectEnv()
    supply = OidSupply()
    by_class: dict[str, list[str]] = {c: [] for c in schema.class_names()}
    order = [n for n in _NAMES if n in schema.class_names()]
    for cname in order:
        for _ in range(rng.randint(1, per_class)):
            attrs = []
            for a, t in schema.atypes(cname):
                attrs.append((a, _random_prim_or_ref(t, by_class, schema, rng)))
            ee, oe, oid = populate(schema, ee, oe, supply, cname, attrs)
            for anc in schema.hierarchy.ancestors(cname):
                if anc in by_class:
                    by_class[anc].append(oid.name)
    return ee, oe, supply


def _random_prim_or_ref(
    t: Type, by_class: dict[str, list[str]], schema: Schema, rng: random.Random
) -> Query:
    if t == INT:
        return IntLit(rng.randint(-5, 20))
    if t == BOOL:
        return BoolLit(rng.random() < 0.5)
    if t == STRING:
        return StrLit(rng.choice(_STRINGS))
    assert isinstance(t, ClassType)
    pool = by_class.get(t.name, [])
    if not pool:
        raise AssertionError(
            f"stratification violated: no object of {t.name} yet"
        )
    return OidRef(rng.choice(pool))


class QueryGenerator:
    """Type-directed random query generation against one (schema, OE)."""

    def __init__(
        self,
        schema: Schema,
        oe: ObjectEnv,
        rng: random.Random,
        *,
        allow_new: bool = True,
        allow_methods: bool = True,
        max_depth: int = 5,
    ):
        self.schema = schema
        self.oe = oe
        self.rng = rng
        self.allow_new = allow_new
        self.allow_methods = allow_methods
        self.max_depth = max_depth
        self._oids_by_class: dict[str, list[str]] = {}
        for oid, rec in oe.items():
            for anc in schema.hierarchy.ancestors(rec.cname):
                self._oids_by_class.setdefault(anc, []).append(oid)
        self._fresh = 0

    # ------------------------------------------------------------------
    def query(self, target: Type, env: dict[str, Type] | None = None) -> Query:
        """A random well-typed query of type ≤ ``target``."""
        return self._gen(target, dict(env or {}), self.max_depth)

    def random_type(self, *, depth: int = 2) -> Type:
        """A random target type (primitives weighted up)."""
        r = self.rng.random()
        if depth <= 0 or r < 0.5:
            prims: list[Type] = [INT, BOOL, STRING]
            classes = sorted(self.schema.class_names())
            if classes and self.rng.random() < 0.4:
                return ClassType(self.rng.choice(classes))
            return self.rng.choice(prims)
        if r < 0.8:
            return SetType(self.random_type(depth=depth - 1))
        fields = tuple(
            (f"f{i}", self.random_type(depth=depth - 1))
            for i in range(self.rng.randint(1, 3))
        )
        return RecordType(fields)

    # ------------------------------------------------------------------
    def _gen(self, target: Type, env: dict[str, Type], depth: int) -> Query:
        producers = self._producers(target, env, depth)
        self.rng.shuffle(producers)
        for p in producers:
            out = p()
            if out is not None:
                return out
        raise AssertionError(f"no producer succeeded for {target}")

    def _producers(
        self, target: Type, env: dict[str, Type], depth: int
    ) -> list[Callable[[], Query | None]]:
        rng = self.rng
        deep = depth > 0
        ps: list[Callable[[], Query | None]] = []

        # a variable of a suitable type is always a candidate
        def from_env() -> Query | None:
            cands = [
                x for x, t in env.items() if self.schema.subtype(t, target)
            ]
            return Var(rng.choice(cands)) if cands else None

        ps.append(from_env)

        if target == INT:
            ps.append(lambda: IntLit(rng.randint(-5, 20)))
            if deep:
                ps.append(
                    lambda: IntOp(
                        rng.choice(list(IntOpKind)),
                        self._gen(INT, env, depth - 1),
                        self._gen(INT, env, depth - 1),
                    )
                )
                ps.append(
                    lambda: Size(
                        self._gen(SetType(self.random_type(depth=0)), env, depth - 1)
                    )
                )
                ps.append(lambda: self._if(INT, env, depth))
                ps.append(lambda: self._attr_of(INT, env, depth))
        elif target == BOOL:
            ps.append(lambda: BoolLit(rng.random() < 0.5))
            if deep:
                ps.append(
                    lambda: PrimEq(
                        self._gen(INT, env, depth - 1),
                        self._gen(INT, env, depth - 1),
                    )
                )
                ps.append(
                    lambda: Cmp(
                        rng.choice(list(CmpKind)),
                        self._gen(INT, env, depth - 1),
                        self._gen(INT, env, depth - 1),
                    )
                )
                ps.append(lambda: self._objeq(env, depth))
                ps.append(lambda: self._if(BOOL, env, depth))
        elif target == STRING:
            ps.append(lambda: StrLit(rng.choice(_STRINGS)))
            if deep:
                ps.append(lambda: self._if(STRING, env, depth))
                ps.append(lambda: self._attr_of(STRING, env, depth))
        elif isinstance(target, ClassType):
            ps.append(lambda: self._some_oid(target.name))
            if deep and self.allow_new:
                ps.append(lambda: self._new(target.name, env, depth))
            if deep:
                ps.append(lambda: self._upcast(target.name, env, depth))
        elif isinstance(target, SetType):
            elem = target.elem
            ps.append(lambda: SetLit(()))
            if deep:
                ps.append(
                    lambda: SetLit(
                        tuple(
                            self._gen(elem, env, depth - 1)
                            for _ in range(rng.randint(1, 3))
                        )
                    )
                )
                ps.append(
                    lambda: SetOp(
                        rng.choice(list(SetOpKind)),
                        self._gen(target, env, depth - 1),
                        self._gen(target, env, depth - 1),
                    )
                )
                ps.append(lambda: self._comp(elem, env, depth))
            ps.append(lambda: self._extent_of(elem))
        elif isinstance(target, RecordType):
            ps.append(
                lambda: RecordLit(
                    tuple(
                        (l, self._gen(t, env, max(0, depth - 1)))
                        for l, t in target.fields
                    )
                )
            )
        return ps

    # -- individual productions ----------------------------------------------
    def _if(self, target: Type, env: dict[str, Type], depth: int) -> Query:
        return If(
            self._gen(BOOL, env, depth - 1),
            self._gen(target, env, depth - 1),
            self._gen(target, env, depth - 1),
        )

    def _some_oid(self, cname: str) -> Query | None:
        pool = self._oids_by_class.get(cname)
        return OidRef(self.rng.choice(pool)) if pool else None

    def _new(self, cname: str, env: dict[str, Type], depth: int) -> Query | None:
        # pick a concrete subclass (possibly cname itself)
        subs = sorted(
            c
            for c in self.schema.hierarchy.subclasses(cname)
            if c in self.schema
        )
        if not subs:
            return None
        chosen = self.rng.choice(subs)
        fields = tuple(
            (a, self._gen(t, env, max(0, depth - 1)))
            for a, t in self.schema.atypes(chosen)
        )
        return New(chosen, fields)

    def _upcast(self, cname: str, env: dict[str, Type], depth: int) -> Query | None:
        subs = sorted(
            c
            for c in self.schema.hierarchy.subclasses(cname)
            if c != cname and self._oids_by_class.get(c)
        )
        if not subs:
            return None
        sub = self.rng.choice(subs)
        inner = self._some_oid(sub)
        if inner is None:
            return None
        return Cast(cname, inner)

    def _objeq(self, env: dict[str, Type], depth: int) -> Query | None:
        classes = sorted(self._oids_by_class)
        if not classes:
            return None
        c = self.rng.choice(classes)
        a = self._some_oid(c)
        b = self._some_oid(c)
        if a is None or b is None:
            return None
        return ObjEq(a, b)

    def _attr_of(self, target: Type, env: dict[str, Type], depth: int) -> Query | None:
        """``obj.a`` where some class has an attribute of the target type."""
        cands: list[tuple[str, str]] = []
        for cname in sorted(self.schema.class_names()):
            for a, t in self.schema.atypes(cname):
                if t == target:
                    cands.append((cname, a))
        self.rng.shuffle(cands)
        for cname, a in cands:
            obj = self._class_expr(cname, env, depth - 1)
            if obj is not None:
                return Field(obj, a)
        return None

    def _class_expr(self, cname: str, env: dict[str, Type], depth: int) -> Query | None:
        cands = [
            x
            for x, t in env.items()
            if isinstance(t, ClassType)
            and self.schema.hierarchy.is_subclass(t.name, cname)
        ]
        if cands and self.rng.random() < 0.7:
            return Var(self.rng.choice(cands))
        return self._some_oid(cname)

    def _extent_of(self, elem: Type) -> Query | None:
        if not isinstance(elem, ClassType):
            return None
        cands = [
            e
            for e, c in sorted(self.schema.extents.items())
            if self.schema.hierarchy.is_subclass(c, elem.name)
        ]
        return ExtentRef(self.rng.choice(cands)) if cands else None

    def _comp(self, elem: Type, env: dict[str, Type], depth: int) -> Query:
        src_elem = self.random_type(depth=0)
        source = self._gen(SetType(src_elem), env, depth - 1)
        self._fresh += 1
        var = f"v{self._fresh}"
        inner = dict(env)
        inner[var] = src_elem
        quals: list = [Gen(var, source)]
        if self.rng.random() < 0.6:
            quals.append(Pred(self._gen(BOOL, inner, depth - 1)))
        head = self._gen(elem, inner, depth - 1)
        return Comp(head, tuple(quals))
