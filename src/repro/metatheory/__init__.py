"""Random generators and executable checkers for Theorems 1–8."""

from repro.metatheory.generators import (
    QueryGenerator, make_random_schema, make_random_store,
)
from repro.metatheory.theorems import (
    TheoremReport,
    check_determinism,
    check_functional_determinism,
    check_progress,
    check_safe_commutativity,
    check_subject_reduction,
    check_type_soundness,
    is_functional,
)

__all__ = [
    "QueryGenerator", "TheoremReport", "check_determinism",
    "check_functional_determinism", "check_progress",
    "check_safe_commutativity", "check_subject_reduction",
    "check_type_soundness", "is_functional", "make_random_schema",
    "make_random_store",
]
