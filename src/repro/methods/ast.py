"""Abstract syntax of MJava, the method language.

The paper assumes methods are "written in a third-party programming
language" and models their execution by an abstract big-step relation
⇓ ((Method) rule, §3.3); the extended paper uses "a valid fragment of
Java".  MJava is our executable stand-in for that fragment:

* **expressions** reuse the IOQL :class:`~repro.lang.ast.Query` nodes —
  literals, locals/parameters/``this`` (:class:`Var`), attribute access
  (:class:`Field`), method calls, arithmetic, comparisons, equality,
  conditionals, object creation (:class:`New`, §5 mode only), and
  extent reads (:class:`ExtentRef`, §5 mode only).  Comprehensions,
  definition calls, sets and records are *not* MJava (Note 1: the
  method language only handles data-model types φ), and the method
  type checker rejects them;
* **statements** are MJava's own: local declarations, assignments,
  attribute updates (§5 mode), ``if``, ``while`` and ``return``.

``while`` gives MJava genuine non-termination — the ``loop`` method of
the paper's §1 example is ``while (true) { }``.

Two *access modes* delimit the §2 / §5 design space:

* ``READ_ONLY`` (§2 core): bodies may read ``this``/arguments and
  attributes, call other read-only methods, and compute — effect ∅;
* ``EFFECTFUL`` (§5): bodies may additionally read extents (``R(C)``),
  create objects (``A(C)``) and update attributes (``U(C)``); the body's
  inferred effect must be within the method's declared effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.lang.ast import Query
from repro.model.types import Type


class AccessMode(Enum):
    """How much of the database a method body may touch (§2 vs §5)."""

    READ_ONLY = "read-only"
    EFFECTFUL = "effectful"


class Stmt:
    """Abstract base of MJava statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class VarDecl(Stmt):
    """``var x : φ := e;`` — declare and initialise a local."""

    name: str
    type: Type
    init: Query


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    """``x := e;`` — assign a local variable or parameter."""

    name: str
    expr: Query


@dataclass(frozen=True, slots=True)
class AttrAssign(Stmt):
    """``e.a := e′;`` — update an object attribute (§5 mode, effect U)."""

    target: Query
    attr: str
    expr: Query


@dataclass(frozen=True, slots=True)
class IfStmt(Stmt):
    """``if (e) { … } else { … }`` — the else branch may be empty."""

    cond: Query
    then: tuple[Stmt, ...]
    els: tuple[Stmt, ...] = ()


@dataclass(frozen=True, slots=True)
class While(Stmt):
    """``while (e) { … }`` — the source of method non-termination."""

    cond: Query
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class ForEach(Stmt):
    """``for (x in extent(e)) { … }`` — iterate an extent (§5 mode).

    This is how an MJava body *reads* the database (effect ``R(C)``):
    Note 1 keeps set types out of the method language, so extents are
    consumed by iteration rather than flowing as values.  Iteration
    order is deterministic (sorted oids) — the method-language relation
    ⇓ is deterministic in the paper.
    """

    var: str
    extent: str
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    """``return e;`` — every execution path must reach one."""

    expr: Query


@dataclass(frozen=True, slots=True)
class MethodBody(Stmt):
    """A full MJava method body: a statement block."""

    stmts: tuple[Stmt, ...]


@dataclass(frozen=True)
class NativeMethod:
    """A method implemented as a Python callable — the "third-party
    programming language" door of the paper, fully open.

    ``fn`` receives a :class:`repro.methods.interp.NativeContext` (a
    capability-limited view of the database honouring the access mode)
    plus the receiver oid and argument values, and returns a value.
    """

    fn: object  # Callable[[NativeContext, str, tuple[Query, ...]], Query]
    name: str = "<native>"
