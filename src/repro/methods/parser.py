"""Parser for MJava method bodies.

Grammar::

    body  ::= "{" stmt* "}"
    stmt  ::= "var" IDENT ":" type ":=" expr ";"
            | "return" expr ";"
            | "if" "(" expr ")" block ["else" block]
            | "while" "(" expr ")" block
            | IDENT ":=" expr ";"              -- local assignment
            | postfix "." IDENT ":=" expr ";"  -- attribute update (§5)
    block ::= "{" stmt* "}"

Expressions are IOQL expressions (shared parser) extended with two
primaries: ``this`` and ``extent(e)``.  The *type checker* — not the
parser — rejects expression forms that are not MJava (comprehensions,
sets, records, definition calls) and enforces the access mode.
"""

from __future__ import annotations

from repro.lang.ast import ExtentRef, Field, Query, Var
from repro.lang.lexer import TokenStream
from repro.lang.parser import Parser
from repro.methods.ast import (
    Assign,
    AttrAssign,
    ForEach,
    IfStmt,
    MethodBody,
    Return,
    Stmt,
    VarDecl,
    While,
)


class MethodExprParser(Parser):
    """IOQL expression parser extended with ``this`` and ``extent(e)``."""

    def primary(self) -> Query:
        ts = self.ts
        if ts.accept("this"):
            return Var("this")
        if ts.accept("extent"):
            ts.expect("(")
            name = ts.expect("IDENT").text
            ts.expect(")")
            return ExtentRef(name)
        return super().primary()


class MethodBodyParser:
    """Statement-level parser wrapping :class:`MethodExprParser`."""

    def __init__(self, ts: TokenStream):
        self.ts = ts
        self.exprs = MethodExprParser(ts)

    def body(self) -> MethodBody:
        """Parse ``{ stmt* }``."""
        return MethodBody(self._block())

    def _block(self) -> tuple[Stmt, ...]:
        ts = self.ts
        ts.expect("{")
        stmts: list[Stmt] = []
        while not ts.at("}"):
            stmts.append(self._stmt())
        ts.expect("}")
        return tuple(stmts)

    def _stmt(self) -> Stmt:
        ts = self.ts
        if ts.accept("var"):
            name = ts.expect("IDENT").text
            ts.expect(":")
            t = self.exprs.type_expr()
            ts.expect(":=")
            init = self.exprs.expr()
            ts.expect(";")
            return VarDecl(name, t, init)
        if ts.accept("return"):
            expr = self.exprs.expr()
            ts.expect(";")
            return Return(expr)
        if ts.accept("if"):
            ts.expect("(")
            cond = self.exprs.expr()
            ts.expect(")")
            then = self._block()
            els: tuple[Stmt, ...] = ()
            if ts.accept("else"):
                els = self._block()
            return IfStmt(cond, then, els)
        if ts.accept("while"):
            ts.expect("(")
            cond = self.exprs.expr()
            ts.expect(")")
            return While(cond, self._block())
        if ts.accept("for"):
            ts.expect("(")
            var = ts.expect("IDENT").text
            ts.expect("in")
            ts.expect("extent")
            ts.expect("(")
            extent = ts.expect("IDENT").text
            ts.expect(")")
            ts.expect(")")
            return ForEach(var, extent, self._block())
        # assignment forms: local, or attribute update
        if ts.at("IDENT") and ts.peek(1).kind == ":=":
            name = ts.next().text
            ts.next()
            expr = self.exprs.expr()
            ts.expect(";")
            return Assign(name, expr)
        target = self.exprs.expr()
        if ts.accept(":="):
            if not isinstance(target, Field):
                raise ts.error("only locals and attributes are assignable")
            expr = self.exprs.expr()
            ts.expect(";")
            return AttrAssign(target.target, target.name, expr)
        raise ts.error("expected a statement")


def parse_method_body(source: str) -> MethodBody:
    """Parse a standalone ``{ … }`` method body string."""
    ts = TokenStream.of(source)
    body = MethodBodyParser(ts).body()
    ts.expect("EOF")
    return body
