"""MJava — the method language realising the paper's ⇓ relation."""

from repro.methods.ast import AccessMode, MethodBody, NativeMethod
from repro.methods.interp import Fuel, MethodInterpreter, NativeContext
from repro.methods.parser import parse_method_body
from repro.methods.typing import check_method, check_schema_methods

__all__ = [
    "AccessMode", "Fuel", "MethodBody", "MethodInterpreter", "NativeContext",
    "NativeMethod", "check_method", "check_schema_methods",
    "parse_method_body",
]
