"""The big-step method evaluation relation ⇓ of §3.3 / §5, executable.

Core mode (§2, read-only)::

    OE, body[x⃗ := v⃗, this := o] ⇓ v

Extended mode (§5, effectful)::

    EE, OE, body[x⃗ := v⃗, this := o] ⇓ EE′, OE′, v

The interpreter is **deterministic** (as the paper assumes of ⇓) and
**fuel-bounded**: a body that does not terminate within its fuel budget
raises :class:`FuelExhausted`, which the IOQL machine reports as
divergence of the enclosing (Method) step — this is how the §1 ``loop``
example becomes observable.

Effects are traced as the body executes; in read-only mode the trace is
necessarily ∅ (the type checker guarantees it, and the interpreter
asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.errors import EvalError, FuelExhausted, MethodError
from repro.lang.ast import (
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Field,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    PrimEq,
    Query,
    StrLit,
    Var,
)
from repro.lang.values import is_value
from repro.methods.ast import (
    AccessMode,
    Assign,
    AttrAssign,
    ForEach,
    IfStmt,
    MethodBody,
    NativeMethod,
    Return,
    Stmt,
    VarDecl,
    While,
)
from repro.model.schema import Schema
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord, OidSupply


class Fuel:
    """A shared, mutable step budget for one method invocation tree."""

    def __init__(self, amount: int):
        self.remaining = amount

    def tick(self, what: str = "method body") -> None:
        if self.remaining <= 0:
            raise FuelExhausted(f"{what} exceeded its fuel budget")
        self.remaining -= 1


class _ReturnSignal(Exception):
    """Internal control flow for ``return``; never escapes the module."""

    def __init__(self, value: Query):
        self.value = value


@dataclass
class MethodOutcome:
    """Result of one ⇓ derivation: final environments, value, effect."""

    ee: ExtentEnv
    oe: ObjectEnv
    value: Query
    effect: Effect


class NativeContext:
    """The capability surface a native (Python) method body sees.

    Mirrors the MJava interpreter exactly: reads and writes go through
    the same effect accounting, and read-only mode refuses mutation —
    so a native body cannot do anything an MJava body could not.
    """

    def __init__(self, interp: "MethodInterpreter"):
        self._interp = interp

    def class_of(self, oid: str) -> str:
        """The dynamic class of an object."""
        return self._interp.oe.get(oid).cname

    def attr(self, oid: str, name: str) -> Query:
        """Read an attribute value."""
        return self._interp.oe.get(oid).attr(name)

    def call(self, oid: str, mname: str, args: tuple[Query, ...]) -> Query:
        """Invoke another method on the same budget."""
        return self._interp.invoke_on_current(oid, mname, args)

    def extent(self, name: str) -> frozenset[str]:
        """Read an extent (effect R(C)); §5 mode only."""
        self._interp.require_effectful("extent access")
        cname, members = self._interp.ee.get(name)
        self._interp.effect |= Effect.of(read(cname))
        return members

    def create(self, cname: str, attrs: dict[str, Query]) -> str:
        """Create an object (effect A(C)); §5 mode only."""
        self._interp.require_effectful("object creation")
        return self._interp.create_object(cname, tuple(sorted(attrs.items())))

    def set_attr(self, oid: str, name: str, value: Query) -> None:
        """Update an attribute in place (effect U(C)); §5 mode only."""
        self._interp.require_effectful("attribute update")
        self._interp.update_attr(oid, name, value)

    def tick(self) -> None:
        """Charge one unit of fuel (long native loops should call this)."""
        self._interp.fuel.tick("native method")


class MethodInterpreter:
    """One ⇓ derivation: evaluates a single method invocation tree."""

    def __init__(
        self,
        schema: Schema,
        ee: ExtentEnv,
        oe: ObjectEnv,
        *,
        mode: AccessMode = AccessMode.READ_ONLY,
        fuel: Fuel | None = None,
        oid_supply: OidSupply | None = None,
    ):
        self.schema = schema
        self.ee = ee
        self.oe = oe
        self.mode = mode
        self.fuel = fuel or Fuel(10_000)
        self.supply = oid_supply or OidSupply()
        self.effect: Effect = EMPTY

    # -- public entry --------------------------------------------------------
    def invoke(self, oid: str, mname: str, args: tuple[Query, ...]) -> MethodOutcome:
        """Run ``oid.mname(args)`` to completion (or FuelExhausted)."""
        value = self.invoke_on_current(oid, mname, args)
        if self.mode is AccessMode.READ_ONLY:
            assert self.effect.is_empty(), "read-only method produced effects"
        return MethodOutcome(self.ee, self.oe, value, self.effect)

    # -- helpers shared with NativeContext --------------------------------------
    def require_effectful(self, what: str) -> None:
        if self.mode is not AccessMode.EFFECTFUL:
            raise MethodError(f"{what} attempted by a read-only method at run time")

    def create_object(self, cname: str, attrs: tuple[tuple[str, Query], ...]) -> str:
        declared = dict(self.schema.atypes(cname))
        if set(dict(attrs)) != set(declared):
            raise EvalError(f"new {cname}: attribute set mismatch")
        oid = self.supply.fresh(cname, self.oe)
        self.oe = self.oe.with_object(oid, ObjectRecord(cname, attrs))
        self.ee = self.ee.with_member(self.schema.class_extent(cname), oid)
        self.effect |= Effect.of(add(cname))
        return oid

    def update_attr(self, oid: str, name: str, value: Query) -> None:
        rec = self.oe.get(oid)
        self.oe = self.oe.with_object(oid, rec.with_attr(name, value))
        self.effect |= Effect.of(update(rec.cname))

    def invoke_on_current(
        self, oid: str, mname: str, args: tuple[Query, ...]
    ) -> Query:
        """Dispatch and run one method against the current EE/OE."""
        self.fuel.tick("method invocation")
        cname = self.oe.get(oid).cname
        mdef = self.schema.mbody(cname, mname)
        if len(args) != len(mdef.params):
            raise EvalError(f"{cname}.{mname}: arity mismatch")
        body = mdef.body
        if body is None:
            raise EvalError(f"{cname}.{mname} has no implementation bound")
        if isinstance(body, NativeMethod):
            result = body.fn(NativeContext(self), oid, args)  # type: ignore[operator]
            if not isinstance(result, Query) or not is_value(result):
                raise EvalError(
                    f"native method {cname}.{mname} returned a non-value "
                    f"{result!r}"
                )
            return result
        if not isinstance(body, MethodBody):
            raise EvalError(f"{cname}.{mname}: unrecognised body")
        env: dict[str, Query] = {"this": OidRef(oid)}
        for (x, _), v in zip(mdef.params, args):
            env[x] = v
        try:
            self._block(env, body.stmts)
        except _ReturnSignal as r:
            return r.value
        raise EvalError(f"{cname}.{mname} fell off the end without returning")

    # -- statements ----------------------------------------------------------------
    def _block(self, env: dict[str, Query], stmts: tuple[Stmt, ...]) -> None:
        for s in stmts:
            self._stmt(env, s)

    def _stmt(self, env: dict[str, Query], s: Stmt) -> None:
        self.fuel.tick()
        if isinstance(s, VarDecl):
            env[s.name] = self._expr(env, s.init)
            return
        if isinstance(s, Assign):
            env[s.name] = self._expr(env, s.expr)
            return
        if isinstance(s, AttrAssign):
            target = self._expr(env, s.target)
            if not isinstance(target, OidRef):
                raise EvalError("attribute update on a non-object")
            self.require_effectful("attribute update")
            self.update_attr(target.name, s.attr, self._expr(env, s.expr))
            return
        if isinstance(s, IfStmt):
            branch = s.then if self._bool(env, s.cond) else s.els
            self._block(env, branch)
            return
        if isinstance(s, While):
            while self._bool(env, s.cond):
                self.fuel.tick("while loop")
                self._block(env, s.body)
            return
        if isinstance(s, ForEach):
            self.require_effectful("extent iteration")
            cname, members = self.ee.get(s.extent)
            self.effect |= Effect.of(read(cname))
            for oid in sorted(members):
                self.fuel.tick("for loop")
                env[s.var] = OidRef(oid)
                self._block(env, s.body)
            env.pop(s.var, None)
            return
        if isinstance(s, Return):
            raise _ReturnSignal(self._expr(env, s.expr))
        raise EvalError(f"unknown statement {type(s).__name__}")

    def _bool(self, env: dict[str, Query], e: Query) -> bool:
        v = self._expr(env, e)
        if not isinstance(v, BoolLit):
            raise EvalError(f"condition evaluated to non-bool {v}")
        return v.value

    # -- expressions ------------------------------------------------------------------
    def _expr(self, env: dict[str, Query], e: Query) -> Query:
        self.fuel.tick()
        if isinstance(e, (IntLit, BoolLit, StrLit, OidRef)):
            return e
        if isinstance(e, Var):
            try:
                return env[e.name]
            except KeyError:
                raise EvalError(f"unbound method-local {e.name!r}") from None
        if isinstance(e, Field):
            target = self._expr(env, e.target)
            if not isinstance(target, OidRef):
                raise EvalError(f"attribute access on non-object {target}")
            return self.oe.get(target.name).attr(e.name)
        if isinstance(e, MethodCall):
            target = self._expr(env, e.target)
            if not isinstance(target, OidRef):
                raise EvalError(f"method call on non-object {target}")
            args = tuple(self._expr(env, a) for a in e.args)
            return self.invoke_on_current(target.name, e.mname, args)
        if isinstance(e, New):
            self.require_effectful("object creation")
            attrs = tuple((a, self._expr(env, sub)) for a, sub in e.fields)
            return OidRef(self.create_object(e.cname, attrs))
        if isinstance(e, Cast):
            return self._expr(env, e.arg)
        if isinstance(e, IntOp):
            l = self._int(env, e.left)
            r = self._int(env, e.right)
            if e.op is IntOpKind.ADD:
                return IntLit(l + r)
            if e.op is IntOpKind.SUB:
                return IntLit(l - r)
            return IntLit(l * r)
        if isinstance(e, Cmp):
            l = self._int(env, e.left)
            r = self._int(env, e.right)
            result = {
                CmpKind.LT: l < r,
                CmpKind.LE: l <= r,
                CmpKind.GT: l > r,
                CmpKind.GE: l >= r,
            }[e.op]
            return BoolLit(result)
        if isinstance(e, PrimEq):
            return BoolLit(self._expr(env, e.left) == self._expr(env, e.right))
        if isinstance(e, ObjEq):
            l = self._expr(env, e.left)
            r = self._expr(env, e.right)
            if not isinstance(l, OidRef) or not isinstance(r, OidRef):
                raise EvalError("'==' on non-objects")
            return BoolLit(l.name == r.name)
        if isinstance(e, If):
            return self._expr(env, e.then if self._bool(env, e.cond) else e.els)
        raise EvalError(f"{type(e).__name__} is not an MJava expression")

    def _int(self, env: dict[str, Query], e: Query) -> int:
        v = self._expr(env, e)
        if not isinstance(v, IntLit):
            raise EvalError(f"expected an int, got {v}")
        return v.value
