"""Type and effect checking of MJava method bodies.

The paper assumes "methods have also been typed using an effects
system" ((Method) effect rule, §4) and that in the core model "methods
both can not read the extents and can not side-effect the database, so
the value of ε″ will always be ∅".  This module supplies exactly that:

* :func:`check_method` types a method body against its declared
  signature, infers its effect, enforces the :class:`AccessMode`
  (read-only bodies must be pure), and checks the inferred effect is
  within the *declared* latent effect carried by the
  :class:`~repro.model.schema.MethodDef`;
* :func:`check_schema_methods` runs that over every MJava body in a
  schema (native bodies are trusted to their declaration — they are the
  "third-party language" the paper warns about).

MJava expressions reuse IOQL AST nodes but only the method-language
fragment is admitted (Note 1: only data-model types φ cross the
boundary): comprehensions, set/record construction, ``size`` and
definition calls are rejected here.
"""

from __future__ import annotations

from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.errors import MethodError, SchemaError
from repro.lang.ast import (
    BoolLit,
    Cast,
    Cmp,
    ExtentRef,
    Field,
    If,
    IntLit,
    IntOp,
    MethodCall,
    New,
    ObjEq,
    PrimEq,
    Query,
    StrLit,
    Var,
)
from repro.methods.ast import (
    AccessMode,
    Assign,
    AttrAssign,
    ForEach,
    IfStmt,
    MethodBody,
    NativeMethod,
    Return,
    Stmt,
    VarDecl,
    While,
)
from repro.model.schema import MethodDef, Schema
from repro.model.types import BOOL, INT, STRING, ClassType, Type, is_data_model_type


class _Env:
    """Local typing environment: parameters, ``this`` and declared locals."""

    def __init__(self, bindings: dict[str, Type]):
        self.bindings = dict(bindings)

    def lookup(self, name: str) -> Type:
        try:
            return self.bindings[name]
        except KeyError:
            raise MethodError(f"unbound identifier {name!r} in method body") from None

    def declare(self, name: str, t: Type) -> None:
        if name in self.bindings:
            raise MethodError(f"local {name!r} redeclared")
        self.bindings[name] = t


class MethodChecker:
    """Checks one method body; accumulates the inferred effect."""

    def __init__(self, schema: Schema, mode: AccessMode):
        self.schema = schema
        self.mode = mode
        self.effect = EMPTY

    # -- expressions --------------------------------------------------------
    def expr(self, env: _Env, e: Query) -> Type:
        if isinstance(e, IntLit):
            return INT
        if isinstance(e, BoolLit):
            return BOOL
        if isinstance(e, StrLit):
            return STRING
        if isinstance(e, Var):
            return env.lookup(e.name)
        if isinstance(e, Field):
            tt = self.expr(env, e.target)
            if not isinstance(tt, ClassType):
                raise MethodError(
                    f"attribute access .{e.name} needs an object, got {tt}"
                )
            try:
                return self.schema.atype(tt.name, e.name)
            except SchemaError as exc:
                raise MethodError(str(exc)) from None
        if isinstance(e, MethodCall):
            tt = self.expr(env, e.target)
            if not isinstance(tt, ClassType):
                raise MethodError(f"method call on non-object type {tt}")
            try:
                mt = self.schema.mtype(tt.name, e.mname)
            except SchemaError as exc:
                raise MethodError(str(exc)) from None
            if len(e.args) != len(mt.params):
                raise MethodError(
                    f"{tt.name}.{e.mname} expects {len(mt.params)} args"
                )
            for i, (a, pt) in enumerate(zip(e.args, mt.params)):
                at = self.expr(env, a)
                if not self.schema.subtype(at, pt):
                    raise MethodError(
                        f"argument {i} of {tt.name}.{e.mname}: {at} ≰ {pt}"
                    )
            self.effect |= mt.effect
            return mt.result
        if isinstance(e, New):
            self._require_effectful("object creation")
            declared = dict(self.schema.atypes(e.cname)) if e.cname in self.schema else None
            if declared is None:
                raise MethodError(f"new of unknown class {e.cname!r}")
            if set(e.labels()) != set(declared) or len(e.labels()) != len(declared):
                raise MethodError(
                    f"new {e.cname} must define exactly its attributes"
                )
            for a, sub in e.fields:
                at = self.expr(env, sub)
                if not self.schema.subtype(at, declared[a]):
                    raise MethodError(f"attribute {e.cname}.{a}: {at} ≰ {declared[a]}")
            self.effect |= Effect.of(add(e.cname))
            return ClassType(e.cname)
        if isinstance(e, ExtentRef):
            # No set types cross the method-language boundary (Note 1),
            # so extents are not MJava *values*; they are read only via
            # the `for (x in extent(e))` statement.
            raise MethodError(
                "extent(...) is not an MJava value (no set types in the "
                "method language, Note 1); iterate it with "
                "`for (x in extent(...))`"
            )
        if isinstance(e, Cast):
            at = self.expr(env, e.arg)
            if not isinstance(at, ClassType) or not self.schema.hierarchy.is_subclass(
                at.name, e.cname
            ):
                raise MethodError(f"illegal cast ({e.cname}) on {at}")
            return ClassType(e.cname)
        if isinstance(e, IntOp):
            self._expect(env, e.left, INT, e.op.value)
            self._expect(env, e.right, INT, e.op.value)
            return INT
        if isinstance(e, Cmp):
            self._expect(env, e.left, INT, e.op.value)
            self._expect(env, e.right, INT, e.op.value)
            return BOOL
        if isinstance(e, PrimEq):
            lt = self.expr(env, e.left)
            rt = self.expr(env, e.right)
            if lt != rt or not lt.is_primitive():
                raise MethodError(f"'=' on mismatched/non-primitive: {lt}, {rt}")
            return BOOL
        if isinstance(e, ObjEq):
            for side in (e.left, e.right):
                if not isinstance(self.expr(env, side), ClassType):
                    raise MethodError("'==' compares objects")
            return BOOL
        if isinstance(e, If):
            self._expect(env, e.cond, BOOL, "if condition")
            tt = self.expr(env, e.then)
            et = self.expr(env, e.els)
            j = self.schema.hierarchy.lub(tt, et)
            if j is None:
                raise MethodError(f"if branches have no common type: {tt}, {et}")
            return j
        raise MethodError(
            f"{type(e).__name__} is not an MJava expression (the method "
            f"language handles only data-model types φ — Note 1)"
        )

    def _expect(self, env: _Env, e: Query, want: Type, what: str) -> None:
        got = self.expr(env, e)
        if not self.schema.subtype(got, want):
            raise MethodError(f"operand of {what} must be {want}, got {got}")

    def _require_effectful(self, what: str) -> None:
        if self.mode is not AccessMode.EFFECTFUL:
            raise MethodError(
                f"{what} is not allowed in read-only methods (§2 core); "
                f"enable AccessMode.EFFECTFUL for the §5 design point"
            )

    # -- statements ------------------------------------------------------------
    def block(self, env: _Env, stmts: tuple[Stmt, ...], result: Type) -> bool:
        """Check a block; returns True iff it definitely returns."""
        returned = False
        for s in stmts:
            if returned:
                raise MethodError("unreachable statement after return")
            returned = self.stmt(env, s, result)
        return returned

    def stmt(self, env: _Env, s: Stmt, result: Type) -> bool:
        if isinstance(s, VarDecl):
            if not is_data_model_type(s.type):
                raise MethodError(
                    f"local {s.name!r} has non-φ type {s.type} (Note 1)"
                )
            it = self.expr(env, s.init)
            if not self.schema.subtype(it, s.type):
                raise MethodError(f"initialiser of {s.name!r}: {it} ≰ {s.type}")
            env.declare(s.name, s.type)
            return False
        if isinstance(s, Assign):
            if s.name == "this":
                raise MethodError("'this' is not assignable")
            lt = env.lookup(s.name)
            rt = self.expr(env, s.expr)
            if not self.schema.subtype(rt, lt):
                raise MethodError(f"assignment to {s.name!r}: {rt} ≰ {lt}")
            return False
        if isinstance(s, AttrAssign):
            self._require_effectful("attribute update")
            tt = self.expr(env, s.target)
            if not isinstance(tt, ClassType):
                raise MethodError(f"attribute update on non-object {tt}")
            try:
                at = self.schema.atype(tt.name, s.attr)
            except SchemaError as exc:
                raise MethodError(str(exc)) from None
            rt = self.expr(env, s.expr)
            if not self.schema.subtype(rt, at):
                raise MethodError(f"update {tt.name}.{s.attr}: {rt} ≰ {at}")
            self.effect |= Effect.of(update(tt.name))
            return False
        if isinstance(s, IfStmt):
            self._expect(env, s.cond, BOOL, "if condition")
            t = self.block(_Env(env.bindings), s.then, result)
            e = self.block(_Env(env.bindings), s.els, result)
            return t and e
        if isinstance(s, While):
            self._expect(env, s.cond, BOOL, "while condition")
            self.block(_Env(env.bindings), s.body, result)
            # `while (true)` never falls through: treat as terminal so the
            # paper's diverging `loop` method type-checks.
            return s.cond == BoolLit(True)
        if isinstance(s, ForEach):
            self._require_effectful("extent iteration")
            try:
                cname = self.schema.extent_class(s.extent)
            except SchemaError as exc:
                raise MethodError(str(exc)) from None
            self.effect |= Effect.of(read(cname))
            inner = _Env(env.bindings)
            inner.declare(s.var, ClassType(cname))
            self.block(inner, s.body, result)
            return False
        if isinstance(s, Return):
            rt = self.expr(env, s.expr)
            if not self.schema.subtype(rt, result):
                raise MethodError(f"return type {rt} ≰ declared {result}")
            return True
        raise MethodError(f"unknown statement {type(s).__name__}")


def check_method(
    schema: Schema,
    cname: str,
    mdef: MethodDef,
    mode: AccessMode = AccessMode.READ_ONLY,
) -> Effect:
    """Type/effect-check one method; returns the *inferred* effect.

    Raises :class:`MethodError` if the body is ill-typed, violates the
    access mode, fails to return on some path, or has an inferred
    effect outside its declared one.  Native bodies (and abstract
    declarations) are trusted to their declared effect.
    """
    if mdef.body is None or isinstance(mdef.body, NativeMethod):
        if mode is AccessMode.READ_ONLY and not mdef.effect.is_empty():
            raise MethodError(
                f"native/abstract method {cname}.{mdef.name} declares "
                f"effect {mdef.effect} in read-only mode"
            )
        return mdef.effect
    if not isinstance(mdef.body, MethodBody):
        raise MethodError(
            f"method {cname}.{mdef.name} has unrecognised body "
            f"{type(mdef.body).__name__}"
        )
    checker = MethodChecker(schema, mode)
    env = _Env({"this": ClassType(cname), **{x: t for x, t in mdef.params}})
    if not checker.block(env, mdef.body.stmts, mdef.result):
        raise MethodError(
            f"method {cname}.{mdef.name}: not all paths return"
        )
    if not checker.effect.subeffect_of(mdef.effect):
        raise MethodError(
            f"method {cname}.{mdef.name}: inferred effect {checker.effect} "
            f"exceeds declared {mdef.effect}"
        )
    return checker.effect


def check_schema_methods(
    schema: Schema, mode: AccessMode = AccessMode.READ_ONLY
) -> dict[tuple[str, str], Effect]:
    """Check every method body in the schema; map (class, method) → effect."""
    out: dict[tuple[str, str], Effect] = {}
    for cname, cd in sorted(schema.classes.items()):
        for m in cd.methods:
            out[(cname, m.name)] = check_method(schema, cname, m, mode)
    return out
