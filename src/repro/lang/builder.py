"""A fluent Python DSL for building IOQL queries without parsing.

Useful in tests, generators and programs that assemble queries
dynamically::

    from repro.lang import builder as B

    q = B.comp(
        B.var("p").attr("name"),
        B.gen("p", B.extent("Persons")),
        B.var("p").attr("age") > B.int_(30),
    )

Every expression wrapper is a :class:`Q` carrying the underlying AST
node in ``.node``; Python operators are overloaded where unambiguous
(``+ - * < <= > >=``), while ``=``/``==`` — which Python cannot
overload faithfully for this purpose — are the methods :meth:`Q.eq`
(primitive equality) and :meth:`Q.same` (object identity).
"""

from __future__ import annotations

from repro.lang.ast import (
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Var,
)


class Q:
    """A query-under-construction; wraps one AST node."""

    __slots__ = ("node",)

    def __init__(self, node: Query):
        self.node = node

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Q | int") -> "Q":
        return Q(IntOp(IntOpKind.ADD, self.node, _q(other).node))

    def __sub__(self, other: "Q | int") -> "Q":
        return Q(IntOp(IntOpKind.SUB, self.node, _q(other).node))

    def __mul__(self, other: "Q | int") -> "Q":
        return Q(IntOp(IntOpKind.MUL, self.node, _q(other).node))

    # -- comparisons (extension ops) ----------------------------------------
    def __lt__(self, other: "Q | int") -> "Q":
        return Q(Cmp(CmpKind.LT, self.node, _q(other).node))

    def __le__(self, other: "Q | int") -> "Q":
        return Q(Cmp(CmpKind.LE, self.node, _q(other).node))

    def __gt__(self, other: "Q | int") -> "Q":
        return Q(Cmp(CmpKind.GT, self.node, _q(other).node))

    def __ge__(self, other: "Q | int") -> "Q":
        return Q(Cmp(CmpKind.GE, self.node, _q(other).node))

    # -- equality (methods: Python == must stay Python) ------------------------
    def eq(self, other: "Q | int | bool | str") -> "Q":
        """Primitive equality ``q₁ = q₂``."""
        return Q(PrimEq(self.node, _q(other).node))

    def same(self, other: "Q") -> "Q":
        """Object identity ``q₁ == q₂``."""
        return Q(ObjEq(self.node, other.node))

    # -- sets ----------------------------------------------------------------
    def union(self, other: "Q") -> "Q":
        return Q(SetOp(SetOpKind.UNION, self.node, other.node))

    def intersect(self, other: "Q") -> "Q":
        return Q(SetOp(SetOpKind.INTERSECT, self.node, other.node))

    def except_(self, other: "Q") -> "Q":
        return Q(SetOp(SetOpKind.EXCEPT, self.node, other.node))

    # -- objects and records ----------------------------------------------------
    def attr(self, name: str) -> "Q":
        """``q.a`` / ``q.l`` — attribute or record projection."""
        return Q(Field(self.node, name))

    def call(self, mname: str, *args: "Q | int | bool | str") -> "Q":
        """``q.m(args…)`` — method invocation."""
        return Q(MethodCall(self.node, mname, tuple(_q(a).node for a in args)))

    def cast(self, cname: str) -> "Q":
        """``(C) q`` — upcast."""
        return Q(Cast(cname, self.node))

    def __str__(self) -> str:
        return str(self.node)

    def __repr__(self) -> str:
        return f"Q({self.node!s})"


def _q(x: "Q | Query | int | bool | str") -> Q:
    if isinstance(x, Q):
        return x
    if isinstance(x, Query):
        return Q(x)
    if isinstance(x, bool):
        return Q(BoolLit(x))
    if isinstance(x, int):
        return Q(IntLit(x))
    if isinstance(x, str):
        return Q(StrLit(x))
    raise TypeError(f"cannot lift {type(x).__name__} into a query")


# -- leaf constructors ---------------------------------------------------------


def int_(v: int) -> Q:
    return Q(IntLit(v))


def bool_(v: bool) -> Q:
    return Q(BoolLit(v))


def str_(v: str) -> Q:
    return Q(StrLit(v))


def var(name: str) -> Q:
    return Q(Var(name))


def extent(name: str) -> Q:
    return Q(ExtentRef(name))


def oid(name: str) -> Q:
    return Q(OidRef(name))


def set_(*items: Q | int | bool | str) -> Q:
    return Q(SetLit(tuple(_q(i).node for i in items)))


def record(**fields: Q | int | bool | str) -> Q:
    return Q(RecordLit(tuple((l, _q(v).node) for l, v in fields.items())))


def size(q: Q) -> Q:
    return Q(Size(q.node))


def new(cname: str, **attrs: Q | int | bool | str) -> Q:
    return Q(New(cname, tuple((a, _q(v).node) for a, v in attrs.items())))


def if_(cond: Q, then: Q | int | bool | str, els: Q | int | bool | str) -> Q:
    return Q(If(cond.node, _q(then).node, _q(els).node))


def defcall(name: str, *args: Q | int | bool | str) -> Q:
    return Q(DefCall(name, tuple(_q(a).node for a in args)))


# -- comprehensions --------------------------------------------------------------


def gen(varname: str, source: Q) -> Qualifier:
    """A generator qualifier ``x ← source``."""
    return Gen(varname, source.node)


def comp(head: Q, *qualifiers: Qualifier | Q) -> Q:
    """``{head | qualifiers…}`` — bare :class:`Q` args become predicates."""
    quals: list[Qualifier] = []
    for cq in qualifiers:
        if isinstance(cq, Q):
            quals.append(Pred(cq.node))
        else:
            quals.append(cq)
    return Q(Comp(head.node, tuple(quals)))


def build(q: Q | Query) -> Query:
    """Unwrap to the raw AST node."""
    return q.node if isinstance(q, Q) else q
