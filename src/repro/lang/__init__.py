"""IOQL: abstract syntax, values, parser, printer, traversals, sugar."""

from repro.lang import ast
from repro.lang.parser import parse_program, parse_query, parse_type
from repro.lang.pprint import pretty, pretty_program
from repro.lang.values import from_value, is_value, make_set_value, to_value

__all__ = [
    "ast", "from_value", "is_value", "make_set_value", "parse_program",
    "parse_query", "parse_type", "pretty", "pretty_program", "to_value",
]
