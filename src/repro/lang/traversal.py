"""Structural traversals over IOQL queries.

Provides the generic machinery the rest of the system builds on:

* :func:`map_subqueries` — rebuild a node with transformed immediate
  subqueries (one place that knows every node shape);
* :func:`subqueries` — the immediate subqueries, in evaluation order;
* :func:`free_vars` — free identifiers (generator-bound variables are
  the only binders inside queries);
* :func:`subst` — the paper's capture-avoiding substitution ``q[x:=v]``
  (capture can arise only when substituting *open* queries, which the
  optimizer's unnesting rule does; generators are α-renamed on demand);
* :func:`resolve_extents` — rewrite free occurrences of extent names
  from :class:`Var` to :class:`ExtentRef` (the parser cannot know which
  identifiers are extents);
* size/depth metrics used by the benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator

from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    Comp,
    DefCall,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)

_ATOMS = (IntLit, BoolLit, StrLit, Var, ExtentRef, OidRef)


def subqueries(q: Query) -> Iterator[Query]:
    """The immediate subqueries of ``q``, left-to-right."""
    if isinstance(q, _ATOMS):
        return
    if isinstance(q, (SetOp, IntOp, Cmp)):
        yield q.left
        yield q.right
    elif isinstance(q, (PrimEq, ObjEq)):
        yield q.left
        yield q.right
    elif isinstance(q, (SetLit, BagLit, ListLit)):
        yield from q.items
    elif isinstance(q, RecordLit):
        for _, sub in q.fields:
            yield sub
    elif isinstance(q, Field):
        yield q.target
    elif isinstance(q, DefCall):
        yield from q.args
    elif isinstance(q, (Size, Sum, ToSet)):
        yield q.arg
    elif isinstance(q, Cast):
        yield q.arg
    elif isinstance(q, MethodCall):
        yield q.target
        yield from q.args
    elif isinstance(q, New):
        for _, sub in q.fields:
            yield sub
    elif isinstance(q, If):
        yield q.cond
        yield q.then
        yield q.els
    elif isinstance(q, Traverse):
        yield q.source
    elif isinstance(q, Comp):
        yield q.head
        for cq in q.qualifiers:
            yield cq.cond if isinstance(cq, Pred) else cq.source  # type: ignore[union-attr]
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown query node {type(q).__name__}")


def map_subqueries(q: Query, f: Callable[[Query], Query]) -> Query:
    """Rebuild ``q`` with ``f`` applied to each immediate subquery.

    Structure-preserving and binder-oblivious: callers that care about
    binding (substitution, free variables) handle :class:`Comp`
    themselves before delegating here.
    """
    if isinstance(q, _ATOMS):
        return q
    if isinstance(q, SetOp):
        return SetOp(q.op, f(q.left), f(q.right))
    if isinstance(q, IntOp):
        return IntOp(q.op, f(q.left), f(q.right))
    if isinstance(q, Cmp):
        return Cmp(q.op, f(q.left), f(q.right))
    if isinstance(q, PrimEq):
        return PrimEq(f(q.left), f(q.right))
    if isinstance(q, ObjEq):
        return ObjEq(f(q.left), f(q.right))
    if isinstance(q, SetLit):
        return SetLit(tuple(f(i) for i in q.items))
    if isinstance(q, BagLit):
        return BagLit(tuple(f(i) for i in q.items))
    if isinstance(q, ListLit):
        return ListLit(tuple(f(i) for i in q.items))
    if isinstance(q, ToSet):
        return ToSet(f(q.arg))
    if isinstance(q, Sum):
        return Sum(f(q.arg))
    if isinstance(q, RecordLit):
        return RecordLit(tuple((l, f(sub)) for l, sub in q.fields))
    if isinstance(q, Field):
        return Field(f(q.target), q.name)
    if isinstance(q, DefCall):
        return DefCall(q.name, tuple(f(a) for a in q.args))
    if isinstance(q, Size):
        return Size(f(q.arg))
    if isinstance(q, Cast):
        return Cast(q.cname, f(q.arg))
    if isinstance(q, MethodCall):
        return MethodCall(f(q.target), q.mname, tuple(f(a) for a in q.args))
    if isinstance(q, New):
        return New(q.cname, tuple((l, f(sub)) for l, sub in q.fields))
    if isinstance(q, If):
        return If(f(q.cond), f(q.then), f(q.els))
    if isinstance(q, Traverse):
        # ``var`` is presentational, not a binder (there is no body),
        # so the generic binder-oblivious rebuild is exact
        return Traverse(q.var, f(q.source), q.attr, q.depth)
    if isinstance(q, Comp):
        quals: list[Qualifier] = []
        for cq in q.qualifiers:
            if isinstance(cq, Pred):
                quals.append(Pred(f(cq.cond)))
            else:
                assert isinstance(cq, Gen)
                quals.append(Gen(cq.var, f(cq.source)))
        return Comp(f(q.head), tuple(quals))
    raise TypeError(f"unknown query node {type(q).__name__}")  # pragma: no cover


def walk(q: Query) -> Iterator[Query]:
    """Pre-order traversal of every node in ``q`` (including ``q``)."""
    yield q
    for sub in subqueries(q):
        yield from walk(sub)


def free_vars(q: Query) -> frozenset[str]:
    """The free query variables of ``q``.

    Only :class:`Var` occurrences count — extent names and oids are
    designated identifier subsets with their own node types.  The only
    binders are comprehension generators, which scope over subsequent
    qualifiers and the head.
    """
    if isinstance(q, Var):
        return frozenset({q.name})
    if isinstance(q, Comp):
        out: frozenset[str] = frozenset()
        bound: frozenset[str] = frozenset()
        for cq in q.qualifiers:
            if isinstance(cq, Pred):
                out |= free_vars(cq.cond) - bound
            else:
                assert isinstance(cq, Gen)
                out |= free_vars(cq.source) - bound
                bound |= {cq.var}
        return out | (free_vars(q.head) - bound)
    out = frozenset()
    for sub in subqueries(q):
        out |= free_vars(sub)
    return out


def bound_vars(q: Query) -> frozenset[str]:
    """Every variable bound by some generator anywhere in ``q``."""
    out: frozenset[str] = frozenset()
    for node in walk(q):
        if isinstance(node, Comp):
            out |= frozenset(
                cq.var for cq in node.qualifiers if isinstance(cq, Gen)
            )
    return out


def fresh_name(base: str, avoid: Iterable[str]) -> str:
    """A variable name based on ``base`` not occurring in ``avoid``."""
    avoid_set = set(avoid)
    if base not in avoid_set:
        return base
    for i in itertools.count(1):
        cand = f"{base}_{i}"
        if cand not in avoid_set:
            return cand
    raise AssertionError("unreachable")  # pragma: no cover


def subst(q: Query, x: str, r: Query) -> Query:
    """Capture-avoiding substitution ``q[x := r]``.

    When ``r`` is a closed value (the common case in reduction, cf.
    Lemma 1) this is plain replacement; when ``r`` is open (optimizer
    rewrites), generators that would capture a free variable of ``r``
    are α-renamed first.
    """
    fv_r = free_vars(r)
    return _subst(q, x, r, fv_r)


def _subst(q: Query, x: str, r: Query, fv_r: frozenset[str]) -> Query:
    if isinstance(q, Var):
        return r if q.name == x else q
    if isinstance(q, Comp):
        return _subst_comp(q, x, r, fv_r)
    return map_subqueries(q, lambda sub: _subst(sub, x, r, fv_r))


def _subst_comp(q: Comp, x: str, r: Query, fv_r: frozenset[str]) -> Query:
    """Substitute under a comprehension, renaming binders as needed.

    Processes qualifiers left-to-right, tracking (a) whether ``x`` has
    been shadowed by a generator (substitution then stops) and (b) a
    renaming for binders that collide with the free variables of ``r``.
    """
    quals: list[Qualifier] = []
    rename: dict[str, str] = {}
    shadowed = False

    def apply(sub: Query) -> Query:
        out = sub
        for old, new in rename.items():
            out = _subst(out, old, Var(new), frozenset({new}))
        if not shadowed:
            out = _subst(out, x, r, fv_r)
        return out

    used = set(free_vars(q)) | set(bound_vars(q)) | set(fv_r) | {x}
    for cq in q.qualifiers:
        if isinstance(cq, Pred):
            quals.append(Pred(apply(cq.cond)))
            continue
        assert isinstance(cq, Gen)
        source = apply(cq.source)
        var = cq.var
        if var == x:
            # x is shadowed from here on
            quals.append(Gen(var, source))
            shadowed = True
            rename.pop(var, None)
            continue
        if not shadowed and var in fv_r:
            new_var = fresh_name(var, used)
            used.add(new_var)
            rename[var] = new_var
            var = new_var
        else:
            rename.pop(cq.var, None)
        quals.append(Gen(var, source))
    return Comp(apply(q.head), tuple(quals))


def subst_many(q: Query, bindings: dict[str, Query]) -> Query:
    """Simultaneous substitution, applied sequentially.

    Safe when the replacement queries are closed (values), which is the
    only way the machine uses it (call-by-value argument passing).
    """
    out = q
    for x, r in bindings.items():
        out = subst(out, x, r)
    return out


def resolve_extents(q: Query, extent_names: frozenset[str] | set[str]) -> Query:
    """Rewrite free ``Var(e)`` into ``ExtentRef(e)`` for known extents.

    Respects shadowing: a generator variable named like an extent hides
    the extent in its scope (the paper forbids this mixing by
    convention; we make the convention harmless).
    """

    def go(node: Query, bound: frozenset[str]) -> Query:
        if isinstance(node, Var):
            if node.name in extent_names and node.name not in bound:
                return ExtentRef(node.name)
            return node
        if isinstance(node, Comp):
            quals: list[Qualifier] = []
            b = bound
            for cq in node.qualifiers:
                if isinstance(cq, Pred):
                    quals.append(Pred(go(cq.cond, b)))
                else:
                    assert isinstance(cq, Gen)
                    quals.append(Gen(cq.var, go(cq.source, b)))
                    b |= {cq.var}
            return Comp(go(node.head, b), tuple(quals))
        return map_subqueries(node, lambda sub: go(sub, bound))

    return go(q, frozenset())


def query_size(q: Query) -> int:
    """Number of AST nodes in ``q`` (benchmark metric)."""
    return 1 + sum(query_size(sub) for sub in subqueries(q))


def query_depth(q: Query) -> int:
    """Height of the AST (benchmark metric)."""
    subs = list(subqueries(q))
    return 1 if not subs else 1 + max(query_depth(s) for s in subs)


def extents_mentioned(q: Query) -> frozenset[str]:
    """All extent names syntactically referenced by ``q``."""
    return frozenset(n.name for n in walk(q) if isinstance(n, ExtentRef))


def classes_created(q: Query) -> frozenset[str]:
    """All classes syntactically created (``new C``) by ``q``.

    A query with no ``new`` anywhere (nor in the definitions it calls)
    is the paper's *functional* query (Theorem 4); see
    :func:`repro.metatheory.theorems.is_functional`.
    """
    from repro.lang.ast import New as _New

    return frozenset(n.cname for n in walk(q) if isinstance(n, _New))
