"""Recursive-descent parser for IOQL queries, definitions and programs.

Grammar (EBNF, binding loosest→tightest)::

    program    ::= definition* expr
    definition ::= "define" IDENT "(" [param ("," param)*] ")" "as" expr ";"
    param      ::= IDENT ":" type

    type       ::= "int" | "bool" | "string"
                 | "set" "<" type ">"
                 | "struct" "(" IDENT ":" type ("," IDENT ":" type)* ")"
                 | IDENT                                  -- class name

    expr       ::= "if" expr "then" expr "else" expr
                 | "exists" IDENT "in" expr ":" expr
                 | "forall" IDENT "in" expr ":" expr
                 | select | or_expr
    select     ::= "select" ["distinct"] expr "from" from ("," from)*
                   ["where" expr]
    from       ::= IDENT "in" expr
    or_expr    ::= and_expr ("or" and_expr)*
    and_expr   ::= not_expr ("and" not_expr)*
    not_expr   ::= "not" not_expr | cmp_expr
    cmp_expr   ::= set_expr [("="|"=="|"<"|"<="|">"|">=") set_expr]
    set_expr   ::= add_expr (("union"|"intersect"|"except") add_expr)*
    add_expr   ::= mul_expr (("+"|"-") mul_expr)*
    mul_expr   ::= unary ("*" unary)*
    unary      ::= "-" unary | cast
    cast       ::= "(" IDENT ")" unary        -- only when followed by an
                 | postfix                     -- expression start (lookahead)
    postfix    ::= primary ("." IDENT ["(" args ")"])*
    primary    ::= INT | STRING | "true" | "false"
                 | "size" "(" expr ")"
                 | "traverse" "(" IDENT "in" expr "over" IDENT
                   ["depth" "<=" INT] ")"
                 | "new" IDENT "(" IDENT ":" expr ("," IDENT ":" expr)* ")"
                 | "struct" "(" IDENT ":" expr ("," …)* ")"
                 | IDENT ["(" args ")"]        -- variable / definition call
                 | "(" expr ")"
                 | "{" set_or_comprehension "}"

    set_or_comprehension ::= [expr ("," expr)*]                  -- set literal
                           | expr "|" [qualifier ("," qualifier)*]
    qualifier  ::= IDENT ("<-"|"in") expr | expr

Boolean connectives, quantifiers and select-from-where are desugared
(see :mod:`repro.lang.sugar`); the returned AST is pure core IOQL.

Extent names parse as plain :class:`Var`; call
:func:`repro.lang.traversal.resolve_extents` (or pass ``extents=`` /
``schema=`` to the entry points here) to rewrite them.
"""

from __future__ import annotations

from typing import Iterable

from repro.lang import sugar
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    Definition,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Program,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)
from repro.lang.lexer import Token, TokenStream
from repro.lang.traversal import resolve_extents
from repro.model.types import BOOL, INT, STRING, BagType, ClassType, ListType, RecordType, SetType, Type
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span

_EXPR_START = frozenset(
    {
        "INT",
        "STRING",
        "IDENT",
        "OID",
        "true",
        "false",
        "if",
        "new",
        "size",
        "struct",
        "bag",
        "list",
        "toset",
        "sum",
        "traverse",
        "select",
        "exists",
        "forall",
        "not",
        "this",
        "extent",
        "(",
        "{",
        "-",
    }
)

_CMP_KINDS = {"<": CmpKind.LT, "<=": CmpKind.LE, ">": CmpKind.GT, ">=": CmpKind.GE}
_SETOP_KINDS = {
    "union": SetOpKind.UNION,
    "intersect": SetOpKind.INTERSECT,
    "except": SetOpKind.EXCEPT,
}


def parse_query(
    source: str,
    *,
    extents: Iterable[str] | None = None,
    schema: object | None = None,
) -> Query:
    """Parse a single IOQL query.

    ``extents`` (or a ``schema`` with an ``extents`` mapping) enables
    extent-name resolution; without it every identifier stays a
    :class:`Var`.
    """
    with _span("parse"):
        ts = TokenStream.of(source)
        if _OBS.enabled:
            _METRICS.counter("parse_total").inc()
            _METRICS.counter("parse_tokens_total").inc(ts.token_count)
        q = Parser(ts).expr()
        ts.expect("EOF")
        return _resolve(q, extents, schema)


def parse_program(
    source: str,
    *,
    extents: Iterable[str] | None = None,
    schema: object | None = None,
) -> Program:
    """Parse ``define … ; … define … ; query``."""
    with _span("parse"):
        ts = TokenStream.of(source)
        if _OBS.enabled:
            _METRICS.counter("parse_total").inc()
            _METRICS.counter("parse_tokens_total").inc(ts.token_count)
        p = Parser(ts)
        defs: list[Definition] = []
        while ts.at("define"):
            defs.append(p.definition())
        q = p.expr()
        ts.accept(";")
        ts.expect("EOF")
        names = _extent_names(extents, schema)
        if names:
            defs = [
                Definition(d.name, d.params, resolve_extents(d.body, names))
                for d in defs
            ]
            q = resolve_extents(q, names)
        return Program(tuple(defs), q)


def parse_type(source: str) -> Type:
    """Parse a type expression, e.g. ``set<struct(n: int, c: Person)>``."""
    ts = TokenStream.of(source)
    t = Parser(ts).type_expr()
    ts.expect("EOF")
    return t


def _extent_names(
    extents: Iterable[str] | None, schema: object | None
) -> frozenset[str]:
    if extents is not None:
        return frozenset(extents)
    if schema is not None:
        return frozenset(schema.extents)  # type: ignore[attr-defined]
    return frozenset()


def _resolve(
    q: Query, extents: Iterable[str] | None, schema: object | None
) -> Query:
    names = _extent_names(extents, schema)
    return resolve_extents(q, names) if names else q


class Parser:
    """The recursive-descent parser proper; one instance per stream.

    Shared by the ODL parser (for types and initialiser expressions) and
    the MJava parser (for expressions), both of which wrap an instance
    of this class.
    """

    def __init__(self, ts: TokenStream):
        self.ts = ts

    # -- types ----------------------------------------------------------
    def type_expr(self) -> Type:
        ts = self.ts
        if ts.accept("int"):
            return INT
        if ts.accept("bool"):
            return BOOL
        if ts.accept("string"):
            return STRING
        if ts.accept("set"):
            ts.expect("<")
            elem = self.type_expr()
            ts.expect(">")
            return SetType(elem)
        if ts.accept("bag"):
            ts.expect("<")
            elem = self.type_expr()
            ts.expect(">")
            return BagType(elem)
        if ts.accept("list"):
            ts.expect("<")
            elem = self.type_expr()
            ts.expect(">")
            return ListType(elem)
        if ts.accept("struct"):
            ts.expect("(")
            fields: list[tuple[str, Type]] = []
            while True:
                label = ts.expect("IDENT").text
                ts.expect(":")
                fields.append((label, self.type_expr()))
                if not ts.accept(","):
                    break
            ts.expect(")")
            return RecordType(tuple(fields))
        if ts.at("IDENT"):
            return ClassType(ts.next().text)
        raise ts.error("expected a type")

    # -- definitions / programs ------------------------------------------
    def definition(self) -> Definition:
        ts = self.ts
        ts.expect("define")
        name = ts.expect("IDENT").text
        ts.expect("(")
        params: list[tuple[str, Type]] = []
        if not ts.at(")"):
            while True:
                x = ts.expect("IDENT").text
                ts.expect(":")
                params.append((x, self.type_expr()))
                if not ts.accept(","):
                    break
        ts.expect(")")
        ts.expect("as")
        body = self.expr()
        ts.expect(";")
        return Definition(name, tuple(params), body)

    # -- expressions -------------------------------------------------------
    def expr(self) -> Query:
        ts = self.ts
        if ts.accept("if"):
            cond = self.expr()
            ts.expect("then")
            then = self.expr()
            ts.expect("else")
            els = self.expr()
            return If(cond, then, els)
        if ts.accept("exists"):
            return self._quantifier(sugar.exists)
        if ts.accept("forall"):
            return self._quantifier(sugar.forall)
        if ts.at("select"):
            return self._select()
        return self._or_expr()

    def _quantifier(self, build) -> Query:
        ts = self.ts
        var = ts.expect("IDENT").text
        ts.expect("in")
        source = self.expr()
        ts.expect(":")
        pred = self.expr()
        return build(var, source, pred)

    def _select(self) -> Query:
        ts = self.ts
        ts.expect("select")
        ts.accept("distinct")  # sets are duplicate-free already
        head = self.expr()
        ts.expect("from")
        froms: list[tuple[str, Query]] = []
        while True:
            x = ts.expect("IDENT").text
            ts.expect("in")
            froms.append((x, self._or_expr()))
            if not ts.accept(","):
                break
        where = None
        if ts.accept("where"):
            where = self.expr()
        return sugar.select(head, froms, where)

    def _or_expr(self) -> Query:
        left = self._and_expr()
        while self.ts.accept("or"):
            left = sugar.or_(left, self._and_expr())
        return left

    def _and_expr(self) -> Query:
        left = self._not_expr()
        while self.ts.accept("and"):
            left = sugar.and_(left, self._not_expr())
        return left

    def _not_expr(self) -> Query:
        if self.ts.accept("not"):
            return sugar.not_(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> Query:
        ts = self.ts
        left = self._set_expr()
        if ts.accept("="):
            return PrimEq(left, self._set_expr())
        if ts.accept("=="):
            return ObjEq(left, self._set_expr())
        for text, kind in _CMP_KINDS.items():
            if ts.at(text):
                ts.next()
                return Cmp(kind, left, self._set_expr())
        return left

    def _set_expr(self) -> Query:
        ts = self.ts
        left = self._add_expr()
        while ts.at("union", "intersect", "except"):
            op = _SETOP_KINDS[ts.next().kind]
            left = SetOp(op, left, self._add_expr())
        return left

    def _add_expr(self) -> Query:
        ts = self.ts
        left = self._mul_expr()
        while ts.at("+", "-"):
            op = IntOpKind.ADD if ts.next().kind == "+" else IntOpKind.SUB
            left = IntOp(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> Query:
        left = self._unary()
        while self.ts.accept("*"):
            left = IntOp(IntOpKind.MUL, left, self._unary())
        return left

    def _unary(self) -> Query:
        ts = self.ts
        if ts.accept("-"):
            inner = self._unary()
            if isinstance(inner, IntLit):
                return IntLit(-inner.value)
            return IntOp(IntOpKind.SUB, IntLit(0), inner)
        return self._cast()

    def _cast(self) -> Query:
        ts = self.ts
        # "(C) expr" vs "(expr)": lookahead for ( IDENT ) <expr-start>
        if (
            ts.at("(")
            and ts.peek(1).kind == "IDENT"
            and ts.peek(2).kind == ")"
            and ts.peek(3).kind in _EXPR_START
        ):
            ts.next()
            cname = ts.next().text
            ts.next()
            return Cast(cname, self._cast())
        return self._postfix()

    def _postfix(self) -> Query:
        ts = self.ts
        q = self.primary()
        while ts.accept("."):
            name = ts.expect("IDENT").text
            if ts.accept("("):
                args = self._args()
                q = MethodCall(q, name, args)
            else:
                q = Field(q, name)
        return q

    def _args(self) -> tuple[Query, ...]:
        """Parse ``expr, …)`` — the opening paren is already consumed."""
        ts = self.ts
        args: list[Query] = []
        if not ts.at(")"):
            while True:
                args.append(self.expr())
                if not ts.accept(","):
                    break
        ts.expect(")")
        return tuple(args)

    def primary(self) -> Query:
        ts = self.ts
        tok = ts.peek()
        if tok.kind == "INT":
            ts.next()
            return IntLit(int(tok.text))
        if tok.kind == "STRING":
            ts.next()
            return StrLit(tok.text)
        if ts.accept("true"):
            return BoolLit(True)
        if ts.accept("false"):
            return BoolLit(False)
        if ts.accept("size"):
            ts.expect("(")
            arg = self.expr()
            ts.expect(")")
            return Size(arg)
        if ts.accept("toset"):
            ts.expect("(")
            arg = self.expr()
            ts.expect(")")
            return ToSet(arg)
        if ts.accept("sum"):
            ts.expect("(")
            arg = self.expr()
            ts.expect(")")
            return Sum(arg)
        if ts.accept("traverse"):
            return self._traverse()
        if ts.accept("bag"):
            ts.expect("(")
            return BagLit(self._args())
        if ts.accept("list"):
            ts.expect("(")
            return ListLit(self._args())
        if ts.accept("new"):
            cname = ts.expect("IDENT").text
            ts.expect("(")
            fields = self._labelled_args()
            return New(cname, fields)
        if ts.accept("struct"):
            ts.expect("(")
            fields = self._labelled_args()
            return RecordLit(fields)
        if tok.kind == "IDENT":
            ts.next()
            if ts.accept("("):
                return DefCall(tok.text, self._args())
            return Var(tok.text)
        if tok.kind == "OID":
            ts.next()
            return OidRef(tok.text)
        if ts.accept("("):
            inner = self.expr()
            ts.expect(")")
            return inner
        if ts.at("{"):
            return self._braced()
        raise ts.error("expected an expression")

    def _labelled_args(self) -> tuple[tuple[str, Query], ...]:
        """Parse ``l: expr, …)`` — the opening paren is already consumed."""
        ts = self.ts
        fields: list[tuple[str, Query]] = []
        if not ts.at(")"):
            while True:
                label = ts.expect("IDENT").text
                ts.expect(":")
                fields.append((label, self.expr()))
                if not ts.accept(","):
                    break
        ts.expect(")")
        return tuple(fields)

    def _braced(self) -> Query:
        """``{…}``: empty set, set literal, or comprehension."""
        ts = self.ts
        ts.expect("{")
        if ts.accept("}"):
            return SetLit(())
        first = self.expr()
        if ts.accept("|"):
            quals: list[Qualifier] = []
            if not ts.at("}"):
                while True:
                    quals.append(self._qualifier())
                    if not ts.accept(","):
                        break
            ts.expect("}")
            return Comp(first, tuple(quals))
        items = [first]
        while ts.accept(","):
            items.append(self.expr())
        ts.expect("}")
        return SetLit(tuple(items))

    def _traverse(self) -> Query:
        """``traverse ( x in expr over a [depth <= INT] )``."""
        ts = self.ts
        ts.expect("(")
        var = ts.expect("IDENT").text
        ts.expect("in")
        source = self.expr()
        ts.expect("over")
        attr = ts.expect("IDENT").text
        depth: int | None = None
        if ts.accept("depth"):
            ts.expect("<=")
            tok = ts.expect("INT")
            depth = int(tok.text)
        ts.expect(")")
        return Traverse(var, source, attr, depth)

    def _qualifier(self) -> Qualifier:
        ts = self.ts
        if ts.at("IDENT") and ts.peek(1).kind in ("<-", "in"):
            var = ts.next().text
            ts.next()
            return Gen(var, self.expr())
        return Pred(self.expr())
