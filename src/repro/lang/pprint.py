"""Pretty-printer for IOQL.

Produces concrete syntax accepted by :mod:`repro.lang.parser`, so
``parse(pretty(q))`` round-trips (modulo extent resolution; extent
references print as bare identifiers).  The printer is fully
parenthesised only where precedence demands it.
"""

from __future__ import annotations

from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    Comp,
    DefCall,
    Definition,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Program,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)

# Precedence levels (higher binds tighter).
_PREC_IF = 0
_PREC_CMP = 1
_PREC_SETOP = 2
_PREC_ADD = 3
_PREC_MUL = 4
_PREC_CAST = 5
_PREC_POSTFIX = 6
_PREC_ATOM = 7

_SETOP_NAMES = {
    SetOpKind.UNION: "union",
    SetOpKind.INTERSECT: "intersect",
    SetOpKind.EXCEPT: "except",
}


def pretty(q: Query) -> str:
    """Render ``q`` as parseable IOQL concrete syntax."""
    return _pp(q, 0)


def pretty_qualifier(cq: Qualifier) -> str:
    """Render one comprehension qualifier."""
    if isinstance(cq, Gen):
        return f"{cq.var} <- {_pp(cq.source, _PREC_CMP)}"
    assert isinstance(cq, Pred)
    return _pp(cq.cond, 0)


def pretty_definition(d: Definition) -> str:
    """Render a ``define`` clause."""
    params = ", ".join(f"{x}: {t}" for x, t in d.params)
    return f"define {d.name}({params}) as {pretty(d.body)};"


def pretty_program(p: Program) -> str:
    """Render a whole program: definitions then the final query."""
    parts = [pretty_definition(d) for d in p.definitions]
    parts.append(pretty(p.query))
    return "\n".join(parts)


def _paren(s: str, inner: int, outer: int) -> str:
    return f"({s})" if inner < outer else s


def _pp(q: Query, outer: int) -> str:
    if isinstance(q, IntLit):
        s = str(q.value)
        return _paren(s, _PREC_ATOM if q.value >= 0 else _PREC_CAST, outer)
    if isinstance(q, BoolLit):
        return "true" if q.value else "false"
    if isinstance(q, StrLit):
        escaped = q.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(q, (Var, ExtentRef, OidRef)):
        return q.name
    if isinstance(q, SetLit):
        return "{" + ", ".join(_pp(i, 0) for i in q.items) + "}"
    if isinstance(q, BagLit):
        return "bag(" + ", ".join(_pp(i, 0) for i in q.items) + ")"
    if isinstance(q, ListLit):
        return "list(" + ", ".join(_pp(i, 0) for i in q.items) + ")"
    if isinstance(q, ToSet):
        return f"toset({_pp(q.arg, 0)})"
    if isinstance(q, Sum):
        return f"sum({_pp(q.arg, 0)})"
    if isinstance(q, RecordLit):
        inner = ", ".join(f"{l}: {_pp(v, 0)}" for l, v in q.fields)
        return f"struct({inner})"
    if isinstance(q, SetOp):
        s = (
            f"{_pp(q.left, _PREC_SETOP)} {_SETOP_NAMES[q.op]} "
            f"{_pp(q.right, _PREC_SETOP + 1)}"
        )
        return _paren(s, _PREC_SETOP, outer)
    if isinstance(q, IntOp):
        if q.op is IntOpKind.MUL:
            s = f"{_pp(q.left, _PREC_MUL)} * {_pp(q.right, _PREC_MUL + 1)}"
            return _paren(s, _PREC_MUL, outer)
        s = f"{_pp(q.left, _PREC_ADD)} {q.op.value} {_pp(q.right, _PREC_ADD + 1)}"
        return _paren(s, _PREC_ADD, outer)
    if isinstance(q, PrimEq):
        s = f"{_pp(q.left, _PREC_CMP + 1)} = {_pp(q.right, _PREC_CMP + 1)}"
        return _paren(s, _PREC_CMP, outer)
    if isinstance(q, ObjEq):
        s = f"{_pp(q.left, _PREC_CMP + 1)} == {_pp(q.right, _PREC_CMP + 1)}"
        return _paren(s, _PREC_CMP, outer)
    if isinstance(q, Cmp):
        s = f"{_pp(q.left, _PREC_CMP + 1)} {q.op.value} {_pp(q.right, _PREC_CMP + 1)}"
        return _paren(s, _PREC_CMP, outer)
    if isinstance(q, Field):
        return _paren(f"{_pp(q.target, _PREC_POSTFIX)}.{q.name}", _PREC_POSTFIX, outer)
    if isinstance(q, DefCall):
        args = ", ".join(_pp(a, 0) for a in q.args)
        return f"{q.name}({args})"
    if isinstance(q, Size):
        return f"size({_pp(q.arg, 0)})"
    if isinstance(q, Cast):
        s = f"({q.cname}) {_pp(q.arg, _PREC_CAST)}"
        return _paren(s, _PREC_CAST, outer)
    if isinstance(q, MethodCall):
        args = ", ".join(_pp(a, 0) for a in q.args)
        s = f"{_pp(q.target, _PREC_POSTFIX)}.{q.mname}({args})"
        return _paren(s, _PREC_POSTFIX, outer)
    if isinstance(q, New):
        inner = ", ".join(f"{a}: {_pp(v, 0)}" for a, v in q.fields)
        return f"new {q.cname}({inner})"
    if isinstance(q, If):
        s = (
            f"if {_pp(q.cond, _PREC_IF + 1)} then {_pp(q.then, _PREC_IF + 1)} "
            f"else {_pp(q.els, _PREC_IF)}"
        )
        return _paren(s, _PREC_IF, outer)
    if isinstance(q, Traverse):
        bound = f" depth <= {q.depth}" if q.depth is not None else ""
        return f"traverse({q.var} in {_pp(q.source, 0)} over {q.attr}{bound})"
    if isinstance(q, Comp):
        quals = ", ".join(pretty_qualifier(cq) for cq in q.qualifiers)
        if not quals:
            return "{" + _pp(q.head, 0) + " | }"
        return "{" + f"{_pp(q.head, 0)} | {quals}" + "}"
    raise TypeError(f"unknown query node {type(q).__name__}")  # pragma: no cover
