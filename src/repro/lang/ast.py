"""Abstract syntax of IOQL (§3.1) plus the runtime value forms (§3.3).

The query grammar of the paper::

    q ::= i | true | false | x
        | {q₀, …, qₖ}              set literal
        | q₁ sop q₂                set operators (∪, ∩, \\)
        | q₁ iop q₂                integer operators (+, −, ×)
        | q₁ = q₂                  primitive equality
        | q₁ == q₂                 object (oid) equality
        | ⟨l₁:q₁, …, lₖ:qₖ⟩        record
        | q.l                      record access        ┐ one Field node,
        | q.a                      attribute access     ┘ disambiguated by type
        | d(q₀, …, qₖ)             definition call
        | size(q)
        | (C) q                    upcast
        | q.m(q₀, …, qₖ)           method invocation
        | new C(a₀:q₀, …, aₖ:qₖ)   object creation
        | if q₁ then q₂ else q₃
        | {q | cq₀, …, cqₖ}        comprehension
    cq ::= q | x ← q               predicate / generator

Design notes
------------

* The paper distinguishes record access ``q.l`` from attribute access
  ``q.a`` only by its convention that labels and attribute names are
  drawn from disjoint identifier sets.  A parser cannot see that
  distinction, so we use a single :class:`Field` node; the type checker
  applies the (Record access) rule when the target has record type and
  the (Attribute) rule when it has class type, and the machine likewise
  dispatches on the target *value* (record literal vs oid).  The two
  paper rules remain disjoint — they are merely housed in one
  constructor.

* Oids are a designated subset of identifiers in the paper; we give
  them their own node :class:`OidRef` so that freshness and the value
  grammar are syntactically evident.

* Extents are likewise identifiers; the parser initially produces
  :class:`Var` for any name and the resolution pass
  (:func:`repro.lang.traversal.resolve_extents`) rewrites free
  occurrences of extent names into :class:`ExtentRef`.

* Extensions beyond the paper's core (all flagged in DESIGN.md):
  string literals, the comparison operator node :class:`Cmp`, and the
  ``-``/``*`` integer operators.  Boolean connectives, quantifiers and
  select-from-where are *derived forms* — the parser desugars them, so
  they never appear in this AST.

All nodes are immutable, hashable dataclasses.  Structural equality is
intentional: after set-value canonicalisation (see
:mod:`repro.lang.values`) two equal values are structurally equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Query:
    """Abstract base class of all IOQL query nodes."""

    __slots__ = ()

    def __str__(self) -> str:
        from repro.lang.pprint import pretty

        return pretty(self)


# ---------------------------------------------------------------------------
# literals and identifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IntLit(Query):
    """An integer literal ``i``."""

    value: int


@dataclass(frozen=True, slots=True)
class BoolLit(Query):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True, slots=True)
class StrLit(Query):
    """A string literal (extension; see module docstring)."""

    value: str


@dataclass(frozen=True, slots=True)
class Var(Query):
    """An identifier occurrence ``x`` (query variable or definition param)."""

    name: str


@dataclass(frozen=True, slots=True)
class ExtentRef(Query):
    """A reference to a class extent ``e`` (a designated identifier).

    Reading an extent is the (Extent) reduction rule and carries the
    ``R(C)`` effect.
    """

    name: str


@dataclass(frozen=True, slots=True)
class OidRef(Query):
    """An object identifier ``o`` — a value denoting a database object.

    The paper treats oids as a designated subset of identifiers whose
    types live in the environment Q; fresh oids are introduced only by
    the (New) rule.
    """

    name: str


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------


class SetOpKind(Enum):
    """The collection ``sop`` of set operators.

    The paper spells out only ∪ "to save space"; §4's running example
    uses intersection, so the full trio is needed in practice.
    """

    UNION = "union"
    INTERSECT = "intersect"
    EXCEPT = "except"

    @property
    def symbol(self) -> str:
        return {"union": "union", "intersect": "intersect", "except": "except"}[self.value]

    @property
    def commutative(self) -> bool:
        """Whether the operator is commutative *as a set function*.

        Theorem 8 concerns exactly these: ∪ and ∩ commute as functions,
        but commuting their evaluation order is only safe when the
        operands' effects do not interfere.
        """
        return self in (SetOpKind.UNION, SetOpKind.INTERSECT)


@dataclass(frozen=True, slots=True)
class SetOp(Query):
    """``q₁ sop q₂`` — a binary set operator, evaluated left-to-right."""

    op: SetOpKind
    left: Query
    right: Query


class IntOpKind(Enum):
    """The collection ``iop`` of integer operators (paper shows ``+``)."""

    ADD = "+"
    SUB = "-"
    MUL = "*"


@dataclass(frozen=True, slots=True)
class IntOp(Query):
    """``q₁ iop q₂`` — integer arithmetic, left-to-right, call-by-value."""

    op: IntOpKind
    left: Query
    right: Query


@dataclass(frozen=True, slots=True)
class PrimEq(Query):
    """``q₁ = q₂`` — equality of primitive values.

    The paper types this at ``int``; we extend it pointwise to ``bool``
    and ``string`` (both operands must have the *same* primitive type).
    """

    left: Query
    right: Query


@dataclass(frozen=True, slots=True)
class ObjEq(Query):
    """``q₁ == q₂`` — object identity: equality of oids."""

    left: Query
    right: Query


class CmpKind(Enum):
    """Integer comparison operators (extension)."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True, slots=True)
class Cmp(Query):
    """``q₁ < q₂`` etc. — integer comparison returning bool (extension)."""

    op: CmpKind
    left: Query
    right: Query


# ---------------------------------------------------------------------------
# sets, records, control
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SetLit(Query):
    """``{q₀, …, qₖ}`` — a set literal.

    When every item is a value *and* the tuple is canonical (deduplicated
    and sorted by the value order of :mod:`repro.lang.values`), the
    literal is itself a value.
    """

    items: tuple[Query, ...]


@dataclass(frozen=True, slots=True)
class BagLit(Query):
    """``bag(q₀, …, qₖ)`` — a bag (multiset) literal.

    §3.1 extension.  A bag of values is a value once canonical: items
    sorted by the value order, duplicates *preserved*.
    """

    items: tuple[Query, ...]


@dataclass(frozen=True, slots=True)
class ListLit(Query):
    """``list(q₀, …, qₖ)`` — a list literal.

    §3.1 extension.  A list of values is a value as-is (order is
    meaning; no canonicalisation).  Iterating a list is *deterministic*
    (head first) — the §6.2/XQuery observation.
    """

    items: tuple[Query, ...]


@dataclass(frozen=True, slots=True)
class Sum(Query):
    """``sum(q)`` — total of an integer collection (extension).

    The one aggregate that is *total* — ``sum`` of the empty collection
    is 0 — and therefore the one aggregate that can be added without
    breaking Theorem 2/3 (``min``/``max`` of ``{}`` would introduce a
    well-typed stuck state; the paper's core has no partial operators
    and we keep it that way).  Over bags and lists duplicates count:
    ``sum(bag(2, 2)) = 4`` while ``sum({2, 2}) = sum({2}) = 2`` — the
    textbook reason query engines need bags.
    """

    arg: Query


@dataclass(frozen=True, slots=True)
class ToSet(Query):
    """``toset(q)`` — convert a bag or list (or set) to a set.

    The OQL ``listtoset``/``distinct`` family collapsed into one
    coercion; duplicates are removed, order forgotten.
    """

    arg: Query


@dataclass(frozen=True, slots=True)
class RecordLit(Query):
    """``⟨l₁:q₁, …, lₖ:qₖ⟩`` — a record constructor."""

    fields: tuple[tuple[str, Query], ...]

    def labels(self) -> tuple[str, ...]:
        return tuple(l for l, _ in self.fields)

    def field(self, label: str) -> Query | None:
        for l, q in self.fields:
            if l == label:
                return q
        return None


@dataclass(frozen=True, slots=True)
class Field(Query):
    """``q.l`` / ``q.a`` — record projection or attribute access.

    A single node for both paper rules; see the module docstring.
    """

    target: Query
    name: str


@dataclass(frozen=True, slots=True)
class DefCall(Query):
    """``d(q₀, …, qₖ)`` — call of a top-level query definition."""

    name: str
    args: tuple[Query, ...]


@dataclass(frozen=True, slots=True)
class Size(Query):
    """``size(q)`` — cardinality of a set."""

    arg: Query


@dataclass(frozen=True, slots=True)
class Cast(Query):
    """``(C) q`` — an upcast to superclass ``C`` (Note 2: no downcasts)."""

    cname: str
    arg: Query


@dataclass(frozen=True, slots=True)
class MethodCall(Query):
    """``q.m(q₀, …, qₖ)`` — method invocation on an object."""

    target: Query
    mname: str
    args: tuple[Query, ...]


@dataclass(frozen=True, slots=True)
class New(Query):
    """``new C(a₀:q₀, …, aₖ:qₖ)`` — object creation.

    Returns a fresh oid; the new object joins the extent of ``C``
    immediately ((New) reduction rule; effect ``A(C)``).  All attributes
    — including inherited ones — must be supplied.
    """

    cname: str
    fields: tuple[tuple[str, Query], ...]

    def labels(self) -> tuple[str, ...]:
        return tuple(l for l, _ in self.fields)


@dataclass(frozen=True, slots=True)
class If(Query):
    """``if q₁ then q₂ else q₃`` — the conditional (lazy in the branches)."""

    cond: Query
    then: Query
    els: Query


# ---------------------------------------------------------------------------
# comprehensions
# ---------------------------------------------------------------------------


class Qualifier:
    """Abstract base of comprehension qualifiers ``cq``."""

    __slots__ = ()

    def __str__(self) -> str:
        from repro.lang.pprint import pretty_qualifier

        return pretty_qualifier(self)


@dataclass(frozen=True, slots=True)
class Pred(Qualifier):
    """A predicate qualifier: a boolean query filtering the iteration."""

    cond: Query


@dataclass(frozen=True, slots=True)
class Gen(Qualifier):
    """A generator qualifier ``x ← q``: iterate ``x`` over the set ``q``.

    Iteration order is *non-deterministic*: the (ND comp) rule picks an
    arbitrary element each step.
    """

    var: str
    source: Query


@dataclass(frozen=True, slots=True)
class Comp(Query):
    """``{q | cq₀, …, cqₖ}`` — a set comprehension.

    Generators bind their variable in all *subsequent* qualifiers and in
    the head ``q``.
    """

    head: Query
    qualifiers: tuple[Qualifier, ...]


@dataclass(frozen=True, slots=True)
class Traverse(Query):
    """``traverse(x in q over a [depth <= k])`` — recursive reference closure.

    Starting from the objects of the set ``source``, repeatedly follow
    the reference-valued attribute ``attr`` and collect every object
    reached (the transitive closure of the one-hop ``x.a`` chase; the
    start set is included at depth 0).  ``depth`` bounds the number of
    hops; ``None`` means unbounded — termination on cyclic graphs comes
    from the closure being finite and evaluation being fuel-charged.

    ``var`` is presentational (it names the traversal cursor in the
    concrete syntax) — there is no body, so it binds nothing.  Objects
    whose class lacks ``attr``, and non-reference ``attr`` values, stop
    the chain at that object rather than getting stuck: a traversal is
    a reachability query, not an attribute projection.
    """

    var: str
    source: Query
    attr: str
    depth: int | None = None


# ---------------------------------------------------------------------------
# programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Definition:
    """``define d(x₀:σ₀, …, xₙ:σₙ) as q;`` — a (non-recursive) definition.

    ``param_types`` are :class:`repro.model.types.Type` values; parameter
    types are required (no inference, as in the paper).
    """

    name: str
    params: tuple[tuple[str, object], ...]  # (name, Type)
    body: Query

    def param_names(self) -> tuple[str, ...]:
        return tuple(x for x, _ in self.params)


@dataclass(frozen=True, slots=True)
class Program:
    """An IOQL program: a sequence of definitions followed by a query."""

    definitions: tuple[Definition, ...]
    query: Query
