"""Derived forms (syntactic sugar) over the IOQL core.

The paper presents a comprehension core and notes (§3.1) that the
select-from-where surface of OQL, boolean connectives, and quantifiers
are all expressible in it.  These functions perform those encodings;
the parser applies them, so the core AST never contains sugar.

Encodings
---------

``p and q``      →  ``if p then q else false``        (left-to-right, CBV)
``p or q``       →  ``if p then true else q``
``not p``        →  ``if p then false else true``
``exists x in s : p``
                 →  ``1 = size({ true | x ← s, p })``
                    (the inner set is ``{true}`` or ``{}``)
``forall x in s : p``
                 →  ``0 = size({ true | x ← s, not p })``
``select [distinct] h from x₁ in s₁, … where p``
                 →  ``{ h | x₁ ← s₁, …, p }``
                    (sets are duplicate-free, so ``distinct`` is moot)
``s₁ subset s₂`` →  ``forall x in s₁ : exists y in s₂ : x = y`` — *not*
provided: without knowing whether elements compare with ``=`` or ``==``
the encoding is untypable in general; use the library API instead.
"""

from __future__ import annotations

from repro.lang.ast import (
    BoolLit,
    Comp,
    Gen,
    If,
    IntLit,
    Pred,
    PrimEq,
    Qualifier,
    Query,
    Size,
)
from repro.lang.values import FALSE, TRUE


def and_(p: Query, q: Query) -> Query:
    """``p and q`` — short-circuit conjunction as a conditional."""
    return If(p, q, FALSE)


def or_(p: Query, q: Query) -> Query:
    """``p or q`` — short-circuit disjunction as a conditional."""
    return If(p, TRUE, q)


def not_(p: Query) -> Query:
    """``not p`` as a conditional."""
    return If(p, FALSE, TRUE)


def exists(var: str, source: Query, pred: Query) -> Query:
    """``exists var in source : pred``.

    The comprehension ``{true | var ← source, pred}`` evaluates to
    ``{true}`` iff some element satisfies ``pred`` (sets deduplicate),
    and ``{}`` otherwise; comparing its size with 1 yields the
    quantifier.
    """
    witness = Comp(TRUE, (Gen(var, source), Pred(pred)))
    return PrimEq(IntLit(1), Size(witness))


def forall(var: str, source: Query, pred: Query) -> Query:
    """``forall var in source : pred`` via the dual encoding."""
    counterexample = Comp(TRUE, (Gen(var, source), Pred(not_(pred))))
    return PrimEq(IntLit(0), Size(counterexample))


def select(
    head: Query,
    froms: list[tuple[str, Query]],
    where: Query | None = None,
) -> Comp:
    """``select head from x₁ in s₁, … [where p]`` as a comprehension."""
    quals: list[Qualifier] = [Gen(x, s) for x, s in froms]
    if where is not None:
        quals.append(Pred(where))
    return Comp(head, tuple(quals))


def is_empty(source: Query) -> Query:
    """``source = {}`` as a size test (no polymorphic ``=`` on sets)."""
    return PrimEq(IntLit(0), Size(source))


def bool_to_query(b: bool) -> BoolLit:
    """Lift a Python bool into the AST."""
    return TRUE if b else FALSE
