"""The value grammar of §3.3 and canonical set representation.

The paper's values::

    v ::= i | true | false | o | {v₀, …, vₖ} | ⟨l₁:v₁, …, lₖ:vₖ⟩

Values are a sub-grammar of queries, so we reuse the AST nodes.  Because
``{…}`` denotes a *set*, the literal ``{1, 2}`` and the literal
``{2, 1}`` (and ``{1, 1, 2}``) denote the same value.  To make
structural equality of ASTs coincide with semantic equality of values,
set values are kept **canonical**: items deduplicated and sorted by the
total order :func:`value_sort_key`.  The machine's set-producing rules
always construct canonical sets via :func:`make_set_value`, and a
source-level set literal whose items have all been reduced to values is
normalised by one administrative step (see
:mod:`repro.semantics.machine`).

This module also supplies the set-theoretic operations used by the
(Union)/(Size)/(ND comp) reduction rules.
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.ast import (
    BagLit,
    BoolLit,
    IntLit,
    ListLit,
    OidRef,
    Query,
    RecordLit,
    SetLit,
    StrLit,
)


def is_value(q: Query) -> bool:
    """True iff ``q`` is in the value grammar (canonical sets/bags
    required; lists keep their order)."""
    if isinstance(q, (IntLit, BoolLit, StrLit, OidRef)):
        return True
    if isinstance(q, SetLit):
        return all(is_value(i) for i in q.items) and _is_canonical(q)
    if isinstance(q, BagLit):
        return all(is_value(i) for i in q.items) and _is_bag_canonical(q)
    if isinstance(q, ListLit):
        return all(is_value(i) for i in q.items)
    if isinstance(q, RecordLit):
        return all(is_value(v) for _, v in q.fields)
    return False


def is_value_shaped(q: Query) -> bool:
    """True iff ``q`` is a value up to set canonicalisation.

    ``{2, 1+1}`` is not value-shaped; ``{2, 2}`` is value-shaped but not
    a value (it needs the administrative canonicalisation step).
    """
    if isinstance(q, (SetLit, BagLit, ListLit)):
        return all(is_value_shaped(i) for i in q.items)
    if isinstance(q, RecordLit):
        return all(is_value_shaped(v) for _, v in q.fields)
    return isinstance(q, (IntLit, BoolLit, StrLit, OidRef))


def _is_canonical(s: SetLit) -> bool:
    keys = [value_sort_key(i) for i in s.items]
    return all(keys[i] < keys[i + 1] for i in range(len(keys) - 1))


def _is_bag_canonical(b: BagLit) -> bool:
    keys = [value_sort_key(i) for i in b.items]
    return all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))


def value_sort_key(v: Query) -> tuple:
    """A total order on values, used to canonicalise set literals.

    The order is arbitrary but fixed: booleans < integers < strings <
    oids < records < sets, with componentwise comparison inside
    structures.  Only defined on value-shaped queries.
    """
    if isinstance(v, BoolLit):
        return (0, v.value)
    if isinstance(v, IntLit):
        return (1, v.value)
    if isinstance(v, StrLit):
        return (2, v.value)
    if isinstance(v, OidRef):
        return (3, v.name)
    if isinstance(v, RecordLit):
        return (4, tuple((l, value_sort_key(q)) for l, q in v.fields))
    if isinstance(v, SetLit):
        return (5, tuple(sorted(value_sort_key(i) for i in v.items)))
    if isinstance(v, BagLit):
        return (6, tuple(sorted(value_sort_key(i) for i in v.items)))
    if isinstance(v, ListLit):
        return (7, tuple(value_sort_key(i) for i in v.items))
    raise TypeError(f"not a value: {v!r}")


def canonicalize(v: Query) -> Query:
    """Recursively canonicalise every set/bag inside a value-shaped query."""
    if isinstance(v, SetLit):
        items = [canonicalize(i) for i in v.items]
        return make_set_value(items)
    if isinstance(v, BagLit):
        return make_bag_value(canonicalize(i) for i in v.items)
    if isinstance(v, ListLit):
        return ListLit(tuple(canonicalize(i) for i in v.items))
    if isinstance(v, RecordLit):
        return RecordLit(tuple((l, canonicalize(q)) for l, q in v.fields))
    return v


def make_set_value(items: Iterable[Query]) -> SetLit:
    """Construct a canonical set value from value items.

    Deduplicates (after canonicalising each item) and sorts by
    :func:`value_sort_key`, so that structurally equal ASTs ⇔ equal set
    values.
    """
    canon = {canonicalize(i) for i in items}
    return SetLit(tuple(sorted(canon, key=value_sort_key)))


def make_oid_set(names: Iterable[str]) -> SetLit:
    """The canonical set value ``{@n1, @n2, ...}`` from oid names.

    Exactly ``make_set_value(OidRef(n) for n in names)``: oids
    canonicalise to themselves and :func:`value_sort_key` orders them
    by name alone, so deduplicating and sorting the names first gives
    the canonical tuple directly — without the per-item
    canonicalisation that dominates large traversal results.
    """
    return SetLit(tuple(OidRef(n) for n in sorted(set(names))))


def make_bag_value(items) -> BagLit:
    """Construct a canonical bag value: items sorted, duplicates kept."""
    return BagLit(tuple(sorted(items, key=value_sort_key)))


EMPTY_SET = SetLit(())
"""The canonical empty set value ``{}``."""


TRUE = BoolLit(True)
FALSE = BoolLit(False)


def set_union(a: SetLit, b: SetLit) -> SetLit:
    """``v₁ ∪ v₂`` of the (Union) rule, canonical."""
    return make_set_value((*a.items, *b.items))


def set_intersect(a: SetLit, b: SetLit) -> SetLit:
    """``v₁ ∩ v₂``, canonical."""
    bs = set(b.items)
    return make_set_value(i for i in a.items if i in bs)


def set_except(a: SetLit, b: SetLit) -> SetLit:
    """``v₁ \\ v₂``, canonical."""
    bs = set(b.items)
    return make_set_value(i for i in a.items if i not in bs)


def set_remove(a: SetLit, item: Query) -> SetLit:
    """``{v₁,…,vₖ} − vᵢ`` used by the (ND comp) rule."""
    return make_set_value(i for i in a.items if i != item)


def bag_union(a: BagLit, b: BagLit) -> BagLit:
    """Additive bag union (multiset sum), canonical."""
    return make_bag_value((*a.items, *b.items))


def _counts(items) -> dict:
    out: dict = {}
    for i in items:
        out[i] = out.get(i, 0) + 1
    return out


def bag_intersect(a: BagLit, b: BagLit) -> BagLit:
    """Bag intersection: per-element minimum multiplicity."""
    cb = _counts(b.items)
    out = []
    ca: dict = {}
    for i in a.items:
        ca[i] = ca.get(i, 0) + 1
        if ca[i] <= cb.get(i, 0):
            out.append(i)
    return make_bag_value(out)


def bag_except(a: BagLit, b: BagLit) -> BagLit:
    """Bag difference (monus): multiplicities subtract, floored at 0."""
    cb = dict(_counts(b.items))
    out = []
    for i in a.items:
        if cb.get(i, 0) > 0:
            cb[i] -= 1
        else:
            out.append(i)
    return make_bag_value(out)


def bag_remove_one(a: BagLit, item: Query) -> BagLit:
    """Remove exactly one occurrence (the bag (ND comp) residue)."""
    out = list(a.items)
    out.remove(item)
    return make_bag_value(out)


def list_concat(a: ListLit, b: ListLit) -> ListLit:
    """List concatenation (the list reading of ``union``)."""
    return ListLit((*a.items, *b.items))


def collection_to_set(v: Query) -> SetLit:
    """``toset``: forget order and multiplicity."""
    assert isinstance(v, (SetLit, BagLit, ListLit))
    return make_set_value(v.items)


def values_equal(a: Query, b: Query) -> bool:
    """Semantic equality of two values (canonicalises both sides)."""
    return canonicalize(a) == canonicalize(b)


def to_value(x: object) -> Query:
    """Lift a Python value (or AST value) into the IOQL value grammar.

    ``bool``/``int``/``str`` become literals; sets/frozensets/lists/
    tuples become canonical set values; dicts become records; AST
    values pass through.  Raises :class:`~repro.errors.ReproError`
    otherwise.
    """
    from repro.errors import IOQLTypeError

    if isinstance(x, Query):
        if not is_value(x):
            raise IOQLTypeError(f"{x} is not a value")
        return x
    if isinstance(x, bool):
        return BoolLit(x)
    if isinstance(x, int):
        return IntLit(x)
    if isinstance(x, str):
        return StrLit(x)
    if isinstance(x, (set, frozenset, list, tuple)):
        return make_set_value(to_value(i) for i in x)
    if isinstance(x, dict):
        return RecordLit(tuple((k, to_value(v)) for k, v in x.items()))
    raise IOQLTypeError(f"cannot convert {type(x).__name__} to an IOQL value")


def from_value(v: Query) -> object:
    """Lower an IOQL value to Python.

    Oids become their name strings; sets become frozensets; records
    become dicts.  A set whose elements are unhashable in Python (e.g.
    records → dicts) comes back as a tuple in canonical value order
    instead — deterministic, and still duplicate-free.  The inverse of
    :func:`to_value` up to oid identity.
    """
    from repro.errors import IOQLTypeError

    if isinstance(v, (IntLit, BoolLit, StrLit)):
        return v.value
    if isinstance(v, OidRef):
        return v.name
    if isinstance(v, SetLit):
        items = [from_value(i) for i in v.items]
        try:
            return frozenset(items)
        except TypeError:
            return tuple(items)
    if isinstance(v, (BagLit, ListLit)):
        # bags come back as canonical tuples (Python has no multiset);
        # lists keep their order
        return tuple(from_value(i) for i in v.items)
    if isinstance(v, RecordLit):
        return {l: from_value(q) for l, q in v.fields}
    raise IOQLTypeError(f"{v} is not a value")


def oids_in(v: Query) -> frozenset[str]:
    """All oids occurring in a value — used by the bijection matcher."""
    if isinstance(v, OidRef):
        return frozenset({v.name})
    if isinstance(v, (SetLit, BagLit, ListLit)):
        out: frozenset[str] = frozenset()
        for i in v.items:
            out |= oids_in(i)
        return out
    if isinstance(v, RecordLit):
        out = frozenset()
        for _, q in v.fields:
            out |= oids_in(q)
        return out
    return frozenset()
