"""Lexer shared by the IOQL, ODL and MJava parsers.

The paper leaves concrete syntax informal; we fix one (documented in the
README) close to ODMG OQL.  A single token stream serves all three
grammars — keywords are reserved uniformly so an IOQL variable can never
collide with, say, ``extends``.

Token kinds: ``INT``, ``STRING``, ``IDENT``, keyword tokens (kind equals
the keyword itself), punctuation/operator tokens (kind equals the
lexeme), and ``EOF``.

Lexical quirk (documented): ``<-`` lexes as the generator arrow, so the
comparison "less than a negated literal" must be written with a space
and parentheses, e.g. ``x < (-1)`` — same policy as Haskell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "define",
        "as",
        "true",
        "false",
        "if",
        "then",
        "else",
        "new",
        "size",
        "union",
        "intersect",
        "except",
        "select",
        "distinct",
        "from",
        "where",
        "in",
        "exists",
        "forall",
        "and",
        "or",
        "not",
        "struct",
        "set",
        "bag",
        "list",
        "toset",
        "sum",
        "traverse",
        "over",
        "depth",
        "int",
        "bool",
        "string",
        # ODL / MJava keywords
        "class",
        "extends",
        "extent",
        "attribute",
        "effect",
        "return",
        "var",
        "while",
        "for",
        "this",
        "native",
    }
)

# Multi-character operators, longest first.
_MULTI_OPS = ("==", "<=", ">=", "<-", ":=", "->")
_SINGLE_OPS = "(){}<>,:;.|=+-*/\\"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list ending with an ``EOF`` token.

    Supports ``//`` line comments and ``/* … */`` block comments.
    Raises :class:`ParseError` on unknown characters or unterminated
    strings/comments.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise ParseError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit():
            start_line, start_col = line, col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("INT", text, start_line, start_col))
            continue
        if ch == '"':
            start_line, start_col = line, col
            j = i + 1
            out: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n:
                        break
                    esc = source[j + 1]
                    out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    out.append(source[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal", start_line, start_col)
            advance(j + 1 - i)
            tokens.append(Token("STRING", "".join(out), start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = text if text in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        if ch == "@":
            # oids are a designated subset of identifiers (§3.3); their
            # concrete form is '@' + identifier, e.g. @Person_3
            start_line, start_col = line, col
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j == i + 1:
                raise ParseError("'@' must begin an oid", line, col)
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("OID", text, start_line, start_col))
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line, col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(ch, ch, line, col))
            advance(1)
            continue
        raise ParseError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("EOF", "", line, col))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual parser conveniences."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @staticmethod
    def of(source: str) -> "TokenStream":
        return TokenStream(tokenize(source))

    @property
    def token_count(self) -> int:
        """Number of tokens including EOF (the parse-size metric)."""
        return len(self._tokens)

    def peek(self, ahead: int = 0) -> Token:
        """Look at the current (or a later) token without consuming it."""
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def at(self, *kinds: str) -> bool:
        """True iff the current token's kind is one of ``kinds``."""
        return self.peek().kind in kinds

    def next(self) -> Token:
        """Consume and return the current token."""
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        """Consume a token of ``kind`` or raise :class:`ParseError`."""
        tok = self.peek()
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {tok.kind!r} ({tok.text!r})",
                tok.line,
                tok.column,
            )
        return self.next()

    def accept(self, kind: str) -> Token | None:
        """Consume the current token iff it has ``kind``; else None."""
        if self.at(kind):
            return self.next()
        return None

    def error(self, message: str) -> ParseError:
        """Build a :class:`ParseError` at the current position."""
        tok = self.peek()
        return ParseError(message + f" (found {tok.kind!r})", tok.line, tok.column)

    def at_eof(self) -> bool:
        return self.at("EOF")
