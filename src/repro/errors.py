"""Exception hierarchy for the IOQL reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single exception type at an API boundary.  The
sub-hierarchy mirrors the phases of the paper:

* :class:`SchemaError` — ill-formed object schemas (§2);
* :class:`ParseError` — concrete-syntax errors (lexing/parsing);
* :class:`IOQLTypeError` — the query does not type-check (Figure 1);
* :class:`IOQLEffectError` — the query is rejected by one of the effect
  disciplines of §4 (e.g. the ⊢′ determinism system or the ⊢″ safe
  commutativity system);
* :class:`EvalError` — runtime failures of evaluation, further divided
  into :class:`StuckError` (a non-value query with no applicable
  reduction — ruled out for well-typed queries by Theorem 3) and the
  :class:`BudgetExceeded` family — a resource bound was hit before a
  value was reached.  :class:`FuelExhausted` (the step bound — the
  observable proxy for non-termination, cf. the ``loop`` example of
  §1), :class:`DeadlineExceeded` (wall-clock) and
  :class:`ObjectQuotaExceeded` (new-object quota) all derive from it,
  so a caller can bound *any* resource with one ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """An object schema violates a well-formedness condition of §2.

    Examples: a class defined twice, a cycle in the ``extends`` relation,
    an attribute whose type names an unknown class, duplicate extent
    names, or an overriding method that changes its signature.
    """


class ParseError(ReproError):
    """A concrete-syntax error in ODL, IOQL, or MJava input.

    Carries the ``line`` and ``column`` (1-based) of the offending token
    when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"{line}:{column}: {message}"
        elif line is not None:
            message = f"{line}: {message}"
        super().__init__(message)


class IOQLTypeError(ReproError):
    """The query is rejected by the type system of Figure 1."""


class IOQLEffectError(ReproError):
    """The query is rejected by an effect discipline of §4.

    Raised by the ⊢′ system when a comprehension's body interferes with
    itself (``nonint`` fails, Theorem 7) and by the ⊢″ system when the
    operands of a commutative set operator interfere (Theorem 8).
    """


class MethodError(ReproError):
    """A method body is ill-typed, or violates its declared access mode.

    In the paper's core (§2) methods are read-only; a body that creates
    objects or assigns attributes in read-only mode raises this error at
    *check* time, not at run time.
    """


class EvalError(ReproError):
    """Base class for runtime evaluation failures."""


class StuckError(EvalError):
    """A non-value query has no applicable reduction step.

    Theorem 3 (type soundness) guarantees this never happens for
    well-typed queries; the metatheory harness asserts exactly that.
    """


class BudgetExceeded(EvalError):
    """A resource budget was exhausted before evaluation reached a value.

    The common parent of every bound the runtime enforces — step fuel
    (:class:`FuelExhausted`), wall-clock (:class:`DeadlineExceeded`) and
    the new-object quota (:class:`ObjectQuotaExceeded`).  See
    :class:`repro.resilience.budget.Budget` for the enforcement object.
    """

    #: Which resource ran out; subclasses override.
    resource = "budget"


class FuelExhausted(BudgetExceeded):
    """The step/fuel bound was exhausted before reaching a value.

    This is how the implementation makes non-termination observable:
    the paper's ``loop`` method (§1) manifests as ``FuelExhausted``
    rather than an actual hang.
    """

    resource = "steps"

    def __init__(self, message: str = "evaluation fuel exhausted", steps: int = 0):
        self.steps = steps
        super().__init__(message)


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline passed before evaluation finished."""

    resource = "deadline"

    def __init__(self, message: str = "evaluation deadline exceeded", elapsed: float = 0.0):
        self.elapsed = elapsed
        super().__init__(message)


class ObjectQuotaExceeded(BudgetExceeded):
    """Evaluation created more objects than its quota allows.

    Bounds the (New) rule: a query that grows extents past the quota is
    aborted before it can exhaust memory on a production store.
    """

    resource = "objects"

    def __init__(self, message: str = "new-object quota exceeded", created: int = 0):
        self.created = created
        super().__init__(message)


class TransientFault(ReproError):
    """An injected (or genuinely transient) infrastructure failure.

    Raised by :class:`repro.resilience.faults.FaultPlan` at named
    injection sites; the retry policy treats it as retryable by
    default.  ``site`` names where the fault fired.
    """

    def __init__(self, message: str = "transient fault", site: str = ""):
        self.site = site
        super().__init__(message)


class OptimizerError(ReproError):
    """An optimizer rewrite was attempted whose side condition fails."""
