"""Contextual equivalence testing — §7's future-work item, executable.

The paper's conclusion: "We also plan to develop notions of query
equivalence based upon 'contextual equivalence', which is a common
notion for programming languages [12]."  Two queries are contextually
equivalent when no program *context* can tell them apart.  Proving
contextual equivalence needs the theory the paper defers; *refuting*
it only needs one distinguishing context — which is mechanisable, and
exactly what an optimizer test harness wants.

:func:`contextually_distinct` enumerates a type-directed family of
observing contexts (iteration, size, set algebra, projections, casts,
conditionals, arithmetic — composed up to a depth bound), plugs both
queries into each, and compares all reduction orders of the two
plugged programs up to the oid bijection ∼ (via
:func:`repro.optimizer.equivalence.observationally_equal`).  A
returned context is a *certificate of inequivalence*; ``None`` means
the queries agreed under every generated context — evidence, not
proof, of equivalence.

Example — the §4 operand pair ``Persons`` vs ``Persons ∪ Persons`` is
indistinguishable, while ``Persons`` vs ``toset(bag-of-duplicates)``
shapes can be split by a ``size`` context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import IOQLTypeError
from repro.lang.ast import (
    Cast,
    Cmp,
    CmpKind,
    Comp,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    PrimEq,
    Query,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    Var,
)
from repro.model.types import (
    BOOL,
    INT,
    STRING,
    BagType,
    ClassType,
    ListType,
    RecordType,
    SetType,
    Type,
)

Context = Callable[[Query], Query]


@dataclass(frozen=True)
class Distinction:
    """A context that separates the two queries, with the evidence."""

    context_description: str
    plugged_left: Query
    plugged_right: Query
    reason: str

    def __str__(self) -> str:
        return (
            f"distinguished by context {self.context_description}: "
            f"{self.reason}"
        )


def _named(desc: str, fn: Context) -> tuple[str, Context]:
    return desc, fn


def base_contexts(t: Type, schema) -> Iterator[tuple[str, Context]]:
    """One layer of observing contexts appropriate to type ``t``."""
    yield _named("•", lambda q: q)
    if isinstance(t, (SetType, BagType, ListType)):
        yield _named("size(•)", lambda q: Size(q))
        if isinstance(t, SetType):
            yield _named(
                "• union •-fresh-literal",
                lambda q: SetOp(SetOpKind.UNION, q, SetLit(())),
            )
            yield _named(
                "{1 | x <- •}",
                lambda q: Comp(IntLit(1), (Gen("cx", q),)),
            )
            if t.elem == INT:
                yield _named(
                    "{x + 1 | x <- •}",
                    lambda q: Comp(
                        IntOp(IntOpKind.ADD, Var("cx"), IntLit(1)),
                        (Gen("cx", q),),
                    ),
                )
                yield _named(
                    "• intersect {0, 1, 2}",
                    lambda q: SetOp(
                        SetOpKind.INTERSECT,
                        q,
                        SetLit((IntLit(0), IntLit(1), IntLit(2))),
                    ),
                )
            if isinstance(t.elem, ClassType):
                cname = t.elem.name
                for a, at in _attrs(schema, cname):
                    yield _named(
                        f"{{x.{a} | x <- •}}",
                        lambda q, a=a: Comp(
                            Field(Var("cx"), a), (Gen("cx", q),)
                        ),
                    )
    elif t == INT:
        yield _named("• + 1", lambda q: IntOp(IntOpKind.ADD, q, IntLit(1)))
        yield _named("• = 0", lambda q: PrimEq(q, IntLit(0)))
        yield _named("• < 2", lambda q: Cmp(CmpKind.LT, q, IntLit(2)))
        yield _named("{•}", lambda q: SetLit((q,)))
    elif t == BOOL:
        yield _named("if • then 1 else 2", lambda q: If(q, IntLit(1), IntLit(2)))
    elif t == STRING:
        yield _named("{•}", lambda q: SetLit((q,)))
    elif isinstance(t, ClassType):
        for a, _ in _attrs(schema, t.name):
            yield _named(f"•.{a}", lambda q, a=a: Field(q, a))
        sup = schema.hierarchy.superclass(t.name)
        if sup is not None:
            yield _named(f"({sup}) •", lambda q, s=sup: Cast(s, q))
        yield _named("{•}", lambda q: SetLit((q,)))
    elif isinstance(t, RecordType):
        for l, _ in t.fields:
            yield _named(f"•.{l}", lambda q, l=l: Field(q, l))


def _attrs(schema, cname: str):
    try:
        return schema.atypes(cname)
    except Exception:
        return ()


def contexts(t: Type, schema, *, depth: int = 2) -> Iterator[tuple[str, Context]]:
    """Contexts composed up to ``depth`` layers (type-directed).

    Composition re-types the plugged query after each layer to pick the
    next layer's family; ill-typed compositions are pruned by the
    caller (plugging happens lazily).
    """
    yield from _compose(t, schema, depth)


def _compose(t: Type, schema, depth: int) -> Iterator[tuple[str, Context]]:
    for desc, fn in base_contexts(t, schema):
        yield desc, fn
    if depth <= 1:
        return
    # second layer: apply a base context, then re-derive the family for
    # the *resulting* type using a representative plug
    probe = Var("__probe__")
    for desc1, fn1 in base_contexts(t, schema):
        if desc1 == "•":
            continue
        # determine the result type of fn1 by typing with the probe
        from repro.typing.checker import check_query
        from repro.typing.context import TypeContext

        ctx = TypeContext(schema, vars={"__probe__": t})
        try:
            t1 = check_query(ctx, fn1(probe))
        except IOQLTypeError:
            continue
        for desc2, fn2 in base_contexts(t1, schema):
            if desc2 == "•":
                continue
            yield (
                f"{desc2} ∘ {desc1}",
                lambda q, f1=fn1, f2=fn2: f2(f1(q)),
            )


def contextually_distinct(
    db,
    q1: Query,
    q2: Query,
    *,
    depth: int = 2,
    max_paths: int = 20_000,
    max_steps: int = 10_000,
) -> Distinction | None:
    """Search for a context separating ``q1`` and ``q2``.

    Both queries must type-check at a common type (their LUB is used to
    pick the context family).  Returns the first distinguishing context
    found, or None when every generated context agreed.
    """
    from repro.optimizer.equivalence import observationally_equal

    t1 = db.typecheck(q1)
    t2 = db.typecheck(q2)
    t = db.schema.hierarchy.lub(t1, t2)
    if t is None:
        return Distinction(
            "(typing)", q1, q2, f"incompatible types {t1} vs {t2}"
        )
    for desc, fn in contexts(t, db.schema, depth=depth):
        p1, p2 = fn(q1), fn(q2)
        try:
            db.typecheck(p1)
            db.typecheck(p2)
        except IOQLTypeError:
            continue
        report = observationally_equal(
            db, p1, p2, max_paths=max_paths, max_steps=max_steps
        )
        if not report.equal and "truncated" not in report.reason:
            return Distinction(desc, p1, p2, report.reason)
    return None
