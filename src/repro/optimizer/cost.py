"""A cost model over reduction steps, and cost-based generator reordering.

The effect system answers *may I* rewrite (§4); a real optimizer also
needs *should I*.  This module supplies the cost machinery:

* :class:`CostModel` — cardinality and evaluation-cost estimates driven
  by catalog statistics: extent sizes from the live EE, and (v2) the
  per-(extent, attribute) :class:`~repro.db.statistics.StatisticsCatalog`
  — equality selectivity = 1/distinct, range selectivity from equi-depth
  histograms, join cardinality from matching distinct counts.  The
  System-R constants (0.5 default, 0.1 equality) remain the fallback
  whenever no statistics are available;
* the ``reorder-generators`` rewrite: a full join-order search over the
  independent generator permutations of each comprehension, placing
  each movable predicate at the earliest point its variables are bound.
  Legality is effect-gated exactly like every other rule (moved sources
  must be write-free and termination-safe, moved predicates additionally
  pure — reordering changes how many times each is evaluated);
  profitability is the cost model's call.

Estimates can be wrong (uniformity, independence, staleness) — but the
*correctness* story is carried entirely by the effect side conditions;
a bad estimate can only cost performance, never answers.  The adaptive
layer on top (``repro.exec.engine``) compares these estimates against
observed cardinalities mid-query and replans on divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cmp,
    Comp,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    ListLit,
    ObjEq,
    Pred,
    PrimEq,
    Qualifier,
    Query,
    SetLit,
    SetOp,
    SetOpKind,
    StrLit,
    ToSet,
    Traverse,
    Var,
)
from repro.lang.traversal import free_vars, subqueries
from repro.optimizer.rules import RewriteContext, Rule

DEFAULT_SELECTIVITY = 0.5
"""Fraction of elements assumed to survive one predicate qualifier."""

EQUALITY_SELECTIVITY = 0.1
"""Fraction assumed to survive an equality predicate (``=``/``==``)
when no distinct-count statistics are available — the System-R 1/10
default in place of per-attribute distinct counts."""

UNKNOWN_CARDINALITY = 8.0
"""Guess for collections the model cannot see through (e.g. variables)."""

MIN_SELECTIVITY = 1e-6
"""Floor under statistics-driven selectivities (a 0 estimate would make
every downstream cost identical and hide real ordering differences)."""

_EXHAUSTIVE_ORDER_LIMIT = 6
"""Largest independent-generator group ordered by exhaustive search;
bigger groups fall back to a greedy smallest-rows-first construction."""


class BoundStats:
    """Lazy view of a database's statistics catalog for one model.

    Column stats are built/validated against the database's *current*
    store version at first use, so a model snapshot stays cheap when the
    optimizer never asks about a column.
    """

    __slots__ = ("_db",)

    def __init__(self, db):
        self._db = db

    def column(self, extent: str, attr: str):
        db = self._db
        catalog = getattr(db, "_stats", None)
        if catalog is None:
            return None
        try:
            return catalog.column(
                db.ee, db.oe, db._state_version, extent, attr
            )
        except Exception:
            return None


@dataclass
class CostModel:
    """Cardinality/cost estimation from catalog statistics.

    ``stats`` (when present) answers per-column distinct counts and
    histograms; ``card_overrides`` maps a source sub-query AST to an
    *observed* cardinality — the adaptive replanner's feedback channel,
    consulted before any estimate.  ``stats_epoch`` records which
    statistics epoch the model was snapshotted against so cached plans
    can be invalidated on drift.
    """

    extent_sizes: dict[str, int] = field(default_factory=dict)
    selectivity: float = DEFAULT_SELECTIVITY
    stats: BoundStats | None = None
    card_overrides: dict[Query, float] = field(default_factory=dict)
    stats_epoch: int = -1

    @staticmethod
    def from_database(db) -> "CostModel":
        """Snapshot the live catalog: extent sizes plus column stats."""
        model = CostModel(
            {e: len(db.ee.members(e)) for e in db.ee.names()}
        )
        catalog = getattr(db, "_stats", None)
        if catalog is not None:
            model.stats_epoch = catalog.observe(db.ee)
            model.stats = BoundStats(db)
        return model

    # -- attribute resolution ---------------------------------------------
    def _column(self, q: Query, env: dict[str, str] | None):
        """Column stats for ``x.attr`` when ``x`` ranges over an extent."""
        if (
            self.stats is None
            or env is None
            or not isinstance(q, Field)
            or not isinstance(q.target, Var)
        ):
            return None
        extent = env.get(q.target.name)
        if extent is None:
            return None
        return self.stats.column(extent, q.name)

    # -- cardinality -------------------------------------------------------
    def cardinality(self, q: Query, env: dict[str, str] | None = None) -> float:
        """Estimated number of elements of a collection-valued query."""
        if self.card_overrides:
            observed = self.card_overrides.get(q)
            if observed is not None:
                return observed
        if isinstance(q, ExtentRef):
            return float(self.extent_sizes.get(q.name, UNKNOWN_CARDINALITY))
        if isinstance(q, (SetLit, BagLit, ListLit)):
            return float(len(q.items))
        if isinstance(q, SetOp):
            l = self.cardinality(q.left, env)
            r = self.cardinality(q.right, env)
            if q.op is SetOpKind.UNION:
                return l + r
            if q.op is SetOpKind.INTERSECT:
                return min(l, r) * self.selectivity
            return l * self.selectivity  # EXCEPT
        if isinstance(q, ToSet):
            return self.cardinality(q.arg, env)
        if isinstance(q, Comp):
            card = 1.0
            inner = dict(env) if env else {}
            for cq in q.qualifiers:
                if isinstance(cq, Gen):
                    card *= self.cardinality(cq.source, inner)
                    if isinstance(cq.source, ExtentRef):
                        inner[cq.var] = cq.source.name
                    else:
                        inner.pop(cq.var, None)
                else:
                    card *= self.predicate_selectivity(cq.cond, inner)
            return card
        if isinstance(q, If):
            return max(self.cardinality(q.then, env), self.cardinality(q.els, env))
        if isinstance(q, Traverse):
            src = self.cardinality(q.source, env)
            total = float(sum(self.extent_sizes.values()))
            # statistics-driven fan-out: the traversed attribute is
            # single-valued, so each hop's frontier is bounded by the
            # column's distinct target count (heavy fan-in — many
            # objects sharing one target — collapses the frontier)
            fan = None
            if self.stats is not None and isinstance(q.source, ExtentRef):
                col = self.stats.column(q.source.name, q.attr)
                if col is not None and col.rows > 0:
                    fan = col.distinct()
            if q.depth is not None:
                # each start object contributes at most one new node per
                # hop; the whole store is a hard ceiling when the
                # catalog knows its size
                card = src * float(q.depth + 1)
                if fan is not None:
                    card = min(card, src + fan * float(q.depth))
                return min(card, total) if self.extent_sizes else card
            # unbounded: the closure can saturate the reachable cone
            return total if self.extent_sizes else max(src, UNKNOWN_CARDINALITY)
        return UNKNOWN_CARDINALITY

    def predicate_selectivity(
        self, cond: Query, env: dict[str, str] | None = None
    ) -> float:
        """Estimated fraction of rows surviving one predicate.

        With statistics and an ``env`` mapping generator variables to
        the extents they range over:

        * ``x.a = literal``  → the measured frequency of the literal
          (exact or MCV), falling back to 1/distinct(a);
        * ``x.a = y.b``      → exact matching-row count while both
          frequency tables are exact, else the textbook
          1/max(distinct(a), distinct(b)) equi-join estimate;
        * ``x.a < literal`` (and friends) → the equi-depth histogram
          fraction.

        Without statistics, equalities get :data:`EQUALITY_SELECTIVITY`
        and everything else the model's default — exactly the v1
        constants, so the profiler (``.explain analyze``) and the
        reorder rule always price the same operator the same way.
        """
        if isinstance(cond, (PrimEq, ObjEq)):
            sel = self._eq_selectivity(cond, env)
            return sel if sel is not None else EQUALITY_SELECTIVITY
        if isinstance(cond, Cmp):
            sel = self._range_selectivity(cond, env)
            if sel is not None:
                return sel
        if isinstance(cond, BoolLit):
            return 1.0 if cond.value else 0.0
        return self.selectivity

    def _eq_selectivity(
        self, cond: Query, env: dict[str, str] | None
    ) -> float | None:
        from repro.db.statistics import join_selectivity

        left = self._column(cond.left, env)
        right = self._column(cond.right, env)
        if left is not None and right is not None:
            return max(MIN_SELECTIVITY, join_selectivity(left, right))
        col = left if left is not None else right
        if col is None:
            return None
        # a concrete comparand lets the frequency/MCV table answer
        other = cond.right if left is not None else cond.left
        if not isinstance(other, (IntLit, StrLit, BoolLit)):
            other = None
        return max(MIN_SELECTIVITY, col.eq_selectivity(other))

    def _range_selectivity(
        self, cond: Cmp, env: dict[str, str] | None
    ) -> float | None:
        col = self._column(cond.left, env)
        other = cond.right
        op = cond.op.value
        if col is None:
            col = self._column(cond.right, env)
            other = cond.left
            # mirror the operator: c OP x.a  ==  x.a OP' c
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if col is None or not isinstance(other, IntLit):
            return None
        if not col.has_histogram:
            return None
        return max(MIN_SELECTIVITY, col.range_selectivity(op, other.value))

    # -- evaluation cost ------------------------------------------------------
    def eval_cost(self, q: Query, env: dict[str, str] | None = None) -> float:
        """Estimated reduction steps to evaluate ``q`` once.

        Comprehension cost models the machine: the first generator's
        source is evaluated once, each later qualifier once per
        iteration of everything before it, and the head once per
        surviving binding.
        """
        if isinstance(q, Comp):
            cost = 1.0
            iterations = 1.0
            inner = dict(env) if env else {}
            for cq in q.qualifiers:
                if isinstance(cq, Gen):
                    cost += iterations * self.eval_cost(cq.source, inner)
                    iterations *= max(self.cardinality(cq.source, inner), 0.0)
                    if isinstance(cq.source, ExtentRef):
                        inner[cq.var] = cq.source.name
                    else:
                        inner.pop(cq.var, None)
                else:
                    cost += iterations * self.eval_cost(cq.cond, inner)
                    iterations *= self.predicate_selectivity(cq.cond, inner)
            cost += iterations * self.eval_cost(q.head, inner)
            return cost
        if isinstance(q, Traverse):
            # the chase charges one step per visited node; the RED
            # route's index lookup is cheaper but the model prices the
            # fallback (an over-estimate can only cost performance)
            return (
                1.0
                + self.eval_cost(q.source, env)
                + max(self.cardinality(q, env), 1.0)
            )
        base = 1.0
        for sub in subqueries(q):
            base += self.eval_cost(sub, env)
        if isinstance(q, ExtentRef):
            base += self.extent_sizes.get(q.name, UNKNOWN_CARDINALITY)
        return base


# ---------------------------------------------------------------------------
# join-order search
# ---------------------------------------------------------------------------


def comp_env(q: Comp, env: dict[str, str] | None = None) -> dict[str, str]:
    """Variable → extent bindings for a comprehension's generators."""
    out = dict(env) if env else {}
    for cq in q.qualifiers:
        if isinstance(cq, Gen):
            if isinstance(cq.source, ExtentRef):
                out[cq.var] = cq.source.name
            else:
                out.pop(cq.var, None)
    return out


def order_cost(
    model: CostModel,
    qualifiers: tuple[Qualifier, ...] | list[Qualifier],
    head: Query,
    env: dict[str, str] | None = None,
) -> float:
    """Cost of one qualifier order under the compiled engine's shape.

    An uncorrelated source is materialized once (the compiler caches
    it); a correlated source re-evaluates per surviving row.  Every
    generator additionally charges one step per loop iteration, and
    predicates charge their evaluation per row then thin the stream by
    their estimated selectivity.  This is the function the join-order
    search minimizes — deliberately the same arithmetic as the
    profiler's per-operator estimates.
    """
    rows = 1.0
    cost = 1.0
    bound: set[str] = set()
    inner = dict(env) if env else {}
    for cq in qualifiers:
        if isinstance(cq, Gen):
            src_cost = model.eval_cost(cq.source, inner)
            if free_vars(cq.source) & bound:
                cost += rows * src_cost  # correlated: once per row
            else:
                cost += src_cost  # uncorrelated: materialized once
            card = max(model.cardinality(cq.source, inner), 0.0)
            cost += rows * card  # the loop itself
            rows *= card
            bound.add(cq.var)
            if isinstance(cq.source, ExtentRef):
                inner[cq.var] = cq.source.name
            else:
                inner.pop(cq.var, None)
        else:
            cost += rows * model.eval_cost(cq.cond, inner)
            rows *= model.predicate_selectivity(cq.cond, inner)
    cost += rows * model.eval_cost(head, inner)
    return cost


def _segment_orders(
    gens: list[Gen], deps: dict[int, set[int]]
) -> "list[tuple[int, ...]]":
    """All dependence-respecting permutations of one generator group."""
    n = len(gens)
    valid = []
    for perm in permutations(range(n)):
        pos = {g: i for i, g in enumerate(perm)}
        if all(pos[d] < pos[g] for g in range(n) for d in deps[g]):
            valid.append(perm)
    return valid


def _greedy_order(
    model: CostModel,
    gens: list[Gen],
    deps: dict[int, set[int]],
    preds_for: dict[int, list[Pred]],
    env: dict[str, str],
) -> tuple[int, ...]:
    """Smallest-effective-rows-first construction for large groups."""
    n = len(gens)
    placed: list[int] = []
    done: set[int] = set()
    while len(placed) < n:
        best = None
        best_key = None
        for g in range(n):
            if g in done or not deps[g] <= done:
                continue
            card = max(model.cardinality(gens[g].source, env), 0.0)
            eff = card
            for pred in preds_for.get(g, []):
                eff *= model.predicate_selectivity(pred.cond, env)
            key = (eff, model.eval_cost(gens[g].source, env))
            if best_key is None or key < best_key:
                best, best_key = g, key
        assert best is not None
        placed.append(best)
        done.add(best)
    return tuple(placed)


def reorder_qualifiers(
    model: CostModel, rc: RewriteContext, q: Comp
) -> tuple[Qualifier, ...] | None:
    """The full join-order search over one comprehension.

    Qualifiers are split into maximal *movable groups*: runs of
    generators whose sources are skippable (write-free +
    termination-safe) and predicates that are discardable (additionally
    pure).  Anything else — an effectful source, an impure predicate —
    is a barrier that nothing crosses.  Within a group the search
    considers every dependence-respecting generator permutation
    (exhaustive up to :data:`_EXHAUSTIVE_ORDER_LIMIT`, greedy beyond),
    re-attaching each predicate at the earliest point its variables are
    bound, and keeps the cheapest order under :func:`order_cost`.

    Returns the reordered qualifier tuple, or ``None`` when the
    original order is already (estimated) optimal or nothing may move.
    """
    quals = q.qualifiers
    gen_vars = [cq.var for cq in quals if isinstance(cq, Gen)]
    if len(set(gen_vars)) != len(gen_vars):
        return None  # shadowed variables: order is semantically load-bearing
    env = comp_env(q)

    # bind every generator so effect checks can resolve attribute classes
    rc_all = rc
    for cq in quals:
        if isinstance(cq, Gen):
            rc_all = rc_all.bind(cq.var, cq.source)

    out: list[Qualifier] = []
    changed = False
    i = 0
    while i < len(quals):
        cq = quals[i]
        movable = (
            rc_all.skippable(cq.source)
            if isinstance(cq, Gen)
            else rc_all.discardable(cq.cond)
        )
        if not movable:
            out.append(cq)
            i += 1
            continue
        # collect the maximal movable group
        group: list[Qualifier] = []
        while i < len(quals):
            cq = quals[i]
            ok = (
                rc_all.skippable(cq.source)
                if isinstance(cq, Gen)
                else rc_all.discardable(cq.cond)
            )
            if not ok:
                break
            group.append(cq)
            i += 1
        reordered = _reorder_group(model, group, out, env, q.head, quals[i:])
        if list(reordered) != list(group):
            changed = True
        out.extend(reordered)
    if not changed:
        return None
    return tuple(out)


def _reorder_group(
    model: CostModel,
    group: list[Qualifier],
    prefix: list[Qualifier],
    env: dict[str, str],
    head: Query,
    suffix: tuple[Qualifier, ...],
) -> list[Qualifier]:
    gens = [cq for cq in group if isinstance(cq, Gen)]
    if len(gens) <= 1:
        return group
    preds = [cq for cq in group if isinstance(cq, Pred)]
    var_of = {g.var: gi for gi, g in enumerate(gens)}

    deps: dict[int, set[int]] = {}
    for gi, g in enumerate(gens):
        deps[gi] = {
            var_of[v]
            for v in free_vars(g.source)
            if v in var_of and var_of[v] != gi
        }
    pred_deps: list[set[int]] = [
        {var_of[v] for v in free_vars(p.cond) if v in var_of} for p in preds
    ]

    def interleave(order: tuple[int, ...]) -> list[Qualifier]:
        seq: list[Qualifier] = []
        emitted: set[int] = set()
        pending = list(range(len(preds)))
        # predicates with no group deps run before any generator
        for pi in list(pending):
            if not pred_deps[pi]:
                seq.append(preds[pi])
                pending.remove(pi)
        for gi in order:
            seq.append(gens[gi])
            emitted.add(gi)
            for pi in list(pending):
                if pred_deps[pi] <= emitted:
                    seq.append(preds[pi])
                    pending.remove(pi)
        return seq

    def preds_enabled_by() -> dict[int, list[Pred]]:
        # for the greedy key: predicates a generator's binding enables
        by: dict[int, list[Pred]] = {}
        for pi, p in enumerate(preds):
            ds = pred_deps[pi]
            if len(ds) == 1:
                (only,) = ds
                by.setdefault(only, []).append(p)
        return by

    def cost_of(seq: list[Qualifier]) -> float:
        return order_cost(
            model, list(prefix) + seq + list(suffix), head, env
        )

    if len(gens) <= _EXHAUSTIVE_ORDER_LIMIT:
        orders = _segment_orders(gens, deps)
    else:
        orders = [_greedy_order(model, gens, deps, preds_enabled_by(), env)]
        orders.append(tuple(range(len(gens))))  # never regress vs original

    best_seq = group
    best_cost = cost_of(group)
    for order in orders:
        seq = interleave(order)
        c = cost_of(seq)
        if c < best_cost - 1e-9:
            best_cost = c
            best_seq = seq
    return best_seq


def make_reorder_rule(model: CostModel) -> Rule:
    """The cost-directed ``reorder-generators`` rewrite.

    v2: a full join-order search per comprehension (see
    :func:`reorder_qualifiers`) in place of the old single
    adjacent-swap.  Legality is unchanged — moved sources must be
    write-free and termination-safe, moved predicates pure — and the
    rewrite fires only on a strict estimated improvement, so the
    planner's fixpoint terminates.
    """

    def fn(rc: RewriteContext, q: Query):
        if not isinstance(q, Comp):
            return None
        reordered = reorder_qualifiers(model, rc, q)
        if reordered is None:
            return None
        return Comp(q.head, reordered)

    return Rule("reorder-generators", fn)


def cost_rules(model: CostModel):
    """The default rewrite pipeline plus cost-based reordering."""
    from repro.optimizer.rules import DEFAULT_RULES

    return DEFAULT_RULES + (make_reorder_rule(model),)


def optimize_with_costs(db, q: Query, model: CostModel | None = None):
    """The default pipeline plus cost-based generator reordering."""
    from repro.optimizer.planner import optimize

    if model is None:
        model = CostModel.from_database(db)
    return optimize(db, q, cost_rules(model), model=model)
