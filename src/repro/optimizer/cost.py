"""A cost model over reduction steps, and cost-based generator reordering.

The effect system answers *may I* rewrite (§4); a real optimizer also
needs *should I*.  This module supplies the smallest useful cost
machinery:

* :class:`CostModel` — cardinality and evaluation-cost estimates driven
  by catalog statistics (extent sizes from the live EE), with textbook
  selectivity defaults for predicates;
* the ``reorder-generators`` rewrite: swap *adjacent, independent*
  generators so the cheaper/smaller source runs in the outer position.
  Legality is effect-gated exactly like every other rule (both sources
  must be write-free and termination-safe — swapping changes how many
  times each source is evaluated); profitability is the cost model's
  call.

The estimates are intentionally crude (uniformity, independence, fixed
selectivity) — the classic System-R simplifications — because the
*correctness* story is carried entirely by the effect side conditions;
a bad estimate can only cost performance, never answers.  The test
suite verifies both halves separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (
    BagLit,
    Comp,
    ExtentRef,
    Gen,
    If,
    ListLit,
    ObjEq,
    PrimEq,
    Query,
    SetLit,
    SetOp,
    SetOpKind,
    ToSet,
)
from repro.lang.traversal import free_vars, subqueries
from repro.optimizer.rules import RewriteContext, Rule

DEFAULT_SELECTIVITY = 0.5
"""Fraction of elements assumed to survive one predicate qualifier."""

EQUALITY_SELECTIVITY = 0.1
"""Fraction assumed to survive an equality predicate (``=``/``==``):
equalities are far more selective than arbitrary predicates — the
System-R 1/10 default in place of per-attribute distinct counts."""

UNKNOWN_CARDINALITY = 8.0
"""Guess for collections the model cannot see through (e.g. variables)."""


@dataclass
class CostModel:
    """Cardinality/cost estimation from extent statistics."""

    extent_sizes: dict[str, int] = field(default_factory=dict)
    selectivity: float = DEFAULT_SELECTIVITY

    @staticmethod
    def from_database(db) -> "CostModel":
        """Snapshot the live catalog: extent name → current size."""
        return CostModel(
            {e: len(db.ee.members(e)) for e in db.ee.names()}
        )

    # -- cardinality -------------------------------------------------------
    def cardinality(self, q: Query) -> float:
        """Estimated number of elements of a collection-valued query."""
        if isinstance(q, ExtentRef):
            return float(self.extent_sizes.get(q.name, UNKNOWN_CARDINALITY))
        if isinstance(q, (SetLit, BagLit, ListLit)):
            return float(len(q.items))
        if isinstance(q, SetOp):
            l = self.cardinality(q.left)
            r = self.cardinality(q.right)
            if q.op is SetOpKind.UNION:
                return l + r
            if q.op is SetOpKind.INTERSECT:
                return min(l, r) * self.selectivity
            return l * self.selectivity  # EXCEPT
        if isinstance(q, ToSet):
            return self.cardinality(q.arg)
        if isinstance(q, Comp):
            card = 1.0
            for cq in q.qualifiers:
                if isinstance(cq, Gen):
                    card *= self.cardinality(cq.source)
                else:
                    card *= self.selectivity
            return card
        if isinstance(q, If):
            return max(self.cardinality(q.then), self.cardinality(q.els))
        return UNKNOWN_CARDINALITY

    def predicate_selectivity(self, cond: Query) -> float:
        """Estimated fraction of rows surviving one predicate.

        Equalities get the sharper :data:`EQUALITY_SELECTIVITY`; every
        other predicate keeps the model's default.  This is what the
        profiler uses for per-operator estimates (``.explain analyze``),
        so the estimated-vs-actual comparison exercises the very numbers
        a cost-based replanner would act on.
        """
        if isinstance(cond, (PrimEq, ObjEq)):
            return EQUALITY_SELECTIVITY
        return self.selectivity

    # -- evaluation cost ------------------------------------------------------
    def eval_cost(self, q: Query) -> float:
        """Estimated reduction steps to evaluate ``q`` once.

        Comprehension cost models the machine: the first generator's
        source is evaluated once, each later qualifier once per
        iteration of everything before it, and the head once per
        surviving binding.
        """
        if isinstance(q, Comp):
            cost = 1.0
            iterations = 1.0
            for cq in q.qualifiers:
                if isinstance(cq, Gen):
                    cost += iterations * self.eval_cost(cq.source)
                    iterations *= max(self.cardinality(cq.source), 0.0)
                else:
                    cost += iterations * self.eval_cost(cq.cond)
                    iterations *= self.selectivity
            cost += iterations * self.eval_cost(q.head)
            return cost
        base = 1.0
        for sub in subqueries(q):
            base += self.eval_cost(sub)
        if isinstance(q, ExtentRef):
            base += self.extent_sizes.get(q.name, UNKNOWN_CARDINALITY)
        return base


def make_reorder_rule(model: CostModel) -> Rule:
    """The cost-directed ``reorder-generators`` rewrite.

    Swaps one adjacent generator pair per application when

    * the second generator's source does not use the first's variable
      (independence),
    * both sources are write-free and termination-safe (the swap changes
      their evaluation counts — the §4 discipline), and
    * the cost model predicts a strict improvement.
    """

    def fn(rc: RewriteContext, q: Query):
        if not isinstance(q, Comp):
            return None
        quals = q.qualifiers
        for i in range(len(quals) - 1):
            g1, g2 = quals[i], quals[i + 1]
            if not (isinstance(g1, Gen) and isinstance(g2, Gen)):
                continue
            if g1.var in free_vars(g2.source):
                continue  # dependent: not swappable
            rc_i = rc
            for prior in quals[:i]:
                if isinstance(prior, Gen):
                    rc_i = rc_i.bind(prior.var, prior.source)
            if not (rc_i.skippable(g1.source) and rc_i.skippable(g2.source)):
                continue
            before = _pair_cost(model, g1, g2)
            after = _pair_cost(model, g2, g1)
            if after < before:
                swapped = list(quals)
                swapped[i], swapped[i + 1] = g2, g1
                return Comp(q.head, tuple(swapped))
        return None

    return Rule("reorder-generators", fn)


def _pair_cost(model: CostModel, outer: Gen, inner: Gen) -> float:
    """Source-evaluation cost of running ``outer`` then ``inner``:
    outer's source once, inner's source once per outer element."""
    return model.eval_cost(outer.source) + max(
        model.cardinality(outer.source), 0.0
    ) * model.eval_cost(inner.source)


def optimize_with_costs(db, q: Query):
    """The default pipeline plus cost-based generator reordering."""
    from repro.optimizer.planner import optimize
    from repro.optimizer.rules import DEFAULT_RULES

    model = CostModel.from_database(db)
    rules = DEFAULT_RULES + (make_reorder_rule(model),)
    return optimize(db, q, rules)
