"""Empirical query equivalence — the oracle behind optimizer testing.

The paper's future work proposes notions of query equivalence based on
contextual equivalence; here we provide the *observational testing*
half: two queries are judged equivalent on a database when the sets of
observable outcomes of **all** their reduction orders coincide up to
the oid bijection ∼, with agreement also on divergence and stuckness.

This is sound as a refutation tool (a mismatch is a real inequivalence
on that database) and is how every optimizer rewrite is validated in
the test-suite: ``optimize`` preserves :func:`observationally_equal` on
the databases at hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Query
from repro.semantics.bijection import equivalent
from repro.semantics.explorer import Exploration, Outcome, explore


@dataclass(frozen=True)
class EquivalenceReport:
    """The verdict plus the evidence."""

    equal: bool
    reason: str
    left: Exploration
    right: Exploration


def _outcomes_match(a: list[Outcome], b: list[Outcome]) -> bool:
    """Multiset equality of outcomes modulo ∼ (sizes already dedup'd)."""
    remaining = list(b)
    for oa in a:
        for i, ob in enumerate(remaining):
            if equivalent(oa.value, oa.ee, oa.oe, ob.value, ob.ee, ob.oe):
                del remaining[i]
                break
        else:
            return False
    return not remaining


def observationally_equal(
    db,
    q1: Query,
    q2: Query,
    *,
    max_steps: int = 10_000,
    max_paths: int = 50_000,
) -> EquivalenceReport:
    """Compare all schedules of two queries on the current database."""
    e1 = db.explore(q1, max_steps=max_steps, max_paths=max_paths)
    e2 = db.explore(q2, max_steps=max_steps, max_paths=max_paths)
    if e1.truncated or e2.truncated:
        return EquivalenceReport(
            False, "exploration truncated: verdict unavailable", e1, e2
        )
    if e1.diverged != e2.diverged:
        return EquivalenceReport(
            False,
            f"divergence mismatch: left={'yes' if e1.diverged else 'no'}, "
            f"right={'yes' if e2.diverged else 'no'}",
            e1,
            e2,
        )
    if bool(e1.stuck) != bool(e2.stuck):
        return EquivalenceReport(False, "stuckness mismatch", e1, e2)
    if len(e1.outcomes) != len(e2.outcomes):
        return EquivalenceReport(
            False,
            f"distinct-outcome counts differ: {len(e1.outcomes)} vs "
            f"{len(e2.outcomes)}",
            e1,
            e2,
        )
    if not _outcomes_match(e1.outcomes, e2.outcomes):
        return EquivalenceReport(
            False, "some outcome has no ∼-match on the other side", e1, e2
        )
    return EquivalenceReport(True, "all outcomes match up to ∼", e1, e2)
