"""The effect-guided rewriting pipeline.

Applies the :data:`~repro.optimizer.rules.DEFAULT_RULES` bottom-up to a
fixpoint, threading the typing context through binders so that every
effect side condition is evaluated with the right variable types.
Every firing is recorded as a :class:`RewriteStep` — the provenance the
benchmarks print and the equivalence tests replay.

The planner is deliberately *transparent*: it refuses nothing silently.
A rule whose side condition fails simply does not fire; the legality
analysis behind a refusal can be asked for directly
(:func:`explain_commutation` for Theorem 8's rewrite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IOQLTypeError
from repro.lang.ast import Comp, Gen, Pred, Qualifier, Query, SetOp
from repro.lang.traversal import map_subqueries
from repro.model.types import SetType
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span
from repro.optimizer.rules import (
    COMMUTE_SETOP,
    DEFAULT_RULES,
    RewriteContext,
    Rule,
)
from repro.typing.checker import check_query
from repro.typing.context import TypeContext

_MAX_PASSES = 50


@dataclass(frozen=True)
class RewriteStep:
    """One rule firing: which rule, and the before/after subterms."""

    rule: str
    before: Query
    after: Query


@dataclass
class OptimizationResult:
    """The optimized query plus its provenance trail."""

    query: Query
    steps: list[RewriteStep] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.steps)

    def rules_fired(self) -> list[str]:
        return [s.rule for s in self.steps]


class Planner:
    """Bottom-up, fixpoint application of a rule set."""

    def __init__(self, ctx: TypeContext, rules: tuple[Rule, ...] = DEFAULT_RULES):
        self.base_ctx = ctx
        self.rules = rules
        self.steps: list[RewriteStep] = []

    def optimize(self, q: Query) -> Query:
        """Rewrite to a fixpoint (bounded by a generous pass limit)."""
        current = q
        for _ in range(_MAX_PASSES):
            rewritten = self._pass(self.base_ctx, current)
            if rewritten == current:
                return current
            current = rewritten
        return current

    # ------------------------------------------------------------------
    def _pass(self, ctx: TypeContext, q: Query) -> Query:
        """One bottom-up pass: children first, then rules at this node."""
        if isinstance(q, Comp):
            rebuilt = self._pass_comp(ctx, q)
        else:
            rebuilt = map_subqueries(q, lambda sub: self._pass(ctx, sub))
        rc = RewriteContext(ctx)
        for rule in self.rules:
            replacement = rule.apply(rc, rebuilt)
            if replacement is not None and replacement != rebuilt:
                self.steps.append(RewriteStep(rule.name, rebuilt, replacement))
                return replacement
        return rebuilt

    def _pass_comp(self, ctx: TypeContext, q: Comp) -> Query:
        """Descend a comprehension, extending the context per generator."""
        quals: list[Qualifier] = []
        inner = ctx
        for cq in q.qualifiers:
            if isinstance(cq, Pred):
                quals.append(Pred(self._pass(inner, cq.cond)))
            else:
                assert isinstance(cq, Gen)
                new_source = self._pass(inner, cq.source)
                quals.append(Gen(cq.var, new_source))
                inner = _bind(inner, cq.var, new_source)
        head = self._pass(inner, q.head)
        return Comp(head, tuple(quals))


def _bind(ctx: TypeContext, var: str, source: Query) -> TypeContext:
    try:
        st = check_query(ctx, source)
    except IOQLTypeError:
        return ctx
    if isinstance(st, SetType):
        return ctx.extend(var, st.elem)
    return ctx


def optimize(
    db,
    q: Query,
    rules: tuple[Rule, ...] = DEFAULT_RULES,
    model=None,
) -> OptimizationResult:
    """Optimize ``q`` against a :class:`~repro.db.database.Database`.

    Typechecks first (ill-typed queries are not rewritten), then runs
    the pipeline and returns query + provenance.  ``model`` (a
    :class:`~repro.optimizer.cost.CostModel`) is only used to price the
    before/after for the obs span; passing the caller's model avoids a
    second catalog snapshot.
    """
    ctx = db.type_context()
    check_query(ctx, q)  # raise early; rules assume well-typedness
    with _span("optimize") as sp:
        planner = Planner(ctx, rules)
        out = planner.optimize(q)
        if _OBS.enabled:
            _METRICS.counter("optimize_total").inc()
            _METRICS.counter("optimize_rewrites_total").inc(len(planner.steps))
            if model is None:
                from repro.optimizer.cost import CostModel

                model = CostModel.from_database(db)
            sp.set(
                rewrites=len(planner.steps),
                cost_before=model.eval_cost(q),
                cost_after=model.eval_cost(out),
            )
    return OptimizationResult(out, planner.steps)


def try_commute(db, q: Query) -> OptimizationResult:
    """Attempt Theorem 8's commutation at the *root* set operator only."""
    ctx = db.type_context()
    check_query(ctx, q)
    rc = RewriteContext(ctx)
    replacement = COMMUTE_SETOP.apply(rc, q)
    if replacement is None:
        return OptimizationResult(q, [])
    return OptimizationResult(
        replacement, [RewriteStep(COMMUTE_SETOP.name, q, replacement)]
    )


def explain_commutation(db, q: Query) -> str:
    """Human-readable legality verdict for commuting a root set operator."""
    if not isinstance(q, SetOp) or not q.op.commutative:
        return "not a commutative binary set operator"
    ctx = db.type_context()
    rc = RewriteContext(ctx)
    le = rc.effect(q.left)
    re_ = rc.effect(q.right)
    if le is None or re_ is None:
        return "operands do not effect-check"
    if le.interferes_with(re_):
        return (
            f"UNSAFE: left effect {le} interferes with right effect {re_} "
            f"(Theorem 8's side condition fails)"
        )
    return f"safe: effects {le} and {re_} do not interfere"
