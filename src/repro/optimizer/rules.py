"""Rewrite rules with effect-based side conditions (§4's application).

The paper's point is that classical algebraic optimizations are
*unsound* for a query language with object creation and possibly
non-terminating methods, but become sound again when gated on effect
information.  Each rule here carries its side condition explicitly:

====================  =====================================================
``if-const-fold``     ``if true/false then … else …`` → branch (safe)
``arith-fold``        literal arithmetic/comparison/equality (safe)
``union-empty``       ``q ∪ {}`` / ``{} ∪ q`` → ``q`` (safe: ∪ by a pure
                      value is identity and ``q`` is still evaluated)
``intersect-empty``   ``q ∩ {}``, ``{} ∩ q``, ``q \\ … `` with ``{}`` →
                      ``{}``/``q`` — requires the *discarded* operand to
                      be pure and termination-safe (its evaluation is
                      skipped)
``true-pred``         drop a ``true`` predicate qualifier (safe)
``false-pred``        ``{h | …, false, …}`` → ``{}`` — requires the
                      *skipped* qualifiers to be write-free and
                      termination-safe
``empty-gen``         ``{h | …, x ← {}, …}`` → ``{}`` — same condition
``pred-pushdown``     move a pure, termination-safe predicate to the
                      earliest position where its variables are bound —
                      requires the qualifiers it crosses to be write-free
                      and termination-safe (their evaluation count drops)
``unnest``            ``{h | x ← {h′ | G⃗}, R⃗}`` →
                      ``{h[x:=h′] | G⃗, R⃗[x:=h′]}`` — valid on sets
                      (idempotent collection); requires ``h′`` pure and
                      termination-safe (it is duplicated) and the inner
                      qualifiers write-free
``record-proj``       ``struct(…, l: q, …).l`` → ``q`` — requires the
                      *other* field expressions to be pure and
                      termination-safe
``commute-setop``     ``q₁ op q₂`` → ``q₂ op q₁`` for commutative op —
                      Theorem 8's condition: the operand effects must
                      not interfere.  Exposed for cost-directed use;
                      not in the default normalisation pipeline.
====================  =====================================================

"Termination-safe" is the syntactic check :func:`termination_safe`:
no method or definition calls anywhere (the paper stresses that method
invocation may not terminate and that effect information alone does not
capture divergence).  "Write-free"/"pure" are judgements of the
Figure 3 effect system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.effects.algebra import EMPTY, Effect
from repro.effects.checker import EffectChecker
from repro.errors import IOQLTypeError
from repro.lang.ast import (
    BoolLit,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    MethodCall,
    Pred,
    PrimEq,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    StrLit,
)
from repro.lang.traversal import free_vars, subst, walk
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.typing.context import TypeContext


def termination_safe(q: Query) -> bool:
    """No method or definition calls: evaluation always terminates.

    Sound and syntactic: every other construct is structurally
    decreasing under the Figure 2 rules.  (Definitions are excluded
    because their bodies may call methods; a whole-program analysis
    could refine this.)
    """
    return not any(isinstance(n, (MethodCall, DefCall)) for n in walk(q))


@dataclass(frozen=True)
class RewriteContext:
    """What a rule may consult: the typing context for effect queries."""

    ctx: TypeContext

    def effect(self, q: Query) -> Effect | None:
        """The Figure 3 effect of ``q``, or None if it does not check
        (rules must then decline)."""
        try:
            _, eff = EffectChecker().check(self.ctx, q)
        except IOQLTypeError:
            return None
        return eff

    def pure(self, q: Query) -> bool:
        """ε = ∅ — no reads, adds or updates."""
        eff = self.effect(q)
        return eff is not None and eff.is_empty()

    def write_free(self, q: Query) -> bool:
        """No A/U atoms (reads allowed — they cannot change outcomes)."""
        eff = self.effect(q)
        return eff is not None and not eff.writes()

    def discardable(self, q: Query) -> bool:
        """Safe to not evaluate at all: pure *and* termination-safe."""
        return self.pure(q) and termination_safe(q)

    def skippable(self, q: Query) -> bool:
        """Safe to evaluate fewer times: write-free and termination-safe."""
        return self.write_free(q) and termination_safe(q)

    def bind(self, var: str, q_source: Query) -> "RewriteContext":
        """Extend the typing context with a generator binding."""
        from repro.model.types import SetType

        try:
            from repro.typing.checker import check_query

            st = check_query(self.ctx, q_source)
        except IOQLTypeError:
            return self
        if isinstance(st, SetType):
            return RewriteContext(self.ctx.extend(var, st.elem))
        return self


@dataclass(frozen=True)
class Rule:
    """A named local rewrite: ``fn(rc, q)`` returns the replacement or None."""

    name: str
    fn: Callable[[RewriteContext, Query], Query | None]

    def apply(self, rc: RewriteContext, q: Query) -> Query | None:
        if not _OBS.enabled:
            return self.fn(rc, q)
        _METRICS.counter("rewrite_attempts_total", rule=self.name).inc()
        out = self.fn(rc, q)
        if out is not None and out != q:
            _METRICS.counter("rewrite_hits_total", rule=self.name).inc()
        return out


# ---------------------------------------------------------------------------
# always-safe folds
# ---------------------------------------------------------------------------


def _if_const_fold(rc: RewriteContext, q: Query) -> Query | None:
    if isinstance(q, If) and isinstance(q.cond, BoolLit):
        return q.then if q.cond.value else q.els
    return None


def _arith_fold(rc: RewriteContext, q: Query) -> Query | None:
    if isinstance(q, IntOp) and isinstance(q.left, IntLit) and isinstance(q.right, IntLit):
        l, r = q.left.value, q.right.value
        return IntLit(
            l + r if q.op is IntOpKind.ADD else l - r if q.op is IntOpKind.SUB else l * r
        )
    if isinstance(q, Cmp) and isinstance(q.left, IntLit) and isinstance(q.right, IntLit):
        l, r = q.left.value, q.right.value
        return BoolLit(
            {
                CmpKind.LT: l < r,
                CmpKind.LE: l <= r,
                CmpKind.GT: l > r,
                CmpKind.GE: l >= r,
            }[q.op]
        )
    if isinstance(q, PrimEq):
        kinds = (IntLit, BoolLit, StrLit)
        if isinstance(q.left, kinds) and isinstance(q.right, kinds) and type(q.left) is type(q.right):
            return BoolLit(q.left == q.right)
    if isinstance(q, Size) and isinstance(q.arg, SetLit):
        from repro.lang.values import is_value, make_set_value

        if all(is_value(i) for i in q.arg.items):
            return IntLit(len(make_set_value(q.arg.items).items))
    return None


# ---------------------------------------------------------------------------
# set-operator identities
# ---------------------------------------------------------------------------


def _empty_setop(rc: RewriteContext, q: Query) -> Query | None:
    if not isinstance(q, SetOp):
        return None
    from repro.lang.ast import SetOpKind

    empty = SetLit(())
    l_empty = q.left == empty
    r_empty = q.right == empty
    if q.op is SetOpKind.UNION:
        # ∪ with the pure value {} is the identity; both operands are
        # still in the term (the kept one), so no evaluation is skipped.
        if l_empty:
            return q.right
        if r_empty:
            return q.left
        return None
    if q.op is SetOpKind.INTERSECT:
        # {} ∩ q → {} discards q entirely: q must be discardable.
        if l_empty and rc.discardable(q.right):
            return empty
        if r_empty and rc.discardable(q.left):
            return empty
        return None
    # EXCEPT: q \ {} → q (nothing skipped); {} \ q → {} needs q discardable
    if r_empty:
        return q.left
    if l_empty and rc.discardable(q.right):
        return empty
    return None


# ---------------------------------------------------------------------------
# comprehension rules
# ---------------------------------------------------------------------------


def _qual_effects_ok(rc: RewriteContext, quals: tuple[Qualifier, ...]) -> bool:
    """May the evaluation of these qualifiers be skipped entirely?"""
    inner = rc
    for cq in quals:
        if isinstance(cq, Pred):
            if not inner.skippable(cq.cond):
                return False
        else:
            assert isinstance(cq, Gen)
            if not inner.skippable(cq.source):
                return False
            inner = inner.bind(cq.var, cq.source)
    return True


def _true_pred(rc: RewriteContext, q: Query) -> Query | None:
    if not isinstance(q, Comp):
        return None
    for i, cq in enumerate(q.qualifiers):
        if isinstance(cq, Pred) and cq.cond == BoolLit(True):
            return Comp(q.head, q.qualifiers[:i] + q.qualifiers[i + 1 :])
    return None


def _false_pred(rc: RewriteContext, q: Query) -> Query | None:
    if not isinstance(q, Comp):
        return None
    for i, cq in enumerate(q.qualifiers):
        if isinstance(cq, Pred) and cq.cond == BoolLit(False):
            if _qual_effects_ok(rc, q.qualifiers[:i]):
                return SetLit(())
    return None


def _empty_gen(rc: RewriteContext, q: Query) -> Query | None:
    if not isinstance(q, Comp):
        return None
    for i, cq in enumerate(q.qualifiers):
        if isinstance(cq, Gen) and cq.source == SetLit(()):
            if _qual_effects_ok(rc, q.qualifiers[:i]):
                return SetLit(())
    return None


def _pred_pushdown(rc: RewriteContext, q: Query) -> Query | None:
    """Move one pure predicate to the earliest position binding its vars."""
    if not isinstance(q, Comp):
        return None
    quals = q.qualifiers
    for i, cq in enumerate(quals):
        if not isinstance(cq, Pred):
            continue
        # the predicate itself will be evaluated more often: must be
        # pure and termination-safe
        inner = rc
        bound_at: list[frozenset[str]] = []  # vars bound before position j
        bound: frozenset[str] = frozenset()
        for prior in quals[:i]:
            bound_at.append(bound)
            if isinstance(prior, Gen):
                bound |= {prior.var}
                inner = inner.bind(prior.var, prior.source)
        bound_at.append(bound)
        if not inner.discardable(cq.cond):
            continue
        fv = free_vars(cq.cond)
        # earliest legal position
        target = i
        for j in range(i - 1, -1, -1):
            crossed = quals[j]
            if isinstance(crossed, Gen) and crossed.var in fv:
                break
            # crossed qualifier will be evaluated fewer times
            cr_inner_q = crossed.cond if isinstance(crossed, Pred) else crossed.source
            rc_j = rc
            for prior in quals[:j]:
                if isinstance(prior, Gen):
                    rc_j = rc_j.bind(prior.var, prior.source)
            if not rc_j.skippable(cr_inner_q):
                break
            target = j
        if target < i:
            new_quals = list(quals)
            del new_quals[i]
            new_quals.insert(target, cq)
            return Comp(q.head, tuple(new_quals))
    return None


def _unnest(rc: RewriteContext, q: Query) -> Query | None:
    """Flatten a generator over a nested comprehension (set monad law).

    ``{h | …, x ← {h′ | G⃗}, R⃗} → {h[x:=h′] | …, G⃗, R⃗[x:=h′]}``.

    Side conditions (see the module docstring's table):

    * ``h′`` must be discardable — it is duplicated into the head and
      every rest qualifier and re-evaluated per iteration;
    * the inner qualifiers ``G⃗`` and the rest ``R⃗`` (and the outer
      head) must be write-free and termination-safe: the rewrite
      interleaves their evaluation and runs ``R⃗`` once per inner
      *binding* rather than once per distinct inner *element* (sets
      deduplicate), which is observable only through writes or
      divergence.
    """
    if not isinstance(q, Comp):
        return None
    inner_rc = rc
    for i, cq in enumerate(q.qualifiers):
        if isinstance(cq, Gen) and isinstance(cq.source, Comp):
            inner = cq.source
            head_rc = inner_rc
            for icq in inner.qualifiers:
                if isinstance(icq, Gen):
                    head_rc = head_rc.bind(icq.var, icq.source)
            if (
                head_rc.discardable(inner.head)
                and _qual_effects_ok(inner_rc, inner.qualifiers)
                and _rest_write_free(inner_rc, cq, inner, q.qualifiers[i + 1 :], q.head)
            ):
                rest = tuple(
                    _subst_qual(r, cq.var, inner.head)
                    for r in q.qualifiers[i + 1 :]
                )
                new_head = subst(q.head, cq.var, inner.head)
                new_quals = q.qualifiers[:i] + inner.qualifiers + rest
                return Comp(new_head, new_quals)
        if isinstance(cq, Gen):
            inner_rc = inner_rc.bind(cq.var, cq.source)
    return None


def _rest_write_free(
    rc: RewriteContext,
    gen: Gen,
    inner: Comp,
    rest: tuple[Qualifier, ...],
    head: Query,
) -> bool:
    """Check R⃗ and the outer head are skippable under their bindings."""
    cur = rc.bind(gen.var, gen.source)
    for r in rest:
        sub = r.cond if isinstance(r, Pred) else r.source  # type: ignore[union-attr]
        if not cur.skippable(sub):
            return False
        if isinstance(r, Gen):
            cur = cur.bind(r.var, r.source)
    return cur.skippable(head)


def _subst_qual(cq: Qualifier, x: str, r: Query) -> Qualifier:
    if isinstance(cq, Pred):
        return Pred(subst(cq.cond, x, r))
    assert isinstance(cq, Gen)
    if cq.var == x:
        return cq
    return Gen(cq.var, subst(cq.source, x, r))


def _record_proj(rc: RewriteContext, q: Query) -> Query | None:
    if not isinstance(q, Field) or not isinstance(q.target, RecordLit):
        return None
    hit = q.target.field(q.name)
    if hit is None:
        return None
    others = [sub for l, sub in q.target.fields if l != q.name]
    if all(rc.discardable(o) for o in others):
        return hit
    return None


def _commute_setop(rc: RewriteContext, q: Query) -> Query | None:
    """Theorem 8's rewrite.  Not in the default pipeline — commuting is
    only *profitable* under a cost model; this rule asserts *legality*."""
    if not isinstance(q, SetOp) or not q.op.commutative:
        return None
    from repro.model.types import ListType
    from repro.typing.checker import check_query

    try:
        if isinstance(check_query(rc.ctx, q.left), ListType):
            return None  # list union = concatenation: never commutes
    except IOQLTypeError:
        return None
    le = rc.effect(q.left)
    re_ = rc.effect(q.right)
    if le is None or re_ is None or le.interferes_with(re_):
        return None
    return SetOp(q.op, q.right, q.left)


IF_CONST_FOLD = Rule("if-const-fold", _if_const_fold)
ARITH_FOLD = Rule("arith-fold", _arith_fold)
EMPTY_SETOP = Rule("empty-setop", _empty_setop)
TRUE_PRED = Rule("true-pred", _true_pred)
FALSE_PRED = Rule("false-pred", _false_pred)
EMPTY_GEN = Rule("empty-gen", _empty_gen)
PRED_PUSHDOWN = Rule("pred-pushdown", _pred_pushdown)
UNNEST = Rule("unnest", _unnest)
RECORD_PROJ = Rule("record-proj", _record_proj)
COMMUTE_SETOP = Rule("commute-setop", _commute_setop)

DEFAULT_RULES: tuple[Rule, ...] = (
    IF_CONST_FOLD,
    ARITH_FOLD,
    EMPTY_SETOP,
    TRUE_PRED,
    FALSE_PRED,
    EMPTY_GEN,
    RECORD_PROJ,
    UNNEST,
    PRED_PUSHDOWN,
)
"""The normalisation pipeline (everything except explicit commutation)."""
