"""Effect-gated query rewriting (§4's application) and equivalence testing."""

from repro.optimizer.contextual import contextually_distinct
from repro.optimizer.cost import CostModel, make_reorder_rule, optimize_with_costs
from repro.optimizer.equivalence import observationally_equal
from repro.optimizer.planner import (
    OptimizationResult, Planner, explain_commutation, optimize, try_commute,
)
from repro.optimizer.rules import DEFAULT_RULES, RewriteContext, Rule

__all__ = [
    "CostModel", "DEFAULT_RULES", "OptimizationResult", "Planner",
    "RewriteContext", "make_reorder_rule", "optimize_with_costs",
    "Rule", "contextually_distinct", "explain_commutation",
    "observationally_equal", "optimize",
    "try_commute",
]
