"""One-stop convenience functions over the whole library.

These are thin compositions of the real modules, for scripts and docs::

    import repro

    db = repro.open_database(ODL_TEXT)
    print(repro.typecheck(db, "{ p.name | p <- Persons }"))
    print(repro.effects(db, "new Person(name: \\"x\\")"))
    print(repro.run(db, "{ p.name | p <- Persons }").python())

Anything beyond a quick call should use :class:`repro.db.Database` and
the analysis modules directly.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.effects.algebra import Effect
from repro.lang.ast import Query
from repro.methods.ast import AccessMode
from repro.model.types import Type
from repro.resilience.budget import Budget
from repro.resilience.retry import RetryPolicy
from repro.resilience.transactions import Transaction
from repro.semantics.evaluator import EvalResult
from repro.semantics.explorer import Exploration
from repro.semantics.strategy import FIRST, Strategy


def open_database(
    odl: str, *, effectful_methods: bool = False, method_fuel: int = 10_000
) -> Database:
    """Parse ODL class definitions and return a fresh database."""
    mode = AccessMode.EFFECTFUL if effectful_methods else AccessMode.READ_ONLY
    return Database.from_odl(odl, method_mode=mode, method_fuel=method_fuel)


def typecheck(db: Database, query: str | Query) -> Type:
    """Figure 1: the query's type (raises IOQLTypeError if ill-typed)."""
    return db.typecheck(query)


def effects(db: Database, query: str | Query) -> Effect:
    """Figure 3: the query's inferred effect ε."""
    return db.effect_of(query)


def run(
    db: Database,
    query: str | Query,
    *,
    strategy: Strategy = FIRST,
    budget: Budget | None = None,
    atomic: bool = False,
    retry: RetryPolicy | None = None,
) -> EvalResult:
    """Evaluate under one strategy and commit the resulting database.

    ``budget``/``atomic``/``retry`` are the resilience knobs of
    :meth:`repro.db.Database.run` (see ``docs/ROBUSTNESS.md``).
    """
    return db.run(
        query, strategy=strategy, budget=budget, atomic=atomic, retry=retry
    )


def transaction(db: Database) -> Transaction:
    """An all-or-nothing scope over several statements::

        with repro.transaction(db):
            repro.run(db, 'new Person(name: "Ada", age: 36)')
            repro.run(db, other_statement)   # failure rolls both back
    """
    return db.transaction()


def explore(db: Database, query: str | Query) -> Exploration:
    """Enumerate every reduction order (without committing anything)."""
    return db.explore(query)


def is_deterministic(db: Database, query: str | Query) -> bool:
    """⊢′ (Theorem 7): is the query statically guaranteed deterministic?"""
    return db.is_deterministic(query)


def optimize(db: Database, query: str | Query) -> Query:
    """The effect-gated rewriting pipeline; returns the rewritten query."""
    return db.optimize(query)


class _InstrumentToggle:
    """Returned by :func:`instrument`; context-manager use restores the
    previous on/off state on exit."""

    __slots__ = ("_prev",)

    def __init__(self, prev: bool):
        self._prev = prev

    def __enter__(self) -> "_InstrumentToggle":
        return self

    def __exit__(self, *exc: object) -> bool:
        from repro import obs

        if self._prev:
            obs.enable()
        else:
            obs.disable()
        return False


def instrument(on: bool = True) -> _InstrumentToggle:
    """Toggle pipeline observability (:mod:`repro.obs`) process-wide.

    Plain call::

        repro.instrument()        # on
        repro.instrument(False)   # off

    or scoped, restoring the previous state afterwards::

        with repro.instrument():
            db.run(q)
            repro.obs.export.export_jsonl("run.jsonl")
    """
    from repro import obs

    prev = obs.enabled()
    if on:
        obs.enable()
    else:
        obs.disable()
    return _InstrumentToggle(prev)
