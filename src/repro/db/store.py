"""The runtime environments of §3.3 — "essentially the heart of the database!".

* :class:`ExtentEnv` (EE) maps an extent identifier to a pair of the
  class name and the set of oids currently in that extent;
* :class:`ObjectEnv` (OE) maps an oid to the runtime representation of
  the object, written ⟪C, a₁:v₁, …, aₖ:vₖ⟫ in the paper
  (:class:`ObjectRecord` here);
* :class:`OidSupply` generates fresh oids for the (New) rule.

Both environments are **immutable**: every update returns a new
environment sharing structure with the old one.  This is what lets the
explorer fork a configuration down every non-deterministic branch, and
the metatheory harness snapshot/restore configurations, without copying
the whole database.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import EvalError
from repro.lang.ast import OidRef, Query
from repro.lang.values import is_value
from repro.model.schema import Schema

_np = None
_np_checked = False


def _numpy():
    """numpy, imported lazily on the first large closure query.

    The store module loads on every import of the package; deferring
    the (slow, optional) numpy import to the first vectorised interval
    stab keeps startup unchanged and lets the index degrade to the
    parent-walk strategy when numpy is absent.
    """
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy

            _np = numpy
        except Exception:
            _np = None
    return _np


@dataclass(frozen=True)
class ObjectRecord:
    """The paper's ⟪C, a₁:v₁, …, aₖ:vₖ⟫ — one object's class and state."""

    cname: str
    attrs: tuple[tuple[str, Query], ...]

    def __post_init__(self) -> None:
        for a, v in self.attrs:
            if not is_value(v):
                raise EvalError(
                    f"object attribute {a!r} holds a non-value {v!r}"
                )

    def attr(self, name: str) -> Query:
        for a, v in self.attrs:
            if a == name:
                return v
        raise EvalError(f"object of class {self.cname!r} has no attribute {name!r}")

    def with_attr(self, name: str, value: Query) -> "ObjectRecord":
        """A copy with one attribute replaced (§5 update support)."""
        if not any(a == name for a, _ in self.attrs):
            raise EvalError(
                f"object of class {self.cname!r} has no attribute {name!r}"
            )
        return ObjectRecord(
            self.cname,
            tuple((a, value if a == name else v) for a, v in self.attrs),
        )

    def __str__(self) -> str:
        inner = ", ".join(f"{a}: {v}" for a, v in self.attrs)
        return f"⟪{self.cname}, {inner}⟫"


class ObjectEnv:
    """OE: oid → :class:`ObjectRecord`, persistent/immutable.

    Updates build exactly one new dict (the private :meth:`_adopt`
    constructor takes ownership instead of defensively re-copying) and
    the structural hash is computed at most once per environment —
    equality/hash semantics are unchanged.
    """

    __slots__ = ("_objects", "_hash")

    def __init__(self, objects: Mapping[str, ObjectRecord] | None = None):
        self._objects: dict[str, ObjectRecord] = dict(objects or {})
        self._hash: int | None = None

    @classmethod
    def _adopt(cls, objects: dict[str, ObjectRecord]) -> "ObjectEnv":
        """Wrap an already-private dict without copying it again."""
        env = object.__new__(cls)
        env._objects = objects
        env._hash = None
        return env

    def get(self, oid: str) -> ObjectRecord:
        try:
            return self._objects[oid]
        except KeyError:
            raise EvalError(f"dangling oid {oid!r}") from None

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def oids(self) -> frozenset[str]:
        return frozenset(self._objects)

    def items(self) -> Iterator[tuple[str, ObjectRecord]]:
        return iter(sorted(self._objects.items()))

    def with_object(self, oid: str, rec: ObjectRecord) -> "ObjectEnv":
        """OE[o ↦ ⟪…⟫] — add (or in §5 mode, replace) one object."""
        new = dict(self._objects)
        new[oid] = rec
        return ObjectEnv._adopt(new)

    def with_objects(self, objects: Mapping[str, ObjectRecord]) -> "ObjectEnv":
        """OE with a batch of objects added in one copy.

        The per-shard commit path merges a whole commit's fresh objects
        into the *current* environment; doing it object-by-object would
        copy the dict once per object.
        """
        if not objects:
            return self
        new = dict(self._objects)
        new.update(objects)
        return ObjectEnv._adopt(new)

    def without_objects(self, oids: Iterable[str]) -> "ObjectEnv":
        """OE with the given oids removed (transaction rollback of (New)).

        Missing oids are ignored — rollback is idempotent.
        """
        doomed = set(oids)
        if not doomed:
            return self
        return ObjectEnv._adopt(
            {o: r for o, r in self._objects.items() if o not in doomed}
        )

    def class_of(self, oid: str) -> str:
        return self.get(oid).cname

    def __len__(self) -> int:
        return len(self._objects)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectEnv) and self._objects == other._objects

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(frozenset(self._objects.items()))
        return h

    def __repr__(self) -> str:
        return f"ObjectEnv({len(self._objects)} objects)"


class ExtentEnv:
    """EE: extent name → (class name, frozenset of oids), immutable.

    Same copy-on-write discipline as :class:`ObjectEnv`: one dict copy
    per update, hash cached; equality/hash semantics unchanged.
    """

    __slots__ = ("_extents", "_hash")

    def __init__(self, extents: Mapping[str, tuple[str, frozenset[str]]] | None = None):
        self._extents: dict[str, tuple[str, frozenset[str]]] = dict(extents or {})
        self._hash: int | None = None

    @classmethod
    def _adopt(cls, extents: dict[str, tuple[str, frozenset[str]]]) -> "ExtentEnv":
        """Wrap an already-private dict without copying it again."""
        env = object.__new__(cls)
        env._extents = extents
        env._hash = None
        return env

    @staticmethod
    def for_schema(schema: Schema) -> "ExtentEnv":
        """Empty extents for every class of ``schema``."""
        return ExtentEnv(
            {e: (c, frozenset()) for e, c in schema.extents.items()}
        )

    def get(self, extent: str) -> tuple[str, frozenset[str]]:
        try:
            return self._extents[extent]
        except KeyError:
            raise EvalError(f"unknown extent {extent!r}") from None

    def members(self, extent: str) -> frozenset[str]:
        return self.get(extent)[1]

    def class_of(self, extent: str) -> str:
        return self.get(extent)[0]

    def __contains__(self, extent: str) -> bool:
        return extent in self._extents

    def names(self) -> frozenset[str]:
        return frozenset(self._extents)

    def items(self) -> Iterator[tuple[str, tuple[str, frozenset[str]]]]:
        return iter(sorted(self._extents.items()))

    def with_member(self, extent: str, oid: str) -> "ExtentEnv":
        """EE[e ↦ (C, v ∪ {o})] — the (New) rule's extent update."""
        cname, members = self.get(extent)
        new = dict(self._extents)
        new[extent] = (cname, members | {oid})
        return ExtentEnv._adopt(new)

    def with_members(self, extent: str, members: frozenset[str]) -> "ExtentEnv":
        """EE[e ↦ (C, v)] — reset one extent's membership wholesale.

        Used by transaction rollback to restore exactly the extents a
        failed query's effect says it could have grown.
        """
        cname, _ = self.get(extent)
        new = dict(self._extents)
        new[extent] = (cname, frozenset(members))
        return ExtentEnv._adopt(new)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExtentEnv) and self._extents == other._extents

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(frozenset(self._extents.items()))
        return h

    def __repr__(self) -> str:
        sizes = {e: len(v) for e, (_, v) in sorted(self._extents.items())}
        return f"ExtentEnv({sizes})"


class AttributeIndexes:
    """Per-(extent, attribute) hash indexes over the current EE/OE.

    Built lazily the first time a compiled hash join asks for one, and
    validated against the database's store version: an index built at
    version ``v`` answers only while the store is still at ``v``.
    Committed writes with a known effect *promote* unaffected indexes
    to the new version (an ``A(C)`` write can only change the extent of
    ``C`` — extents are per-class); ``U`` atoms rewrite attribute
    values, so every index is dropped.  Unattributed state changes
    (restore, persistence load, rollback) advance the version without a
    promotion, lazily invalidating everything — the safe default.
    """

    def __init__(self):
        self._indexes: dict[
            tuple[str, str], tuple[int, dict[Query, tuple[OidRef, ...]]]
        ] = {}
        # sharded extents build the index as per-shard partials so a
        # per-shard commit only rebuilds the touched shards' pieces:
        # key -> (parts tuple, [partial per shard], merged index).
        # Validity is object *identity* on the partition frozensets —
        # every partition rebuild makes fresh frozensets, and an A-only
        # install reuses only untouched shards, whose member records an
        # A-only commit cannot have changed.
        self._sharded: dict[
            tuple[str, str],
            tuple[tuple, list, dict[Query, tuple[OidRef, ...]]],
        ] = {}
        # concurrent scheduled readers share the index table; a build
        # and a promotion must not interleave on the same key
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)

    def get(
        self,
        ee: "ExtentEnv",
        oe: "ObjectEnv",
        version: int,
        extent: str,
        attr: str,
        shards=None,
    ) -> dict[Query, tuple[OidRef, ...]]:
        """The index for ``extent`` keyed by ``attr`` at ``version``."""
        key = (extent, attr)
        if shards is not None:
            parts = shards.partition(extent, ee, oe, version)
            if parts is not None:
                return self._get_sharded(key, parts, oe, attr)
        with self._lock:
            hit = self._indexes.get(key)
            if hit is not None and hit[0] == version:
                return hit[1]
            from repro.exec.runtime import build_attr_index

            idx = build_attr_index(oe, ee.members(extent), attr)
            self._indexes[key] = (version, idx)
            return idx

    def get_shard(
        self,
        ee: "ExtentEnv",
        oe: "ObjectEnv",
        version: int,
        extent: str,
        attr: str,
        shard: int,
        shards,
    ) -> dict[Query, tuple[OidRef, ...]] | None:
        """One shard's index partial alone (a shard-pruned probe).

        Builds (and caches) only the requested shard's partial, so a
        probe whose key hashes to shard *s* never pays for the other
        shards' index maintenance.  ``None`` when the extent is not
        sharded under the live layout — the caller falls back to the
        full index.
        """
        parts = shards.partition(extent, ee, oe, version)
        if parts is None:
            return None
        return self._get_sharded((extent, attr), parts, oe, attr, shard=shard)

    def _get_sharded(
        self,
        key: tuple[str, str],
        parts: tuple,
        oe: "ObjectEnv",
        attr: str,
        shard: int | None = None,
    ) -> dict[Query, tuple[OidRef, ...]]:
        """Per-shard partials, rebuilt lazily and only when stale.

        ``shard=None`` returns the merged full index (building every
        missing partial); a specific ``shard`` returns just that
        partial.  ``merged`` is built from the partials of the *same*
        parts tuple, so it can never be stale while the identity check
        holds; it is dropped (set to ``None``) whenever the parts
        change.
        """
        from repro.exec.runtime import build_attr_index

        with self._lock:
            hit = self._sharded.get(key)
            if hit is not None and hit[0] is parts:
                _, partials, merged = hit
            else:
                old_parts = hit[0] if hit is not None else ()
                old_partials = hit[1] if hit is not None else []
                partials = [
                    old_partials[i]
                    if i < len(old_parts) and old_parts[i] is part
                    else None
                    for i, part in enumerate(parts)
                ]
                merged = None
            if shard is not None:
                if partials[shard] is None:
                    partials[shard] = build_attr_index(
                        oe, parts[shard], attr
                    )
                self._sharded[key] = (parts, partials, merged)
                return partials[shard]
            for i, part in enumerate(parts):
                if partials[i] is None:
                    partials[i] = build_attr_index(oe, part, attr)
            if merged is None:
                merged = {}
                for partial in partials:
                    for value, refs in partial.items():
                        have = merged.get(value)
                        merged[value] = (
                            refs if have is None else have + refs
                        )
            self._sharded[key] = (parts, partials, merged)
            return merged

    def note_write(self, schema: Schema, effect, pre: int, post: int) -> None:
        """Effect-guided maintenance after a committed write."""
        with self._lock:
            if effect.updates():
                self._indexes.clear()
                self._sharded.clear()
                return
            touched = set()
            for cname in effect.adds():
                try:
                    touched.add(schema.class_extent(cname))
                except Exception:
                    continue  # extent-less class: no index to invalidate
            if not touched:
                return
            for key in list(self._indexes):
                version, idx = self._indexes[key]
                if key[0] in touched:
                    del self._indexes[key]
                elif version == pre:
                    self._indexes[key] = (post, idx)

    def clear(self) -> None:
        with self._lock:
            self._indexes.clear()
            self._sharded.clear()

    def snapshot(self) -> dict[str, int]:
        """``{"Extent.attr": built_at_version}`` for every live index."""
        with self._lock:
            return {
                f"{extent}.{attr}": version
                for (extent, attr), (version, _) in sorted(
                    self._indexes.items()
                )
            }


class ClosureIndex:
    """Interval (pre/post-order) encoding of one attribute's reference forest.

    Covers every object of one reachable-closure ``classes`` cone; the
    attribute is single-valued, so the reference graph is *functional*
    (out-degree ≤ 1) and its reverse is a forest whenever the graph is
    acyclic.  A DFS over that reverse forest assigns each node a
    ``[pre, post)`` interval with the standard nesting property:

        y is forward-reachable from x  ⇔  pre(y) ≤ pre(x) < post(y)

    so the unbounded closure of a start set is pure integer work — no
    store access, no per-node record decoding — reusable across queries
    until a covered class is written (Theorem 5 discipline in
    :class:`ClosureIndexes`).  Two answer strategies share the
    numbering: small start sets walk the ``parent`` position array
    (O(|closure|), optimal for ancestor queries from a few objects),
    large ones stab every interval with two vectorised ``searchsorted``
    passes when numpy is importable (falling back to the walk when it
    is not).  Pre-numbers are assigned in DFS visitation order, so
    ``pre(order[i]) == i``: a pre-number doubles as the node's position
    in ``order``/``posts``/``parent``.

    ``cyclic`` / ``usable`` are fallback markers: a cycle breaks the
    forest property and a link leaving the indexed node set (dangling
    oid, schema-escaping store) breaks coverage — either way the RED
    route must fall back to the semi-naive chase, which also surfaces
    the dangling-oid error with the machine's exact message.
    """

    __slots__ = (
        "attr", "classes", "cyclic", "usable",
        "pre", "pres", "posts", "order", "parent",
        "_np_arrays", "_extent_stabs",
    )

    def __init__(
        self,
        attr: str,
        classes: frozenset[str],
        *,
        cyclic: bool = False,
        usable: bool = True,
        pre: dict[str, int] | None = None,
        pres: list[int] | None = None,
        posts: list[int] | None = None,
        order: list[str] | None = None,
        parent: list[int] | None = None,
    ):
        self.attr = attr
        self.classes = classes
        self.cyclic = cyclic
        self.usable = usable
        self.pre = pre or {}
        self.pres = pres or []
        self.posts = posts or []
        self.order = order or []
        self.parent = parent or []
        self._np_arrays = None
        self._extent_stabs: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self.order)

    def _arrays(self, np):
        arrays = self._np_arrays
        if arrays is None:
            arrays = (
                np.arange(len(self.order), dtype=np.int64),
                np.asarray(self.posts, dtype=np.int64),
                np.asarray(self.order, dtype=object),
            )
            self._np_arrays = arrays
        return arrays

    def _stab(self, np, stabs) -> frozenset[str]:
        """All nodes whose ``[pre, post)`` interval contains a stab."""
        pres_a, posts_a, order_a = self._arrays(np)
        # a node i is hit iff some stab lands in [i, posts[i])
        lo = np.searchsorted(stabs, pres_a, side="left")
        hi = np.searchsorted(stabs, posts_a, side="left")
        return frozenset(order_a[hi > lo].tolist())

    def closure_of_extent(self, ee, extent: str) -> frozenset[str] | None:
        """The closure of a whole extent, memoized on the index.

        The Theorem 5 discipline guarantees a cone extent's membership
        cannot change while this index lives (any ``A``/``U`` touching
        a cone class evicts it), so both the member stab array and the
        final closure answer are computed once per (index, extent) and
        reused verbatim by every later query: repeated extent-sourced
        traversals are a dictionary hit, with the vectorised interval
        stab paid only on the first ask.
        """
        if self.cyclic or not self.usable:
            return None
        cached = self._extent_stabs.get(extent)
        if cached is not None:
            return cached
        np = _numpy()
        if np is None:
            return None  # the generic path walks parents instead
        pre = self.pre
        positions = []
        for oid in ee.members(extent):
            p = pre.get(oid)
            if p is None:
                return None  # extent escapes the indexed cone
            positions.append(p)
        result = self._stab(np, np.asarray(sorted(positions), dtype=np.int64))
        self._extent_stabs[extent] = result
        return result

    def closure_of(self, start: Iterable[str]) -> frozenset[str] | None:
        """The unbounded reachable set of ``start``, or None on fallback."""
        if self.cyclic or not self.usable:
            return None
        pre = self.pre
        stabs: list[int] = []
        for oid in start:
            p = pre.get(oid)
            if p is None:
                return None  # a start object outside the indexed cone
            stabs.append(p)
        order = self.order
        n = len(order)
        np = _numpy() if len(stabs) * 16 > n else None
        if np is not None:
            return self._stab(
                np, np.asarray(sorted(set(stabs)), dtype=np.int64)
            )
        # small start set: walk parent positions — O(|closure|)
        parent = self.parent
        seen: set[int] = set()
        add = seen.add
        for i in stabs:
            while i >= 0 and i not in seen:
                add(i)
                i = parent[i]
        return frozenset(order[i] for i in seen)


def build_closure_index(
    schema: Schema,
    ee: "ExtentEnv",
    oe: "ObjectEnv",
    attr: str,
    classes: frozenset[str],
) -> ClosureIndex:
    """DFS-number the reverse reference forest of ``attr`` over ``classes``."""

    def target_of(rec: ObjectRecord) -> str | None:
        for a, v in rec.attrs:
            if a == attr:
                return v.name if isinstance(v, OidRef) else None
        return None

    nodes: dict[str, str | None] = {}  # oid -> parent oid (its attr target)
    for cname in sorted(classes):
        try:
            extent = schema.class_extent(cname)
        except Exception:
            continue
        for oid in ee.members(extent):
            nodes[oid] = target_of(oe.get(oid))

    children: dict[str, list[str]] = {}
    roots: list[str] = []
    for oid in sorted(nodes):
        parent = nodes[oid]
        if parent is None:
            roots.append(oid)
        elif parent not in nodes:
            # the chain leaves the cone: dangling oid or a store that
            # escaped the declared schema — the chase must handle it
            return ClosureIndex(attr, classes, usable=False)
        else:
            children.setdefault(parent, []).append(oid)

    pre: dict[str, int] = {}
    pres: list[int] = []
    posts: list[int] = []
    order: list[str] = []
    counter = 0
    for root in roots:
        # iterative DFS: (oid, enter?) — post-numbers patch on exit
        stack: list[tuple[str, bool]] = [(root, True)]
        slot: dict[str, int] = {}
        while stack:
            oid, enter = stack.pop()
            if enter:
                slot[oid] = len(order)
                pre[oid] = counter
                pres.append(counter)
                posts.append(-1)
                order.append(oid)
                counter += 1
                stack.append((oid, False))
                for child in reversed(children.get(oid, ())):
                    stack.append((child, True))
            else:
                posts[slot[oid]] = counter
    if len(order) != len(nodes):
        # some node was never reached from a root: the functional graph
        # contains a cycle — mark it and let the chase converge instead
        return ClosureIndex(attr, classes, cyclic=True)
    parent = [
        pre[target] if (target := nodes[oid]) is not None else -1
        for oid in order
    ]
    return ClosureIndex(
        attr, classes, pre=pre, pres=pres, posts=posts, order=order,
        parent=parent,
    )


class ClosureIndexes:
    """Persistent interval indexes for unbounded ``traverse`` (RED route).

    Same discipline as :class:`AttributeIndexes`, but the invalidation
    granularity is the *reachable-closure cone* an index covers, not a
    single extent: an ``A(C)`` commit drops exactly the indexes whose
    cone contains ``C`` (a new ``C`` object joins their node set) and
    promotes every other index to the new version; ``U`` atoms rewrite
    reference values anywhere, so everything drops — the Theorem 5
    bound, verbatim.  Sharded stores additionally pin each index to the
    partition identities it was built over, so a per-shard install or a
    re-declared layout forces a rebuild per (class, shard) generation.
    """

    def __init__(self):
        self._indexes: dict[
            tuple[str, frozenset[str]], tuple[int, tuple | None, ClosureIndex]
        ] = {}
        self.rebuilds = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)

    def _parts_sig(
        self, schema: Schema, ee, oe, version: int, classes: frozenset[str], shards
    ) -> tuple | None:
        if shards is None:
            return None
        sig = []
        for cname in sorted(classes):
            try:
                extent = schema.class_extent(cname)
            except Exception:
                continue
            parts = shards.partition(extent, ee, oe, version)
            if parts is not None:
                sig.append((extent, parts))
        return tuple(sig) or None

    def get(
        self,
        schema: Schema,
        ee: "ExtentEnv",
        oe: "ObjectEnv",
        version: int,
        attr: str,
        classes: frozenset[str],
        shards=None,
    ) -> ClosureIndex:
        """The interval index for ``attr`` over ``classes`` at ``version``."""
        key = (attr, classes)
        sig = self._parts_sig(schema, ee, oe, version, classes, shards)
        with self._lock:
            hit = self._indexes.get(key)
            if hit is not None and hit[0] == version and _same_parts(hit[1], sig):
                return hit[2]
            idx = build_closure_index(schema, ee, oe, attr, classes)
            self._indexes[key] = (version, sig, idx)
            self.rebuilds += 1
            return idx

    def note_write(self, schema: Schema, effect, pre: int, post: int) -> None:
        """Theorem 5 maintenance: evict by cone membership, else promote."""
        with self._lock:
            if effect.updates():
                self._indexes.clear()
                return
            writes = effect.writes()
            for key in list(self._indexes):
                version, sig, idx = self._indexes[key]
                if writes & idx.classes:
                    del self._indexes[key]
                elif version == pre:
                    self._indexes[key] = (post, sig, idx)

    def clear(self) -> None:
        with self._lock:
            self._indexes.clear()

    def snapshot(self) -> dict[str, dict]:
        """``{"attr over {classes}": {...}}`` for the health surface."""
        with self._lock:
            out: dict[str, dict] = {}
            for (attr, classes), (version, _sig, idx) in sorted(
                self._indexes.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))
            ):
                label = f"{attr} over {{{', '.join(sorted(classes))}}}"
                out[label] = {
                    "version": version,
                    "nodes": len(idx),
                    "cyclic": idx.cyclic,
                    "usable": idx.usable,
                }
            return out


def _same_parts(a: tuple | None, b: tuple | None) -> bool:
    """Partition signatures match by *identity* of each parts tuple."""
    if a is None or b is None:
        return a is b
    if len(a) != len(b):
        return False
    return all(ea == eb and pa is pb for (ea, pa), (eb, pb) in zip(a, b))


class OidSupply:
    """Fresh-oid generator: ``o ∉ dom(OE)`` of the (New) rule.

    Oids are strings ``@C_n``.  The supply is the one *mutable* piece of
    the runtime — freshness is global by construction, which is exactly
    what the paper's side condition requires.  Forked explorations may
    share a supply safely: sharing only makes oids "fresher than
    necessary", which the bijection ∼ absorbs.

    The counter is observable (:meth:`state`) and monotonically
    restorable (:meth:`advance_to`) so the durability layer can persist
    it: a recovered database must never re-issue an oid that a logged
    commit already spent.  Like transaction rollback, recovery only ever
    moves the counter *forward* — a rewound supply could collide with a
    surviving object, while an over-advanced one merely yields oids
    "fresher than necessary", which ∼ absorbs.
    """

    def __init__(self, start: int = 0):
        self._next = start
        self._lock = threading.Lock()

    def fresh(self, cname: str, oe: ObjectEnv) -> str:
        """A fresh oid for a new ``cname`` object, not in ``oe``."""
        with self._lock:
            while True:
                n = self._next
                self._next += 1
                oid = f"@{cname}_{n}"
                if oid not in oe:
                    return oid

    def state(self) -> int:
        """The next counter value this supply would consider."""
        with self._lock:
            return self._next

    def advance_to(self, n: int) -> None:
        """Ensure the counter is at least ``n`` (never rewinds)."""
        with self._lock:
            if n > self._next:
                self._next = n


def column_values(
    oe: ObjectEnv, members: Iterable[str], attr: str
) -> Iterator[Query]:
    """Yield ``attr``'s value for each member oid — one column's data.

    The single scan primitive shared by the statistics catalog's column
    builds and incremental folds (:mod:`repro.db.statistics`): callers
    see values in membership-iteration order and never touch the
    records themselves.
    """
    for oid in members:
        yield oe.get(oid).attr(attr)


def populate(
    schema: Schema,
    ee: ExtentEnv,
    oe: ObjectEnv,
    supply: OidSupply,
    cname: str,
    attrs: Iterable[tuple[str, Query]],
) -> tuple[ExtentEnv, ObjectEnv, OidRef]:
    """Insert one object directly (test/bootstrap helper, not a reduction).

    Performs the same EE/OE updates as the (New) rule — the object joins
    the extent of its class — but without going through the machine.
    """
    oid = supply.fresh(cname, oe)
    rec = ObjectRecord(cname, tuple(attrs))
    extent = schema.class_extent(cname)
    return ee.with_member(extent, oid), oe.with_object(oid, rec), OidRef(oid)
