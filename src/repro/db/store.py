"""The runtime environments of §3.3 — "essentially the heart of the database!".

* :class:`ExtentEnv` (EE) maps an extent identifier to a pair of the
  class name and the set of oids currently in that extent;
* :class:`ObjectEnv` (OE) maps an oid to the runtime representation of
  the object, written ⟪C, a₁:v₁, …, aₖ:vₖ⟫ in the paper
  (:class:`ObjectRecord` here);
* :class:`OidSupply` generates fresh oids for the (New) rule.

Both environments are **immutable**: every update returns a new
environment sharing structure with the old one.  This is what lets the
explorer fork a configuration down every non-deterministic branch, and
the metatheory harness snapshot/restore configurations, without copying
the whole database.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import EvalError
from repro.lang.ast import OidRef, Query
from repro.lang.values import is_value
from repro.model.schema import Schema


@dataclass(frozen=True)
class ObjectRecord:
    """The paper's ⟪C, a₁:v₁, …, aₖ:vₖ⟫ — one object's class and state."""

    cname: str
    attrs: tuple[tuple[str, Query], ...]

    def __post_init__(self) -> None:
        for a, v in self.attrs:
            if not is_value(v):
                raise EvalError(
                    f"object attribute {a!r} holds a non-value {v!r}"
                )

    def attr(self, name: str) -> Query:
        for a, v in self.attrs:
            if a == name:
                return v
        raise EvalError(f"object of class {self.cname!r} has no attribute {name!r}")

    def with_attr(self, name: str, value: Query) -> "ObjectRecord":
        """A copy with one attribute replaced (§5 update support)."""
        if not any(a == name for a, _ in self.attrs):
            raise EvalError(
                f"object of class {self.cname!r} has no attribute {name!r}"
            )
        return ObjectRecord(
            self.cname,
            tuple((a, value if a == name else v) for a, v in self.attrs),
        )

    def __str__(self) -> str:
        inner = ", ".join(f"{a}: {v}" for a, v in self.attrs)
        return f"⟪{self.cname}, {inner}⟫"


class ObjectEnv:
    """OE: oid → :class:`ObjectRecord`, persistent/immutable.

    Updates build exactly one new dict (the private :meth:`_adopt`
    constructor takes ownership instead of defensively re-copying) and
    the structural hash is computed at most once per environment —
    equality/hash semantics are unchanged.
    """

    __slots__ = ("_objects", "_hash")

    def __init__(self, objects: Mapping[str, ObjectRecord] | None = None):
        self._objects: dict[str, ObjectRecord] = dict(objects or {})
        self._hash: int | None = None

    @classmethod
    def _adopt(cls, objects: dict[str, ObjectRecord]) -> "ObjectEnv":
        """Wrap an already-private dict without copying it again."""
        env = object.__new__(cls)
        env._objects = objects
        env._hash = None
        return env

    def get(self, oid: str) -> ObjectRecord:
        try:
            return self._objects[oid]
        except KeyError:
            raise EvalError(f"dangling oid {oid!r}") from None

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def oids(self) -> frozenset[str]:
        return frozenset(self._objects)

    def items(self) -> Iterator[tuple[str, ObjectRecord]]:
        return iter(sorted(self._objects.items()))

    def with_object(self, oid: str, rec: ObjectRecord) -> "ObjectEnv":
        """OE[o ↦ ⟪…⟫] — add (or in §5 mode, replace) one object."""
        new = dict(self._objects)
        new[oid] = rec
        return ObjectEnv._adopt(new)

    def with_objects(self, objects: Mapping[str, ObjectRecord]) -> "ObjectEnv":
        """OE with a batch of objects added in one copy.

        The per-shard commit path merges a whole commit's fresh objects
        into the *current* environment; doing it object-by-object would
        copy the dict once per object.
        """
        if not objects:
            return self
        new = dict(self._objects)
        new.update(objects)
        return ObjectEnv._adopt(new)

    def without_objects(self, oids: Iterable[str]) -> "ObjectEnv":
        """OE with the given oids removed (transaction rollback of (New)).

        Missing oids are ignored — rollback is idempotent.
        """
        doomed = set(oids)
        if not doomed:
            return self
        return ObjectEnv._adopt(
            {o: r for o, r in self._objects.items() if o not in doomed}
        )

    def class_of(self, oid: str) -> str:
        return self.get(oid).cname

    def __len__(self) -> int:
        return len(self._objects)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectEnv) and self._objects == other._objects

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(frozenset(self._objects.items()))
        return h

    def __repr__(self) -> str:
        return f"ObjectEnv({len(self._objects)} objects)"


class ExtentEnv:
    """EE: extent name → (class name, frozenset of oids), immutable.

    Same copy-on-write discipline as :class:`ObjectEnv`: one dict copy
    per update, hash cached; equality/hash semantics unchanged.
    """

    __slots__ = ("_extents", "_hash")

    def __init__(self, extents: Mapping[str, tuple[str, frozenset[str]]] | None = None):
        self._extents: dict[str, tuple[str, frozenset[str]]] = dict(extents or {})
        self._hash: int | None = None

    @classmethod
    def _adopt(cls, extents: dict[str, tuple[str, frozenset[str]]]) -> "ExtentEnv":
        """Wrap an already-private dict without copying it again."""
        env = object.__new__(cls)
        env._extents = extents
        env._hash = None
        return env

    @staticmethod
    def for_schema(schema: Schema) -> "ExtentEnv":
        """Empty extents for every class of ``schema``."""
        return ExtentEnv(
            {e: (c, frozenset()) for e, c in schema.extents.items()}
        )

    def get(self, extent: str) -> tuple[str, frozenset[str]]:
        try:
            return self._extents[extent]
        except KeyError:
            raise EvalError(f"unknown extent {extent!r}") from None

    def members(self, extent: str) -> frozenset[str]:
        return self.get(extent)[1]

    def class_of(self, extent: str) -> str:
        return self.get(extent)[0]

    def __contains__(self, extent: str) -> bool:
        return extent in self._extents

    def names(self) -> frozenset[str]:
        return frozenset(self._extents)

    def items(self) -> Iterator[tuple[str, tuple[str, frozenset[str]]]]:
        return iter(sorted(self._extents.items()))

    def with_member(self, extent: str, oid: str) -> "ExtentEnv":
        """EE[e ↦ (C, v ∪ {o})] — the (New) rule's extent update."""
        cname, members = self.get(extent)
        new = dict(self._extents)
        new[extent] = (cname, members | {oid})
        return ExtentEnv._adopt(new)

    def with_members(self, extent: str, members: frozenset[str]) -> "ExtentEnv":
        """EE[e ↦ (C, v)] — reset one extent's membership wholesale.

        Used by transaction rollback to restore exactly the extents a
        failed query's effect says it could have grown.
        """
        cname, _ = self.get(extent)
        new = dict(self._extents)
        new[extent] = (cname, frozenset(members))
        return ExtentEnv._adopt(new)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExtentEnv) and self._extents == other._extents

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(frozenset(self._extents.items()))
        return h

    def __repr__(self) -> str:
        sizes = {e: len(v) for e, (_, v) in sorted(self._extents.items())}
        return f"ExtentEnv({sizes})"


class AttributeIndexes:
    """Per-(extent, attribute) hash indexes over the current EE/OE.

    Built lazily the first time a compiled hash join asks for one, and
    validated against the database's store version: an index built at
    version ``v`` answers only while the store is still at ``v``.
    Committed writes with a known effect *promote* unaffected indexes
    to the new version (an ``A(C)`` write can only change the extent of
    ``C`` — extents are per-class); ``U`` atoms rewrite attribute
    values, so every index is dropped.  Unattributed state changes
    (restore, persistence load, rollback) advance the version without a
    promotion, lazily invalidating everything — the safe default.
    """

    def __init__(self):
        self._indexes: dict[
            tuple[str, str], tuple[int, dict[Query, tuple[OidRef, ...]]]
        ] = {}
        # sharded extents build the index as per-shard partials so a
        # per-shard commit only rebuilds the touched shards' pieces:
        # key -> (parts tuple, [partial per shard], merged index).
        # Validity is object *identity* on the partition frozensets —
        # every partition rebuild makes fresh frozensets, and an A-only
        # install reuses only untouched shards, whose member records an
        # A-only commit cannot have changed.
        self._sharded: dict[
            tuple[str, str],
            tuple[tuple, list, dict[Query, tuple[OidRef, ...]]],
        ] = {}
        # concurrent scheduled readers share the index table; a build
        # and a promotion must not interleave on the same key
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)

    def get(
        self,
        ee: "ExtentEnv",
        oe: "ObjectEnv",
        version: int,
        extent: str,
        attr: str,
        shards=None,
    ) -> dict[Query, tuple[OidRef, ...]]:
        """The index for ``extent`` keyed by ``attr`` at ``version``."""
        key = (extent, attr)
        if shards is not None:
            parts = shards.partition(extent, ee, oe, version)
            if parts is not None:
                return self._get_sharded(key, parts, oe, attr)
        with self._lock:
            hit = self._indexes.get(key)
            if hit is not None and hit[0] == version:
                return hit[1]
            from repro.exec.runtime import build_attr_index

            idx = build_attr_index(oe, ee.members(extent), attr)
            self._indexes[key] = (version, idx)
            return idx

    def get_shard(
        self,
        ee: "ExtentEnv",
        oe: "ObjectEnv",
        version: int,
        extent: str,
        attr: str,
        shard: int,
        shards,
    ) -> dict[Query, tuple[OidRef, ...]] | None:
        """One shard's index partial alone (a shard-pruned probe).

        Builds (and caches) only the requested shard's partial, so a
        probe whose key hashes to shard *s* never pays for the other
        shards' index maintenance.  ``None`` when the extent is not
        sharded under the live layout — the caller falls back to the
        full index.
        """
        parts = shards.partition(extent, ee, oe, version)
        if parts is None:
            return None
        return self._get_sharded((extent, attr), parts, oe, attr, shard=shard)

    def _get_sharded(
        self,
        key: tuple[str, str],
        parts: tuple,
        oe: "ObjectEnv",
        attr: str,
        shard: int | None = None,
    ) -> dict[Query, tuple[OidRef, ...]]:
        """Per-shard partials, rebuilt lazily and only when stale.

        ``shard=None`` returns the merged full index (building every
        missing partial); a specific ``shard`` returns just that
        partial.  ``merged`` is built from the partials of the *same*
        parts tuple, so it can never be stale while the identity check
        holds; it is dropped (set to ``None``) whenever the parts
        change.
        """
        from repro.exec.runtime import build_attr_index

        with self._lock:
            hit = self._sharded.get(key)
            if hit is not None and hit[0] is parts:
                _, partials, merged = hit
            else:
                old_parts = hit[0] if hit is not None else ()
                old_partials = hit[1] if hit is not None else []
                partials = [
                    old_partials[i]
                    if i < len(old_parts) and old_parts[i] is part
                    else None
                    for i, part in enumerate(parts)
                ]
                merged = None
            if shard is not None:
                if partials[shard] is None:
                    partials[shard] = build_attr_index(
                        oe, parts[shard], attr
                    )
                self._sharded[key] = (parts, partials, merged)
                return partials[shard]
            for i, part in enumerate(parts):
                if partials[i] is None:
                    partials[i] = build_attr_index(oe, part, attr)
            if merged is None:
                merged = {}
                for partial in partials:
                    for value, refs in partial.items():
                        have = merged.get(value)
                        merged[value] = (
                            refs if have is None else have + refs
                        )
            self._sharded[key] = (parts, partials, merged)
            return merged

    def note_write(self, schema: Schema, effect, pre: int, post: int) -> None:
        """Effect-guided maintenance after a committed write."""
        with self._lock:
            if effect.updates():
                self._indexes.clear()
                self._sharded.clear()
                return
            touched = set()
            for cname in effect.adds():
                try:
                    touched.add(schema.class_extent(cname))
                except Exception:
                    continue  # extent-less class: no index to invalidate
            if not touched:
                return
            for key in list(self._indexes):
                version, idx = self._indexes[key]
                if key[0] in touched:
                    del self._indexes[key]
                elif version == pre:
                    self._indexes[key] = (post, idx)

    def clear(self) -> None:
        with self._lock:
            self._indexes.clear()
            self._sharded.clear()

    def snapshot(self) -> dict[str, int]:
        """``{"Extent.attr": built_at_version}`` for every live index."""
        with self._lock:
            return {
                f"{extent}.{attr}": version
                for (extent, attr), (version, _) in sorted(
                    self._indexes.items()
                )
            }


class OidSupply:
    """Fresh-oid generator: ``o ∉ dom(OE)`` of the (New) rule.

    Oids are strings ``@C_n``.  The supply is the one *mutable* piece of
    the runtime — freshness is global by construction, which is exactly
    what the paper's side condition requires.  Forked explorations may
    share a supply safely: sharing only makes oids "fresher than
    necessary", which the bijection ∼ absorbs.

    The counter is observable (:meth:`state`) and monotonically
    restorable (:meth:`advance_to`) so the durability layer can persist
    it: a recovered database must never re-issue an oid that a logged
    commit already spent.  Like transaction rollback, recovery only ever
    moves the counter *forward* — a rewound supply could collide with a
    surviving object, while an over-advanced one merely yields oids
    "fresher than necessary", which ∼ absorbs.
    """

    def __init__(self, start: int = 0):
        self._next = start
        self._lock = threading.Lock()

    def fresh(self, cname: str, oe: ObjectEnv) -> str:
        """A fresh oid for a new ``cname`` object, not in ``oe``."""
        with self._lock:
            while True:
                n = self._next
                self._next += 1
                oid = f"@{cname}_{n}"
                if oid not in oe:
                    return oid

    def state(self) -> int:
        """The next counter value this supply would consider."""
        with self._lock:
            return self._next

    def advance_to(self, n: int) -> None:
        """Ensure the counter is at least ``n`` (never rewinds)."""
        with self._lock:
            if n > self._next:
                self._next = n


def column_values(
    oe: ObjectEnv, members: Iterable[str], attr: str
) -> Iterator[Query]:
    """Yield ``attr``'s value for each member oid — one column's data.

    The single scan primitive shared by the statistics catalog's column
    builds and incremental folds (:mod:`repro.db.statistics`): callers
    see values in membership-iteration order and never touch the
    records themselves.
    """
    for oid in members:
        yield oe.get(oid).attr(attr)


def populate(
    schema: Schema,
    ee: ExtentEnv,
    oe: ObjectEnv,
    supply: OidSupply,
    cname: str,
    attrs: Iterable[tuple[str, Query]],
) -> tuple[ExtentEnv, ObjectEnv, OidRef]:
    """Insert one object directly (test/bootstrap helper, not a reduction).

    Performs the same EE/OE updates as the (New) rule — the object joins
    the extent of its class — but without going through the machine.
    """
    oid = supply.fresh(cname, oe)
    rec = ObjectRecord(cname, tuple(attrs))
    extent = schema.class_extent(cname)
    return ee.with_member(extent, oid), oe.with_object(oid, rec), OidRef(oid)
