"""The live health surface: one snapshot dict per call, no daemon.

:func:`collect` assembles a nested, JSON-safe dict from counters every
subsystem keeps *anyway* (plan-cache hit/miss totals, the WAL's rolling
fsync-latency window, the last ``run_many`` batch stats, the flight
recorder's ring bookkeeping) — taking a snapshot allocates a dict but
adds no steady-state cost to the instrumented paths, so ``health()``
works with observability off.

:func:`export_gauges` mirrors the scalar fields into the metrics
registry under Prometheus-legal names, so the existing text exporter
(:func:`repro.obs.export.export_prometheus`) serves them; the shell's
``.top`` command renders :func:`render`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.flight import RECORDER as _RECORDER
from repro.obs.metrics import REGISTRY as _METRICS
from repro.resilience import faults as _faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database


def _percentile(samples: list[float], q: float) -> float:
    """Exact percentile (nearest-rank with interpolation) of ``samples``."""
    if not samples:
        return 0.0
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def collect(db: "Database") -> dict:
    """A point-in-time, JSON-safe health snapshot of ``db``."""
    cache = db._plan_cache
    wal = db._wal
    fsyncs = list(wal.fsync_times) if wal is not None else []
    plan = _faults.active()
    return {
        "plan_cache": {
            "entries": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "hit_rate": _rate(cache.hits, cache.misses),
        },
        "queries": dict(db._qstats),
        "result_cache": {
            "hits": db._qstats["result_cache_hits"],
            "hit_rate": _rate(
                db._qstats["result_cache_hits"],
                max(db._qstats["compiled"], 0),
            ),
        },
        "wal": {
            "attached": wal is not None,
            "directory": db._wal_dir,
            "applied_lsn": wal.last_lsn if wal is not None else 0,
            "checkpoint_lsn": db._checkpoint_lsn,
            "sync": wal.sync if wal is not None else None,
            "fsync": {
                "samples": len(fsyncs),
                "p50_s": _percentile(fsyncs, 0.50),
                "p99_s": _percentile(fsyncs, 0.99),
                "max_s": max(fsyncs) if fsyncs else 0.0,
                "mean_s": sum(fsyncs) / len(fsyncs) if fsyncs else 0.0,
            },
        },
        "scheduler": dict(db._last_batch) if db._last_batch else None,
        "sharding": _sharding_section(db),
        "replication": (
            db._replicas.snapshot() if db._replicas is not None else None
        ),
        "indexes": {
            "entries": len(db._indexes),
            "versions": db._indexes.snapshot(),
            "store_version": db._state_version,
        },
        "closure_indexes": {
            "entries": len(db._closure_indexes),
            "rebuilds": db._closure_indexes.rebuilds,
            "versions": db._closure_indexes.snapshot(),
        },
        "optimizer": _optimizer_section(db),
        "store": {
            "objects": len(db.oe),
            "extents": {
                name: len(db.ee.members(name)) for name in sorted(db.ee.names())
            },
            "definitions": len(db._definitions),
        },
        "faults": {
            "plan_installed": plan is not None,
            "hits": sum(plan.hits.values()) if plan is not None else 0,
            "fired": sum(plan.fired.values()) if plan is not None else 0,
        },
        "flight": _RECORDER.stats(),
    }


def _optimizer_section(db: "Database") -> dict | None:
    """The ``"optimizer"`` stanza: stats catalog state and replans."""
    stats = getattr(db, "_stats", None)
    if stats is None:
        return None
    snap = stats.snapshot()
    snap["replans"] = db._qstats.get("replans", 0)
    snap["replan_ratio"] = getattr(db, "replan_ratio", None)
    return snap


def _sharding_section(db: "Database") -> dict | None:
    """The ``"sharding"`` stanza: layout, skew, installs, pool usage."""
    shards = getattr(db, "_shards", None)
    if shards is None or not shards.enabled:
        return None
    from repro.exec import parallel as _parallel

    snap = shards.snapshot(db.ee)
    snap["pool"] = _parallel.snapshot()
    snap["sharded_classes"] = len(snap["extents"])
    versions = [
        e["version_skew"] for e in snap["extents"].values()
    ]
    snap["version_skew_max"] = max(versions) if versions else 0
    return snap


#: scalar gauge name → path into the snapshot dict (all Prometheus-legal)
_GAUGES: dict[str, tuple[str, ...]] = {
    "plan_cache_entries": ("plan_cache", "entries"),
    "plan_cache_hit_rate": ("plan_cache", "hit_rate"),
    "plan_cache_evictions": ("plan_cache", "evictions"),
    "result_cache_hit_rate": ("result_cache", "hit_rate"),
    "queries_total": ("queries", "runs"),
    "query_failures_total": ("queries", "failures"),
    "query_budget_exhausted_total": ("queries", "budget_exhausted"),
    "wal_applied_lsn": ("wal", "applied_lsn"),
    "wal_checkpoint_lsn": ("wal", "checkpoint_lsn"),
    "wal_fsync_p50_seconds": ("wal", "fsync", "p50_s"),
    "wal_fsync_p99_seconds": ("wal", "fsync", "p99_s"),
    "sched_queue_depth_peak": ("scheduler", "queue_depth_peak"),
    "sched_conflict_degree_mean": ("scheduler", "conflict_degree_mean"),
    "replica_count": ("replication", "count"),
    "replica_routed_reads_total": ("replication", "routed"),
    "replica_pinned_reads_total": ("replication", "pinned"),
    "replica_degraded_reads_total": ("replication", "degraded"),
    "shard_extents_total": ("sharding", "sharded_classes"),
    "shard_installs_total": ("sharding", "installs"),
    "shard_rebuilds_total": ("sharding", "rebuilds"),
    "shard_epoch": ("sharding", "epoch"),
    "shard_version_skew_max": ("sharding", "version_skew_max"),
    "shard_pool_workers": ("sharding", "pool", "workers"),
    "shard_pool_tasks_total": ("sharding", "pool", "tasks"),
    "shard_pool_batches_total": ("sharding", "pool", "batches"),
    "shard_pool_utilization": ("sharding", "pool", "utilization"),
    "optimizer_stats_epoch": ("optimizer", "epoch"),
    "optimizer_analyzed_columns": ("optimizer", "analyzed_columns"),
    "optimizer_replans_total": ("optimizer", "replans"),
    "index_entries": ("indexes", "entries"),
    "live_objects_snapshot": ("store", "objects"),
    "flight_events_recorded": ("flight", "recorded"),
    "flight_events_dropped": ("flight", "dropped"),
    "flight_crash_dumps": ("flight", "dumps"),
}


def _lookup(snapshot: dict, path: tuple[str, ...]):
    cur = snapshot
    for key in path:
        if not isinstance(cur, dict) or key not in cur:
            return None
        cur = cur[key]
    return cur


def export_gauges(snapshot: dict) -> None:
    """Mirror the snapshot's scalars into the metrics registry.

    Gauge names are validated (Prometheus charset) at registration by
    :mod:`repro.obs.metrics`; a snapshot section that is absent (e.g.
    no ``run_many`` batch yet) simply skips its gauges.
    """
    for name, path in _GAUGES.items():
        value = _lookup(snapshot, path)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        _METRICS.gauge(name).set(float(value))


def render(snapshot: dict) -> str:
    """The ``.top`` view: the snapshot as an aligned two-column board."""
    q = snapshot["queries"]
    pc = snapshot["plan_cache"]
    w = snapshot["wal"]
    fl = snapshot["flight"]
    lines = [
        "database health",
        "  queries     "
        f"runs={q['runs']} compiled={q['compiled']} "
        f"reduction={q['reduction']} bigstep={q['bigstep']} "
        f"failures={q['failures']}",
        "  plan cache  "
        f"entries={pc['entries']} hit_rate={pc['hit_rate']:.0%} "
        f"evictions={pc['evictions']}",
        "  result cache"
        f" hits={snapshot['result_cache']['hits']} "
        f"hit_rate={snapshot['result_cache']['hit_rate']:.0%}",
    ]
    if w["attached"]:
        fs = w["fsync"]
        lines.append(
            "  wal         "
            f"lsn={w['applied_lsn']} ckpt={w['checkpoint_lsn']} "
            f"fsync p50={fs['p50_s'] * 1e3:.2f}ms "
            f"p99={fs['p99_s'] * 1e3:.2f}ms ({fs['samples']} samples)"
        )
    else:
        lines.append("  wal         not attached")
    sched = snapshot["scheduler"]
    if sched:
        lines.append(
            "  scheduler   "
            f"last batch: {sched['queries']} queries, "
            f"{sched['workers']} workers, "
            f"queue peak={sched['queue_depth_peak']}, "
            f"conflict degree={sched['conflict_degree_mean']:.2f}, "
            f"speedup={sched.get('speedup', 0.0):.2f}x"
        )
    else:
        lines.append("  scheduler   no batches yet")
    sh = snapshot.get("sharding")
    if sh:
        layout = ", ".join(
            f"{name}:k={e['k']}"
            + (f" by {e['by']}" if e["by"] else " by oid")
            + (
                f" skew={e['size_skew']}"
                if e["size_skew"] is not None
                else ""
            )
            for name, e in sorted(sh["extents"].items())
        )
        pool = sh.get("pool") or {}
        util = pool.get("utilization")
        lines.append(
            "  sharding    "
            f"installs={sh['installs']} rebuilds={sh['rebuilds']} "
            f"pool tasks={pool.get('tasks', 0)}"
            + (f" util={util:.0%}" if util is not None else "")
            + f" [{layout}]"
        )
    rep = snapshot.get("replication")
    if rep:
        states = ", ".join(
            f"{r['name']}={r['state']}(lag {r['lag']})"
            for r in rep["replicas"]
        )
        lines.append(
            "  replication "
            f"routed={rep['routed']} pinned={rep['pinned']} "
            f"degraded={rep['degraded']} [{states}]"
        )
    idx = snapshot["indexes"]
    lines.append(
        "  indexes     "
        f"entries={idx['entries']} store_version={idx['store_version']}"
    )
    cix = snapshot.get("closure_indexes")
    if cix and cix["entries"]:
        spans = ", ".join(
            f"{label}: {e['nodes']} nodes"
            + (" (cyclic)" if e["cyclic"] else "")
            + ("" if e["usable"] else " (unusable)")
            for label, e in cix["versions"].items()
        )
        lines.append(f"  closures    entries={cix['entries']} [{spans}]")
    opt = snapshot.get("optimizer")
    if opt:
        ratio = opt.get("replan_ratio")
        lines.append(
            "  optimizer   "
            f"stats epoch={opt['epoch']} "
            f"columns={opt['analyzed_columns']} "
            f"replans={opt['replans']}"
            + (f" (ratio {ratio:g}x)" if ratio else " (replanning off)")
        )
    st = snapshot["store"]
    extents = ", ".join(
        f"{name}={n}" for name, n in st["extents"].items()
    )
    lines.append(
        f"  store       objects={st['objects']} "
        f"defs={st['definitions']} [{extents}]"
    )
    f = snapshot["faults"]
    if f["plan_installed"]:
        lines.append(
            f"  faults      plan installed: {f['hits']} hits, "
            f"{f['fired']} fired"
        )
    lines.append(
        "  flight      "
        f"buffered={fl['buffered']}/{fl['capacity']} "
        f"recorded={fl['recorded']} dropped={fl['dropped']} "
        f"dumps={fl['dumps']}"
    )
    return "\n".join(lines)
