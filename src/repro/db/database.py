"""A high-level façade over the whole system: one object to hold the
schema, the runtime environments (EE/OE), the definition environment
(DE), and the analysis/evaluation entry points.

This is the API a downstream user programs against::

    db = Database.from_odl('''
        class Person extends Object (extent Persons) {
            attribute string name;
        }
    ''')
    db.insert("Person", name="Ada")
    result = db.query("{ p.name | p <- Persons }")
    assert result.python() == {"Ada"}

Everything the paper formalises is reachable from here:

* :meth:`typecheck` — Figure 1;
* :meth:`effect_of` — Figure 3;
* :meth:`run` / :meth:`query` — Figures 2/4 under a chosen strategy;
* :meth:`explore` — all reduction orders;
* :meth:`is_deterministic` / :meth:`determinism_witnesses` — ⊢′;
* :meth:`check_commutable` — ⊢″;
* :meth:`optimize` — the effect-gated rewriter.

The database itself is mutated by queries exactly as the paper
dictates: a ``new`` in a query adds the object to its class extent and
the change *persists* (the façade commits the final EE/OE of a
successful evaluation).  Use :meth:`snapshot`/:meth:`restore` around
speculative work.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.effects.algebra import Effect, add as add_effect
from repro.effects.checker import EffectChecker
from repro.effects.commutativity import CommutationConflict, analyze_commutativity
from repro.effects.determinism import Interference, analyze_determinism
from repro.errors import BudgetExceeded, IOQLEffectError, IOQLTypeError
from repro.lang.ast import Definition, OidRef, Query
from repro.lang.parser import parse_program, parse_query
from repro.lang.traversal import resolve_extents
from repro.methods.ast import AccessMode
from repro.methods.typing import check_schema_methods
from repro.model.schema import Schema
from repro.model.types import ClassType, FuncType, Type
from repro.db.shards import ShardedExtents
from repro.db.statistics import StatisticsCatalog
from repro.db.store import (
    AttributeIndexes,
    ClosureIndexes,
    ExtentEnv,
    ObjectEnv,
    ObjectRecord,
    OidSupply,
)
from repro.db.wal import WriteAheadLog
from repro.errors import ReproError
from repro.lang.pprint import pretty, pretty_definition
from repro.exec.cache import PlanCache, schema_fingerprint
from repro.exec.engine import (
    PlanDecision,
    decide as _decide_engine,
    execute_plan,
    route_read as _route_read,
)
from repro.obs import flight as _flight
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span
from repro.resilience.budget import Budget
from repro.resilience.faults import maybe_fault
from repro.resilience.retry import RetryExhausted, RetryPolicy, replay_decision
from repro.resilience.transactions import Transaction, TransactionScope
from repro.semantics.evaluator import DEFAULT_MAX_STEPS, EvalResult, evaluate
from repro.semantics.explorer import Exploration, explore
from repro.semantics.machine import Machine
from repro.semantics.strategy import FIRST, Strategy
from repro.typing.checker import check_definition, check_query
from repro.typing.context import TypeContext


@dataclass(frozen=True)
class Snapshot:
    """An immutable copy of the database state (EE, OE, definitions)."""

    ee: ExtentEnv
    oe: ObjectEnv
    definitions: tuple[Definition, ...]


class Database:
    """Schema + state + definitions + every checker and the machine."""

    def __init__(
        self,
        schema: Schema,
        *,
        method_mode: AccessMode = AccessMode.READ_ONLY,
        method_fuel: int = 10_000,
        check_methods: bool = True,
    ):
        self.schema = schema
        # the store version stamps every EE/OE replacement; plan/result
        # and index caches validate against it (see _note_write)
        self._state_version = 0
        self._defs_version = 0
        self._ee: ExtentEnv | None = None
        self._oe: ObjectEnv | None = None
        # oid→ClassType map memoised per store version: every typecheck
        # needs it, and between writes it cannot change (any EE/OE
        # install bumps _state_version through the setters above)
        self._oid_types_cache: tuple[int, dict[str, Type]] | None = None
        self._plan_cache = PlanCache(schema_fingerprint(schema))
        self._indexes = AttributeIndexes()
        # persistent interval (pre/post-order) indexes for unbounded
        # `traverse` (RED route); same Theorem 5 discipline as above
        self._closure_indexes = ClosureIndexes()
        # per-(extent, attribute) statistics for the cost-based
        # optimizer v2; maintained by the same Theorem 5 effect logic
        # as the caches (see _note_write)
        self._stats = StatisticsCatalog()
        # adaptive replanning: re-optimize mid-query when an observed
        # source cardinality diverges from the estimate by this factor
        # (None/0 disables the guards entirely)
        self.replan_ratio: float | None = 4.0
        # hash-sharded extents (repro.db.shards): empty = every path
        # behaves exactly as the unsharded database
        self._shards = ShardedExtents()
        self.ee = ExtentEnv.for_schema(schema)
        self.oe = ObjectEnv()
        self.supply = OidSupply()
        self.method_mode = method_mode
        self._definitions: dict[str, Definition] = {}
        self._def_types: dict[str, FuncType] = {}
        self._active_txn: Transaction | None = None
        # serialises EE/OE installation when run_many overlaps readers
        # with a committing writer (see repro.sched); the same lock
        # orders WAL appends, so the log order *is* the admission order
        self._commit_lock = threading.RLock()
        # durability (repro.db.wal / repro.db.recovery); None = volatile
        self._wal: WriteAheadLog | None = None
        self._wal_dir: str | None = None
        self._checkpoint_lsn = 0
        self._odl_source: str | None = None
        # replication (repro.replication): per-extent LSN watermarks —
        # the last WAL LSN whose static write effect touched each class
        # — plus a "star" mark for commits any query may observe through
        # reference chains (U/define/unattributed full records, the §5
        # caveat).  A replica covers a query's R-set iff its own marks
        # reach these.  Updated under _commit_lock right after the
        # append that assigned the LSN.
        self._write_marks: dict[str, int] = {}
        self._star_mark = 0
        self._replicas = None  # ReplicaSet | None
        # a fenced primary lost a failover: it must never commit again
        self._fenced = False
        # always-on query statistics (plain int bumps) feeding health();
        # the obs registry mirrors them only when instrumentation is on
        self._qstats: dict[str, int] = {
            "runs": 0,
            "compiled": 0,
            "reduction": 0,
            "bigstep": 0,
            "result_cache_hits": 0,
            "failures": 0,
            "budget_exhausted": 0,
            "crash_dumps": 0,
            "routed_reads": 0,
            "replans": 0,
        }
        # stats dict of the most recent run_many batch (repro.sched)
        self._last_batch: dict | None = None
        self.machine = Machine(
            schema,
            self._definitions,
            method_mode=method_mode,
            method_fuel=method_fuel,
            oid_supply=self.supply,
        )
        if check_methods:
            check_schema_methods(schema, method_mode)

    @staticmethod
    def from_odl(
        source: str,
        *,
        method_mode: AccessMode = AccessMode.READ_ONLY,
        method_fuel: int = 10_000,
    ) -> "Database":
        """Build a database from ODL class-definition text (§2 grammar)."""
        from repro.model.odl_parser import parse_schema

        schema = parse_schema(
            source,
            allow_method_effects=method_mode is AccessMode.EFFECTFUL,
        )
        db = Database(
            schema, method_mode=method_mode, method_fuel=method_fuel
        )
        # retained for durability: checkpoints embed the ODL verbatim
        db._odl_source = source
        return db

    @staticmethod
    def open(
        path: str,
        odl: str | None = None,
        *,
        sync: bool = True,
        method_mode: AccessMode = AccessMode.READ_ONLY,
        method_fuel: int = 10_000,
    ) -> "Database":
        """Open (or create) a **durable** database under directory ``path``.

        If ``path`` holds a checkpoint, the database is recovered from
        it — the last checkpoint plus every intact write-ahead-log
        record, truncating at the first torn record, so the result is
        the state of some prefix of the committed sequence (see
        ``docs/DURABILITY.md``).  Otherwise a fresh database is built
        from ``odl`` (required in that case), an initial checkpoint is
        written, and logging begins.  Either way every subsequent commit
        is journalled before it is installed; call :meth:`checkpoint` to
        fold the log and :meth:`close` when done.
        """
        from repro.db import recovery as _recovery

        if os.path.exists(_recovery.checkpoint_path(path)):
            return _recovery.recover(path, sync=sync).db
        if odl is None:
            from repro.db.persistence import PersistenceError

            raise PersistenceError(
                f"no checkpoint under {path!r} and no ODL source given: "
                "cannot create a database from nothing"
            )
        db = Database.from_odl(
            odl, method_mode=method_mode, method_fuel=method_fuel
        )
        db.attach_wal(path, sync=sync)
        return db

    # -- state versioning ------------------------------------------------
    @property
    def ee(self) -> ExtentEnv:
        return self._ee

    @ee.setter
    def ee(self, value: ExtentEnv) -> None:
        if value is not self._ee:
            self._state_version += 1
            self._ee = value

    @property
    def oe(self) -> ObjectEnv:
        return self._oe

    @oe.setter
    def oe(self, value: ObjectEnv) -> None:
        if value is not self._oe:
            self._state_version += 1
            self._oe = value

    def _note_write(
        self, effect: Effect, pre_version: int, shard_writes=None, adds=None
    ) -> None:
        """Effect-guided cache maintenance after a committed write.

        By Theorem 5 the dynamic trace of the committed statement is a
        subeffect of ``effect``, so a plan/result/index whose reads are
        disjoint from the written classes is provably unaffected: it is
        promoted to the new store version.  Affected entries are
        evicted.  State changes with *unknown* effects (restore,
        persistence load, rollback) never reach this method — their
        version bump alone lazily invalidates every cached result.

        ``shard_writes`` (class → exact shard ids, per-shard commits
        only) lets the plan cache keep entries whose recorded reads
        were confined to disjoint shards of the written classes.
        ``adds`` (extent → newly added oids, when the commit path knows
        them) lets the statistics catalog fold an ``A``-only commit's
        rows into its column stats instead of evicting them.
        """
        post = self._state_version
        if post == pre_version:
            return
        self._plan_cache.note_write(
            effect, pre_version, post, shard_writes=shard_writes
        )
        self._indexes.note_write(self.schema, effect, pre_version, post)
        self._closure_indexes.note_write(self.schema, effect, pre_version, post)
        self._stats.note_write(
            self.schema,
            effect,
            pre_version,
            post,
            adds=adds,
            oe=self.oe,
            ee=self.ee,
        )

    # -- durability (repro.db.wal / repro.db.recovery) -------------------
    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, or ``None`` (volatile database)."""
        return self._wal

    @property
    def wal_dir(self) -> str | None:
        """The durable directory this database journals into, if any."""
        return self._wal_dir

    def attach_wal(
        self, path: str, *, odl_source: str | None = None, sync: bool = True
    ) -> "Database":
        """Start journalling this database under directory ``path``.

        Writes an initial checkpoint of the *current* state (so the log
        alone never has to carry the whole history) and opens the log.
        A database built straight from a :class:`Schema` object has no
        retained ODL text; one is reconstructed via
        :func:`repro.db.persistence.schema_to_odl` unless ``odl_source``
        is given.
        """
        from repro.db import recovery as _recovery
        from repro.db.persistence import schema_to_odl

        if self._wal is not None:
            raise ReproError(
                f"a write-ahead log is already attached ({self._wal_dir})"
            )
        if odl_source is not None:
            self._odl_source = odl_source
        elif self._odl_source is None:
            self._odl_source = schema_to_odl(self.schema)
        os.makedirs(path, exist_ok=True)
        self._wal_dir = os.path.abspath(path)
        self._wal = WriteAheadLog(
            _recovery.wal_path(self._wal_dir), next_lsn=1, sync=sync
        )
        # marks refer to LSNs of *this* log; a fresh log restarts them
        self._write_marks = {}
        self._star_mark = 0
        self.checkpoint()
        return self

    def _adopt_wal(self, path: str, *, next_lsn: int, sync: bool) -> None:
        """Recovery's attach: reuse an existing (already repaired) log."""
        from repro.db import recovery as _recovery

        self._wal_dir = os.path.abspath(path)
        self._wal = WriteAheadLog(
            _recovery.wal_path(self._wal_dir), next_lsn=next_lsn, sync=sync
        )
        self._write_marks = {}
        self._star_mark = 0

    # -- replication (repro.replication) ---------------------------------
    def _mark_written(
        self, lsn: int, effect: Effect | None, shard_writes=None
    ) -> None:
        """Advance the per-extent watermarks for the record at ``lsn``.

        ``effect=None`` is an unattributed full record; a ``U`` commit
        is also logged full, and either may be observed by *any* query
        through reference chains (§5), so both advance the star mark
        every coverage check folds in.  An ``A``-only commit advances
        exactly the marks its atoms name — a freshly added object is
        unreachable from records no class in the write set owns, so a
        query not reading those classes cannot observe it.

        ``shard_writes`` (class → exact shard ids written, sharded
        classes only) refines a class mark to per-shard keys
        ``"C#k"`` — ``#`` cannot appear in a class name — so a reader
        provably confined to other shards needs no freshness from this
        commit at all.
        """
        with self._commit_lock:
            if effect is None or effect.updates():
                # the full record subsumes every per-class mark too:
                # covers() takes max(star, class mark) on both sides
                self._star_mark = max(self._star_mark, lsn)
            else:
                for cname in effect.adds():
                    if shard_writes is not None and cname in shard_writes:
                        for s in sorted(shard_writes[cname]):
                            key = f"{cname}#{s}"
                            if lsn > self._write_marks.get(key, 0):
                                self._write_marks[key] = lsn
                    elif lsn > self._write_marks.get(cname, 0):
                        self._write_marks[cname] = lsn

    def write_marks(self) -> dict[str, int]:
        """Snapshot of the freshness requirement: class → LSN, ``"*"`` →
        the star mark.  A replica may serve a query iff its own marks
        reach these for every class in the query's R-set (and the star)."""
        with self._commit_lock:
            marks = dict(self._write_marks)
            marks["*"] = self._star_mark
            return marks

    @property
    def replicas(self):
        """The attached :class:`repro.replication.ReplicaSet` (or None)."""
        return self._replicas

    def replicate(self, n: int = 2, **kw):
        """Attach ``n`` WAL-shipped in-process read replicas.

        Requires an attached write-ahead log (the ship medium).  Each
        replica bootstraps from the checkpoint + intact log and then
        tails the log, replaying records physically; ``Database.run``
        routes effect-proven read-only queries to the least-loaded
        replica whose watermarks cover the query's R-set.  Keyword
        options are forwarded to :class:`repro.replication.ReplicaSet`
        (``lag_threshold``, ``audit_every``, ``auto_poll``, ``retry``).
        """
        from repro.replication import ReplicaSet

        self._check_fenced()
        if self._wal is None or self._wal_dir is None:
            raise ReproError(
                "replication ships the write-ahead log; attach one first "
                "(Database.open / attach_wal)"
            )
        if self._replicas is not None:
            raise ReproError("replicas are already attached (detach first)")
        self._replicas = ReplicaSet(self, n, **kw)
        return self._replicas

    def detach_replicas(self) -> None:
        """Stop and drop the attached replica set (idempotent)."""
        replicas, self._replicas = self._replicas, None
        if replicas is not None:
            replicas.close()

    def _check_fenced(self) -> None:
        if self._fenced:
            raise ReproError(
                "this primary was fenced by a failover; use the promoted "
                "database"
            )

    def checkpoint(self) -> int:
        """Fold the write-ahead log into a fresh checkpoint.

        Under the commit lock: the full state (a sealed
        :mod:`repro.db.persistence` dump plus the folded LSN and the
        oid-supply counter) is written atomically, then the log is
        truncated back to its header.  A crash *between* the two steps
        is harmless — recovery skips records the checkpoint's LSN
        already covers.  Recovery time is proportional to the log since
        the last checkpoint, so long-running writers should checkpoint
        periodically (the shell's ``.checkpoint``).  Returns the LSN
        the new checkpoint folds through.
        """
        from repro.db import recovery as _recovery
        from repro.db.persistence import dump_database, write_document

        self._check_fenced()
        if self._wal is None:
            raise ReproError(
                "no write-ahead log attached (use Database.open or "
                "attach_wal first)"
            )
        with _span("checkpoint"):
            with self._commit_lock:
                doc = dump_database(self, self._odl_source)
                doc["durability"] = {
                    "lsn": self._wal.last_lsn,
                    "next_oid": self.supply.state(),
                }
                write_document(
                    doc, _recovery.checkpoint_path(self._wal_dir)
                )
                self._checkpoint_lsn = self._wal.last_lsn
                self._wal.reset()
            if _OBS.enabled:
                _METRICS.counter("wal_checkpoints_total").inc()
            return self._checkpoint_lsn

    def close(self) -> None:
        """Detach and close the write-ahead log (state stays in memory).

        Idempotent, and safe in any order with a fault-driven WAL
        detach (:meth:`_wal_log_unattributed`): close → detach → close
        neither raises nor double-counts ``wal_detached_total``.  Any
        attached replicas are stopped first — their databases remain
        readable, but no longer ship.
        """
        self.detach_replicas()
        with self._commit_lock:
            wal, self._wal = self._wal, None
        if wal is not None:
            wal.close()

    def _wal_commit_record(
        self, stmt: str, effect: Effect, post_ee: ExtentEnv, post_oe: ObjectEnv
    ) -> dict:
        """The physical delta of one commit, bounded by its static effect.

        Theorem 5 bounds the commit's dynamic trace by ``effect``, so an
        ``A``-only commit can log just the extents its ``A`` atoms name
        (new membership wholesale — replay is then idempotent) plus the
        records of the objects that joined them.  Any ``U`` atom forces
        a full record: in-place updates reach objects through reference
        chains the ``R``-set does not name (the §5 caveat, the same
        coarsening ``repro.sched`` applies to updaters).
        """
        from repro.db.persistence import value_to_json

        if effect.updates():
            return self._wal_full_record(stmt, effect, post_ee, post_oe)
        pre_ee = self._ee
        extents: dict[str, list[str]] = {}
        objects: dict[str, dict] = {}
        for cname in sorted(effect.adds()):
            try:
                extent = self.schema.class_extent(cname)
            except Exception:
                continue  # extent-less class: nothing durable to log
            members = post_ee.members(extent)
            extents[extent] = sorted(members)
            for oid in sorted(members - pre_ee.members(extent)):
                rec = post_oe.get(oid)
                objects[oid] = {
                    "class": rec.cname,
                    "attrs": {a: value_to_json(v) for a, v in rec.attrs},
                }
        return {
            "kind": "delta",
            "stmt": stmt,
            "defs_version": self._defs_version,
            "effect": [str(a) for a in effect],
            "extents": extents,
            "objects": objects,
            "next_oid": self.supply.state(),
        }

    def _wal_full_record(
        self,
        stmt: str,
        effect: Effect | None = None,
        ee: ExtentEnv | None = None,
        oe: ObjectEnv | None = None,
    ) -> dict:
        """A record carrying the whole state (U commits, rollback, restore)."""
        from repro.db.persistence import value_to_json

        ee = self._ee if ee is None else ee
        oe = self._oe if oe is None else oe
        return {
            "kind": "full",
            "stmt": stmt,
            "defs_version": self._defs_version,
            "effect": [str(a) for a in effect] if effect is not None else [],
            "extents": {e: sorted(ee.members(e)) for e in sorted(ee.names())},
            "objects": {
                oid: {
                    "class": rec.cname,
                    "attrs": {a: value_to_json(v) for a, v in rec.attrs},
                }
                for oid, rec in oe.items()
            },
            "definitions": [
                pretty_definition(d) for d in self._definitions.values()
            ],
            "next_oid": self.supply.state(),
        }

    def _shard_delta_record(
        self, stmt: str, effect: Effect, extent_adds, shard_adds, result_oe
    ) -> dict:
        """A shard-scoped refinement of the ``delta`` record.

        ``adds`` carries only the oids that *joined* each touched extent
        (additive — replay unions them in, which is idempotent and
        commutes with the disjoint deltas of overlapped writers), and
        ``shards`` buckets them by shard id for extents sharded at
        commit time, so replicas can refine their watermarks per shard
        without re-deriving the layout.
        """
        from repro.db.persistence import value_to_json

        objects: dict[str, dict] = {}
        for added in extent_adds.values():
            for oid in sorted(added):
                rec = result_oe.get(oid)
                objects[oid] = {
                    "class": rec.cname,
                    "attrs": {a: value_to_json(v) for a, v in rec.attrs},
                }
        return {
            "kind": "shard-delta",
            "stmt": stmt,
            "defs_version": self._defs_version,
            "effect": [str(a) for a in effect],
            "adds": {
                e: sorted(a) for e, a in sorted(extent_adds.items())
            },
            "shards": {
                e: {str(s): sorted(oids) for s, oids in sorted(per.items())}
                for e, per in sorted(shard_adds.items())
            },
            "objects": objects,
            "next_oid": self.supply.state(),
        }

    def _install_sharded(
        self,
        stmt: str,
        effect: Effect,
        base_ee: ExtentEnv,
        base_oe: ObjectEnv,
        result_ee: ExtentEnv,
        result_oe: ObjectEnv,
        pre: int,
    ) -> None:
        """Commit an ``A``-only evaluation by per-shard delta install.

        Caller holds the commit lock.  Instead of replacing EE/OE with
        the evaluation's own post-environments wholesale, the commit's
        delta (new objects + extent joins, bounded by the static ``A``
        atoms per Theorem 5) is *merged* into the current environments.
        This is what lets the scheduler overlap writers: deltas of
        concurrent ``A``-only commits are disjoint (the oid supply is
        globally monotone, so fresh oids never collide) and set union
        commutes, so merge order only permutes oid names — absorbed by
        ∼.  Ordering within the commit:

        1. ``shard.install`` fault sites fire per touched shard *first*
           — an injected fault aborts the whole commit atomically, with
           nothing logged and nothing installed;
        2. the ``shard-delta`` WAL record becomes durable;
        3. OE then EE install (the documented reader discipline);
        4. the staged per-shard partitions swap in under their new
           per-shard versions, and caches/watermarks refine to the
           exact ``(class, shard)`` pairs written.
        """
        from repro.db.shards import commit_deltas

        extent_adds, shard_adds = commit_deltas(
            self._shards,
            self.schema,
            base_ee,
            result_ee,
            result_oe,
            effect.adds(),
        )
        cur_ee, cur_oe = self._ee, self._oe
        if cur_ee is base_ee and cur_oe is base_oe:
            new_ee, new_oe = result_ee, result_oe
        else:
            # another writer installed since this evaluation started:
            # merge this commit's (disjoint, fresh-oid) delta on top
            fresh: dict[str, ObjectRecord] = {}
            for added in extent_adds.values():
                for oid in added:
                    fresh[oid] = result_oe.get(oid)
            new_oe = cur_oe.with_objects(fresh)
            new_ee = cur_ee
            for extent, added in extent_adds.items():
                if added:
                    new_ee = new_ee.with_members(
                        extent, cur_ee.members(extent) | added
                    )
        staged = self._shards.prepare_install(pre, shard_adds)
        shard_writes = {
            self.schema.extent_class(extent): frozenset(per)
            for extent, per in shard_adds.items()
        }
        if self._wal is not None:
            lsn = self._wal.append(
                self._shard_delta_record(
                    stmt, effect, extent_adds, shard_adds, result_oe
                )
            )
            self._mark_written(lsn, effect, shard_writes=shard_writes)
        self.oe = new_oe
        self.ee = new_ee
        self._shards.commit_staged(staged, shard_adds, self._state_version)
        self._note_write(
            effect, pre, shard_writes=shard_writes, adds=extent_adds
        )

    def _wal_log_unattributed(self, stmt: str) -> None:
        """Journal a state change with no static effect (rollback, restore).

        Logged as a full record *after* the change is installed.  If the
        append itself fails the log can no longer describe the in-memory
        state, and later effect-bounded deltas would replay onto the
        wrong base — so durability is detached (loudly, via the
        ``wal_detached_total`` metric and ``db.wal is None``) rather
        than left inconsistent; the in-memory database stays correct.
        """
        wal = self._wal
        if wal is None:
            return
        try:
            lsn = wal.append(self._wal_full_record(stmt))
        except BaseException as exc:
            # idempotent detach: a concurrent (or earlier) close/detach
            # already cleared the slot — don't count the loss twice
            with self._commit_lock:
                detached_here = self._wal is wal
                if detached_here:
                    self._wal = None
            wal.close()
            if not detached_here:
                raise
            if _OBS.enabled:
                _METRICS.counter("wal_detached_total").inc()
            # durability just went dark: preserve the black box next to
            # the log it can no longer describe
            _flight.record(
                "wal-detach", stmt=stmt, error=f"{type(exc).__name__}: {exc}"
            )
            if _flight.crash_dump(
                "wal-detach", error=exc, directory=self._wal_dir
            ):
                self._qstats["crash_dumps"] += 1
            raise
        self._mark_written(lsn, None)

    # -- population ------------------------------------------------------
    def insert(self, cname: str, **attrs: Any) -> OidRef:
        """Create an object directly (outside any query) and return its oid.

        Attribute values may be Python ints/bools/strs/oids or AST
        values.  Performs the same extent maintenance as the (New)
        rule, and type-checks the attributes against the schema.
        """
        self._check_fenced()
        declared = dict(self.schema.atypes(cname))
        if set(attrs) != set(declared):
            raise IOQLTypeError(
                f"insert {cname}: need exactly {sorted(declared)}, "
                f"got {sorted(attrs)}"
            )
        fields = tuple(
            (a, to_value(attrs[a])) for a in (name for name, _ in self.schema.atypes(cname))
        )
        ctx = self.type_context()
        for a, v in fields:
            vt = check_query(ctx, v)
            ctx.require_subtype(vt, declared[a], f"insert {cname}.{a}")
        with self._commit_lock:
            oid = self.supply.fresh(cname, self.oe)
            pre = self._state_version
            effect = Effect.of(add_effect(cname))
            new_oe = self.oe.with_object(oid, ObjectRecord(cname, fields))
            new_ee = self.ee.with_member(self.schema.class_extent(cname), oid)
            _flight.record(
                "commit",
                stmt=f"insert {cname}",
                effect=str(effect),
                version=pre,
            )
            if self._shards.enabled:
                self._install_sharded(
                    f"insert {cname}", effect,
                    self.ee, self.oe, new_ee, new_oe, pre,
                )
            else:
                if self._wal is not None:
                    # write-ahead: a failed append aborts the insert with
                    # nothing installed (the burnt oid is absorbed by ∼)
                    lsn = self._wal.append(
                        self._wal_commit_record(
                            f"insert {cname}", effect, new_ee, new_oe
                        )
                    )
                    self._mark_written(lsn, effect)
                self.oe = new_oe
                self.ee = new_ee
                self._note_write(
                    effect,
                    pre,
                    adds={self.schema.class_extent(cname): (oid,)},
                )
        if self._active_txn is not None:
            self._active_txn.record(Effect.of(add_effect(cname)))
        return OidRef(oid)

    def define(self, source: str | Definition) -> FuncType:
        """Add a ``define d(x:σ,…) as q;`` clause; returns its type.

        Definitions are non-recursive and may reference earlier ones,
        exactly as in the ⊢_prog rule.
        """
        self._check_fenced()
        if isinstance(source, Definition):
            d = source
        else:
            prog = parse_program(source + " 0", schema=self.schema)
            if len(prog.definitions) != 1:
                raise IOQLTypeError("define() expects exactly one definition")
            d = prog.definitions[0]
        if d.name in self._definitions:
            raise IOQLTypeError(f"definition {d.name!r} already exists")
        ctx = self.type_context()
        ftype_plain = check_definition(ctx, d)
        # carry the latent effect on the stored type (Figure 3 view)
        eff_type = EffectChecker().check_definition(ctx, d)
        if self._wal is not None:
            # write-ahead: logged only once the definition is known good
            lsn = self._wal.append(
                {
                    "kind": "define",
                    "stmt": d.name,
                    "source": pretty_definition(d),
                    "defs_version": self._defs_version + 1,
                    "next_oid": self.supply.state(),
                }
            )
            # a definition changes what any later query may mean: it
            # advances the star mark, like a full record
            self._mark_written(lsn, None)
        self._definitions[d.name] = d
        self._def_types[d.name] = eff_type
        self.machine.defs[d.name] = d
        self._defs_version += 1  # old compiled plans must not resolve d
        return eff_type if not eff_type.effect.is_empty() else ftype_plain

    @property
    def definitions(self) -> Mapping[str, Definition]:
        return dict(self._definitions)

    # -- contexts ----------------------------------------------------------
    def oid_types(self) -> dict[str, Type]:
        """The oid fragment of Q: every live oid at its dynamic class.

        Memoised on the store version: callers must not mutate the
        returned dict (``TypeContext.extend`` copies before binding).
        """
        cached = self._oid_types_cache
        version = self._state_version
        if cached is not None and cached[0] == version:
            return cached[1]
        vars = {
            oid: ClassType(rec.cname) for oid, rec in self.oe.items()
        }
        self._oid_types_cache = (version, vars)
        return vars

    def type_context(self) -> TypeContext:
        """(E; D; Q) for this database's current state."""
        return TypeContext(
            self.schema, defs=dict(self._def_types), vars=self.oid_types()
        )

    # -- parsing -----------------------------------------------------------
    def parse(self, source: str | Query) -> Query:
        """Parse query text with this schema's extent names resolved."""
        if isinstance(source, Query):
            return resolve_extents(source, frozenset(self.schema.extents))
        return parse_query(source, schema=self.schema)

    # -- static analysis -----------------------------------------------------
    def typecheck(self, source: str | Query) -> Type:
        """Figure 1: the type of the query, or :class:`IOQLTypeError`."""
        q = self.parse(source)
        with _span("typecheck"):
            if _OBS.enabled:
                _METRICS.counter("typecheck_total").inc()
            return check_query(self.type_context(), q)

    def effect_of(self, source: str | Query) -> Effect:
        """Figure 3: the inferred effect ε of the query."""
        _, eff = EffectChecker().check_traced(
            self.type_context(), self.parse(source)
        )
        return eff

    def typecheck_with_effect(self, source: str | Query) -> tuple[Type, Effect]:
        """Figure 3 judgement ``q : σ ! ε`` in one call."""
        return EffectChecker().check_traced(
            self.type_context(), self.parse(source)
        )

    def determinism_witnesses(self, source: str | Query) -> list[Interference]:
        """⊢′ analysis: the (possibly empty) interference witnesses."""
        _, _, witnesses = analyze_determinism(
            self.schema,
            self.parse(source),
            defs=self._def_types,
            var_types=self.oid_types(),
        )
        return witnesses

    def is_deterministic(self, source: str | Query) -> bool:
        """Theorem 7's premise: does ⊢′ accept the query?"""
        return not self.determinism_witnesses(source)

    def commutation_conflicts(
        self, source: str | Query
    ) -> list[CommutationConflict]:
        """⊢″ analysis: set operators whose operands interfere."""
        _, _, conflicts = analyze_commutativity(
            self.schema,
            self.parse(source),
            defs=self._def_types,
            var_types=self.oid_types(),
        )
        return conflicts

    def check_commutable(self, source: str | Query) -> None:
        """Raise :class:`IOQLEffectError` unless ⊢″ accepts the query."""
        conflicts = self.commutation_conflicts(source)
        if conflicts:
            raise IOQLEffectError("; ".join(str(c) for c in conflicts))

    def optimize(self, source: str | Query) -> "Query":
        """Apply the effect-gated rewriting pipeline; returns the query."""
        from repro.optimizer.planner import optimize

        return optimize(self, self.parse(source)).query

    # -- evaluation -----------------------------------------------------------
    def run(
        self,
        source: str | Query,
        *,
        strategy: Strategy = FIRST,
        max_steps: int = DEFAULT_MAX_STEPS,
        commit: bool = True,
        typecheck: bool = True,
        engine: str = "auto",
        budget: Budget | None = None,
        atomic: bool = False,
        retry: RetryPolicy | None = None,
    ) -> EvalResult:
        """Evaluate a query under one strategy; optionally commit EE/OE.

        ``typecheck=True`` (default) runs Figure 1 first, so evaluation
        enjoys Theorem 3 and can never get stuck.  ``engine`` selects
        the presentation: ``"auto"`` (default) routes the query through
        the compiled set-at-a-time engine when the Figure 3 effect
        system proves it read-only (Theorem 4 then guarantees the
        compiled answer matches the machine's) and falls back to the
        machine otherwise — :meth:`plan_decision` explains the choice;
        ``"compiled"`` forces the compiled engine (raising
        ``ValueError`` when the query is ineligible); ``"reduction"``
        is the paper's Figure 2/4 machine (step counts, rule traces);
        ``"bigstep"`` is the normalisation evaluator of
        :mod:`repro.semantics.bigstep` — same answers (tested), roughly
        an order of magnitude faster than the machine.

        Resilience knobs (see ``docs/ROBUSTNESS.md``):

        * ``budget`` bounds the evaluation (steps, wall-clock, new
          objects); violations raise the matching
          :class:`~repro.errors.BudgetExceeded` subclass.  Retried
          attempts each get a fresh copy of the budget.
        * ``atomic=True`` captures an effect-guided
          :class:`~repro.resilience.transactions.TransactionScope` —
          only the extents in the query's static R ∪ A (∪ U) — before
          evaluating, and rolls it back on *any* failure, so the
          database never observes a half-applied statement.
        * ``retry`` replays a failed attempt under the given
          :class:`~repro.resilience.retry.RetryPolicy`, but only when
          :func:`~repro.resilience.retry.replay_decision` proves the
          replay safe (⊢′ accepts; writes require ``atomic=True``).
          Ineligible or exhausted retries re-raise (the last failure is
          wrapped in :class:`~repro.resilience.retry.RetryExhausted`
          when attempts run out).
        """
        self._check_fenced()
        with _span("query", engine=engine):
            q = self.parse(source)
            if typecheck:
                self.typecheck(q)
            scope: TransactionScope | None = None
            if atomic:
                _, static_eff = EffectChecker().check_traced(
                    self.type_context(), q
                )
                scope = TransactionScope.capture(self, static_eff)
            attempt = 0
            while True:
                attempt += 1
                attempt_budget = (
                    budget if attempt == 1 or budget is None else budget.fresh()
                )
                try:
                    return self._run_once(
                        q,
                        strategy=strategy,
                        max_steps=max_steps,
                        commit=commit,
                        engine=engine,
                        budget=attempt_budget,
                    )
                except Exception as exc:
                    if scope is not None:
                        scope.rollback(self)
                    if retry is None or not retry.retryable(exc):
                        self._note_failure(exc)
                        raise
                    if attempt >= retry.max_attempts:
                        if _OBS.enabled:
                            _METRICS.counter("retries_exhausted_total").inc()
                        self._note_failure(exc, reason="retry-exhausted")
                        raise RetryExhausted(attempt, exc) from exc
                    decision = replay_decision(self, q, rolled_back=atomic)
                    if not decision.safe:
                        if _OBS.enabled:
                            _METRICS.counter("retries_refused_total").inc()
                        self._note_failure(exc)
                        raise
                    if _OBS.enabled:
                        _METRICS.counter("retry_attempts_total").inc()
                    retry.backoff(attempt)

    def _run_once(
        self,
        q: Query,
        *,
        strategy: Strategy,
        max_steps: int,
        commit: bool,
        engine: str,
        budget: Budget | None,
    ) -> EvalResult:
        """One evaluation attempt plus (optionally) its commit."""
        decision: PlanDecision | None = None
        if engine == "auto":
            decision = self.plan_decision(q)
            if self._replicas is not None:
                # effect-proven read-only: try a fresh-enough replica;
                # None means none covers the R-set right now, and the
                # primary serves (counted by the router, never wrong)
                routed = _route_read(
                    self, q, decision,
                    strategy=strategy, max_steps=max_steps, budget=budget,
                )
                if routed is not None:
                    self._qstats["runs"] += 1
                    self._qstats["routed_reads"] += 1
                    return routed
            engine = decision.engine
        elif engine == "compiled":
            decision = self.plan_decision(q)
            if decision.engine != "compiled":
                raise ValueError(
                    f"query cannot run on the compiled engine: "
                    f"{decision.reason}"
                )
        self._qstats["runs"] += 1
        if engine in self._qstats:
            self._qstats[engine] += 1
        # the evaluation's base environments: the per-shard commit path
        # computes this run's delta against exactly what it read, then
        # merges the delta into whatever is current at install time
        base_ee, base_oe = self.ee, self.oe
        with _span("eval", engine=engine) as ev_sp:
            if engine == "compiled":
                result = self._run_compiled(decision, budget=budget)
            elif engine == "bigstep":
                from repro.semantics.bigstep import evaluate_bigstep

                big = evaluate_bigstep(
                    self.machine, base_ee, base_oe, q,
                    strategy=strategy, budget=budget,
                )
                result = EvalResult(
                    value=big.value, ee=big.ee, oe=big.oe, steps=0,
                    effect=big.effect, engine="bigstep",
                )
            elif engine == "reduction":
                result = evaluate(
                    self.machine, base_ee, base_oe, q,
                    strategy=strategy, max_steps=max_steps, budget=budget,
                )
            else:
                raise ValueError(f"unknown engine {engine!r}")
            if _OBS.enabled:
                ev_sp.set(steps=result.steps, effect=str(result.effect))
                if budget is not None:
                    if budget.max_steps is not None:
                        _METRICS.gauge("budget_steps_remaining").set(
                            budget.remaining_steps()
                        )
                    if budget.max_new_objects is not None:
                        _METRICS.gauge("budget_objects_remaining").set(
                            budget.remaining_objects()
                        )
        if commit:
            with _span("commit") as c_sp:
                maybe_fault("commit")
                if _OBS.enabled:
                    new_objects = len(result.oe) - len(self.oe)
                    _METRICS.counter("commits_total").inc()
                    if new_objects > 0:
                        _METRICS.counter("committed_objects_total").inc(
                            new_objects
                        )
                    _METRICS.gauge("live_objects").set(len(result.oe))
                    c_sp.set(
                        objects=len(result.oe), new_objects=new_objects
                    )
                with self._commit_lock:
                    pre = self._state_version
                    if result.effect.writes():
                        # flight-record before the append so the ring
                        # shows commit intent → fault → detach in order
                        _flight.record(
                            "commit",
                            stmt=pretty(q)[:200],
                            effect=str(result.effect),
                            version=pre,
                        )
                    if (
                        self._shards.enabled
                        and result.effect.writes()
                        and not result.effect.updates()
                    ):
                        # A-only commit with sharding on: per-shard
                        # delta install instead of wholesale replacement
                        self._install_sharded(
                            pretty(q), result.effect,
                            base_ee, base_oe, result.ee, result.oe, pre,
                        )
                    else:
                        if self._wal is not None and result.effect.writes():
                            # write-ahead: the record must be durable
                            # before the state it describes becomes
                            # observable; a failed append fails the
                            # commit with nothing installed, so log and
                            # memory always agree
                            lsn = self._wal.append(
                                self._wal_commit_record(
                                    pretty(q), result.effect,
                                    result.ee, result.oe,
                                )
                            )
                            self._mark_written(lsn, result.effect)
                        # OE before EE: a concurrent snapshot reader
                        # loads ee then oe, so this order can never pair
                        # a new extent set with an object env missing
                        # its members
                        self.oe = result.oe
                        self.ee = result.ee
                        adds = None
                        if (
                            result.effect.adds()
                            and not result.effect.updates()
                        ):
                            # A-only: the new members per extent are
                            # exactly the EE delta (Theorem 5 bounds the
                            # touched extents by the static A atoms), so
                            # the stats catalog can fold them in rather
                            # than rebuild from scratch
                            adds = {
                                self.schema.class_extent(c): (
                                    result.ee.members(
                                        self.schema.class_extent(c)
                                    )
                                    - base_ee.members(
                                        self.schema.class_extent(c)
                                    )
                                )
                                for c in result.effect.adds()
                            }
                        self._note_write(result.effect, pre, adds=adds)
                if self._active_txn is not None:
                    self._active_txn.record(result.effect)
        return result

    def _run_compiled(
        self, decision: PlanDecision, *, budget: Budget | None
    ) -> EvalResult:
        """Execute (or replay from the result cache) a compiled plan."""
        entry = decision.entry
        version = self._state_version
        if entry.result is not None and entry.result_version == version:
            self._qstats["result_cache_hits"] += 1
            if _OBS.enabled:
                _METRICS.counter("exec_result_cache_hits_total").inc()
            return EvalResult(
                value=entry.result,
                ee=self.ee,
                oe=self.oe,
                steps=entry.result_steps,
                effect=entry.result_effect,
                engine="compiled",
            )
        trace: dict = {}
        value, effect, ops = execute_plan(
            self, entry, budget=budget, trace=trace
        )
        entry.result = value
        entry.result_effect = effect
        entry.result_steps = ops
        entry.result_version = version
        # the dynamic (class, shard) read trace keys the result under
        # per-shard invalidation (PlanCache.note_write shard_writes)
        entry.result_shard_reads = trace.get("shard_reads")
        if _OBS.enabled:
            _METRICS.counter("exec_compiled_total").inc()
            _METRICS.counter("exec_ops_total").inc(ops)
        return EvalResult(
            value=value,
            ee=self.ee,
            oe=self.oe,
            steps=ops,
            effect=effect,
            engine="compiled",
        )

    def _run_snapshot(
        self,
        q: Query,
        ee: ExtentEnv,
        oe: ObjectEnv,
        *,
        budget: Budget | None = None,
        strategy: Strategy = FIRST,
    ) -> EvalResult:
        """Evaluate a read-only query against a pinned ``(ee, oe)`` pair.

        The scheduler's routed reads use this: the pair was captured at
        admission (before any batch writer ran), so the answer is the
        sequential one regardless of what this database — typically a
        replica that kept applying shipped records — has installed
        since.  Never commits, never touches the live caches' results.
        """
        decision = self.plan_decision(q)
        if decision.engine == "compiled":
            value, effect, ops = execute_plan(
                self, decision.entry, budget=budget, ee=ee, oe=oe
            )
            return EvalResult(
                value=value, ee=ee, oe=oe, steps=ops,
                effect=effect, engine="compiled",
            )
        from repro.semantics.bigstep import evaluate_bigstep

        big = evaluate_bigstep(
            self.machine, ee, oe, q, strategy=strategy, budget=budget
        )
        return EvalResult(
            value=big.value, ee=big.ee, oe=big.oe, steps=0,
            effect=big.effect, engine="bigstep",
        )

    def plan_decision(self, source: str | Query) -> PlanDecision:
        """Which engine ``run(engine="auto")`` would pick, and why.

        ``"compiled"`` exactly when the Figure 3 effect system proves
        the query's write effect empty (so Theorem 4 applies: every
        schedule — including the compiled set-at-a-time operator
        order — yields the same observables) and the plan compiler
        covers its syntax.  The decision object carries the compiled
        plan's operator notes for ``.explain``.
        """
        return _decide_engine(self, self.parse(source))

    # -- sharding ----------------------------------------------------------
    def shard(self, cname: str, *, k: int = 8, by: str | None = None):
        """Partition ``cname``'s extent into ``k`` hash shards.

        ``by=None`` hashes object identity (oids); ``by="attr"``
        hashes that attribute's value, which lets the compiled engine
        prune equality-predicate scans to a single shard and lets the
        per-``(class, shard)`` caches survive writes to other shards.
        Re-declaring replaces the previous layout.  Commits touching a
        sharded extent install per-shard (see ``docs/PERFORMANCE.md``);
        results and final states are provably identical to the
        unsharded database.  The spec is persisted by checkpoints, not
        by the WAL — re-declare after a WAL-only recovery.
        """
        from repro.db.shards import validate_spec

        self._check_fenced()
        spec = validate_spec(self.schema, cname, by, k)
        with self._commit_lock:
            self._shards.set_spec(spec)
            # plans compiled without the spec carry no pruning stage;
            # recompiling is cheap and the layout change is rare
            self._plan_cache.clear()
            # closure indexes record partition signatures; a new layout
            # invalidates them wholesale rather than lazily per lookup
            self._closure_indexes.clear()
        return spec

    def explain_cost(self, source: str | Query):
        """A TD2-style distributed cost report for one query.

        Estimates, per extent access, how many shards the compiled
        plan would touch, the rows scanned after shard pruning, the
        predicate selectivities applied, and the rows/bytes moved at
        each merge point — without executing the query.  Returns a
        :class:`~repro.exec.cost_report.CostReport` whose ``render()``
        pretty-prints and whose ``to_dict()`` is JSON-safe (the shell's
        ``.explain cost``).
        """
        from repro.exec.cost_report import build_cost_report

        return build_cost_report(self, self.parse(source))

    def _note_failure(self, exc: Exception, reason: str | None = None) -> None:
        """Count one failed :meth:`run` and dump the flight ring.

        The dump lands next to the WAL when one is attached (the same
        place a crash post-mortem would look); an in-memory database
        has nowhere durable to write, so only the counters move.
        """
        self._qstats["failures"] += 1
        if reason is None:
            if isinstance(exc, BudgetExceeded):
                self._qstats["budget_exhausted"] += 1
                reason = "budget-exhausted"
            else:
                reason = "query-error"
        elif isinstance(exc, BudgetExceeded):
            self._qstats["budget_exhausted"] += 1
        if _flight.crash_dump(reason, error=exc, directory=self._wal_dir):
            self._qstats["crash_dumps"] += 1

    def explain_analyze(
        self,
        source: str | Query,
        *,
        budget: Budget | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> "QueryProfile":
        """Run ``source`` with per-operator instrumentation; never commits.

        Compiled-engine queries come back as a tree of operator nodes,
        each carrying the optimizer's *estimated* cardinality next to
        the *actual* row count and self/total time — the
        estimated-vs-actual comparison ``.explain`` alone cannot give.
        Queries the compiler refuses fall back to the reduction
        machine and report a reduction-rule histogram instead of an
        operator tree.  :meth:`~repro.obs.profile.QueryProfile.render`
        pretty-prints; ``profile_dict()`` is the machine-readable form.
        """
        from repro.obs import events as _events
        from repro.obs.profile import QueryProfile, build_nodes

        q = self.parse(source)
        self.typecheck(q)
        src_text = source if isinstance(source, str) else pretty(q)
        decision = self.plan_decision(q)
        if decision.engine == "compiled":
            from repro.exec.engine import compile_profiled, execute_profiled

            plan, normalised, model = compile_profiled(self, q)
            value, ctx, run, elapsed = execute_profiled(
                self, plan, budget=budget
            )
            items = getattr(value, "items", None)
            rows = len(items) if items is not None else 1
            nodes = build_nodes(plan.ops, run, result_rows=rows)
            return QueryProfile(
                query=src_text,
                engine="compiled",
                elapsed_s=elapsed,
                fuel=ctx.ops,
                effect=str(ctx.effect()),
                est_cost=model.eval_cost(normalised),
                actual_steps=ctx.ops,
                nodes=nodes,
                summary={
                    "rows": rows,
                    "scans": run.scans,
                    "index_lookups": run.index_lookups,
                    "plan_notes": list(plan.notes),
                    "decision": decision.reason,
                },
                value=value,
            )
        from repro.optimizer.cost import CostModel
        from time import perf_counter

        with _events.capture() as captured:
            t0 = perf_counter()
            result = evaluate(
                self.machine, self.ee, self.oe, q,
                strategy=FIRST, max_steps=max_steps, budget=budget,
            )
            elapsed = perf_counter() - t0
        rules: dict[str, int] = {}
        for ev in captured:
            rules[ev.rule] = rules.get(ev.rule, 0) + 1
        return QueryProfile(
            query=src_text,
            engine="reduction",
            elapsed_s=elapsed,
            fuel=result.steps,
            effect=str(result.effect),
            est_cost=CostModel.from_database(self).eval_cost(q),
            actual_steps=result.steps,
            nodes=[],
            summary={
                "rows": len(getattr(result.value, "items", ()) or ())
                or 1,
                "rules": rules,
                "decision": decision.reason,
            },
            value=result.value,
        )

    def health(self) -> dict:
        """A point-in-time health snapshot of every subsystem.

        Nested dict (see ``docs/OBSERVABILITY.md`` for the field
        reference): plan/result-cache hit rates, WAL applied LSN and
        fsync latency percentiles, last scheduler batch, flight
        recorder stats, index versions, fault counters.  When obs is
        enabled the scalar fields are mirrored into the metrics
        registry as gauges for the Prometheus exporter.
        """
        from repro.db import health as _health

        h = _health.collect(self)
        if _OBS.enabled:
            _health.export_gauges(h)
        return h

    def analyze(self) -> dict:
        """Eagerly build optimizer statistics for every column.

        Scans each extent once per attribute, populating the
        per-(extent, attribute) distinct counts and integer histograms
        the cost model's selectivity estimates consume (the shell's
        ``.analyze``).  Stats also build lazily on first use, so this
        is an optional warm-up, not a prerequisite.  Returns a
        JSON-safe summary keyed ``"Extent.attr"``.
        """
        return self._stats.analyze(
            self.schema, self.ee, self.oe, self._state_version
        )

    def transaction(self) -> Transaction:
        """A multi-statement, all-or-nothing scope (context manager).

        Statements commit as they execute; leaving the ``with`` block on
        an exception (or calling :meth:`Transaction.rollback`) restores
        every extent/object/definition the transaction's accumulated
        effect names to its entry state.  Effect-guided: state outside
        R ∪ A (∪ U) of the executed statements is provably untouched
        (Theorem 5) and is not copied or restored.
        """
        return Transaction(self)

    def query(self, source: str | Query, **kw: Any) -> EvalResult:
        """Alias of :meth:`run` (reads nicely at call sites)."""
        return self.run(source, **kw)

    # -- concurrent sessions (repro.sched) --------------------------------
    def run_many(
        self,
        sources,
        *,
        workers: int = 4,
        budget: Budget | None = None,
        retry: RetryPolicy | None = None,
        atomic: bool = False,
    ):
        """Run a batch of queries concurrently, observably as-if serial.

        Admits every query (parse + Figure 3 effect inference) in list
        order, builds the conflict graph over the static effects
        (:meth:`Effect.interferes_with` plus the scheduler's
        writer/update coarsening), then runs non-conflicting queries in
        parallel on ``workers`` threads: read-only queries evaluate
        against the immutable EE/OE snapshot they were scheduled
        against, and conflicting queries — in particular all writers —
        serialise in admission order.  Theorems 7/8 are what make the
        interleaving invisible: the results and the final EE/OE equal a
        sequential run of the same list (up to the oid bijection ∼ of
        ``new``-containing queries).  Returns a
        :class:`repro.sched.BatchResult`.
        """
        from repro.sched import QueryScheduler

        return QueryScheduler(
            self, workers=workers, budget=budget, retry=retry, atomic=atomic
        ).run(list(sources))

    def session(self, *, workers: int = 4, budget: Budget | None = None,
                retry: RetryPolicy | None = None, atomic: bool = False):
        """A :class:`repro.sched.Session`: submit queries from many
        callers, then :meth:`~repro.sched.Session.dispatch` them as one
        scheduled batch (context-manager form dispatches on exit)."""
        from repro.sched import Session

        return Session(
            self, workers=workers, budget=budget, retry=retry, atomic=atomic
        )

    def explore(
        self,
        source: str | Query,
        *,
        max_steps: int = 10_000,
        max_paths: int = 100_000,
        typecheck: bool = True,
        budget: Budget | None = None,
    ) -> Exploration:
        """Enumerate every reduction order (never commits).

        A spent ``budget`` truncates the exploration (the result is
        marked ``truncated``) instead of raising — exploration answers a
        question about the schedule space, and a partial answer is
        still an answer.
        """
        q = self.parse(source)
        if typecheck:
            self.typecheck(q)
        return explore(
            self.machine, self.ee, self.oe, q,
            max_steps=max_steps, max_paths=max_paths, budget=budget,
        )

    # -- state management ----------------------------------------------------
    def snapshot(self) -> Snapshot:
        """An immutable copy of the current state."""
        return Snapshot(self.ee, self.oe, tuple(self._definitions.values()))

    def restore(self, snap: Snapshot) -> None:
        """Return to a snapshot (environments are immutable: O(1)).

        The EE/OE assignments bump the store version, lazily
        invalidating every cached result/index; the definitions are
        rebuilt, so compiled plans against the old DE are retired too.
        """
        self.ee = snap.ee
        self.oe = snap.oe
        self._defs_version += 1
        self._definitions.clear()
        self._def_types.clear()
        for d in snap.definitions:
            self._definitions[d.name] = d
            self._def_types[d.name] = EffectChecker().check_definition(
                TypeContext(self.schema, defs=dict(self._def_types)), d
            )
        self.machine.defs = self._definitions
        # a restore has no static effect to bound a delta: journal the
        # whole state so recovery lands on the restored prefix
        self._wal_log_unattributed("restore")

    def extent(self, name: str) -> frozenset[str]:
        """The oids currently in an extent."""
        return self.ee.members(name)

    def attr(self, oid: OidRef | str, name: str) -> Query:
        """Read one attribute of a live object."""
        key = oid.name if isinstance(oid, OidRef) else oid
        return self.oe.get(key).attr(name)


# Re-exported conversions (defined next to the value grammar).
from repro.lang.values import from_value, to_value  # noqa: E402  (re-export)
