"""The runtime database: EE/OE environments, oid supply, and the façade."""

from repro.db.database import Database, Snapshot
from repro.db.persistence import PersistenceError, load, save
from repro.db.recovery import RecoveryResult, recover
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord, OidSupply, populate
from repro.db.wal import WalError, WriteAheadLog

__all__ = [
    "Database", "ExtentEnv", "ObjectEnv", "ObjectRecord", "OidSupply",
    "PersistenceError", "RecoveryResult", "Snapshot", "WalError",
    "WriteAheadLog", "load", "populate", "recover", "save",
]
