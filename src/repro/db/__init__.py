"""The runtime database: EE/OE environments, oid supply, and the façade."""

from repro.db.database import Database, Snapshot
from repro.db.persistence import load, save
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord, OidSupply, populate

__all__ = [
    "Database", "ExtentEnv", "ObjectEnv", "ObjectRecord", "OidSupply",
    "Snapshot", "load", "populate", "save",
]
