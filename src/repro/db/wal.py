"""An effect-guided write-ahead log for :class:`~repro.db.Database`.

A database saved only by :func:`repro.db.persistence.save` loses every
commit since the last full dump when the process dies.  The WAL closes
that window: every commit appends one **length-prefixed, checksummed**
record *before* the new EE/OE is installed, so a crash at any byte
boundary loses at most the commits whose records never reached the
disk — recovery (:mod:`repro.db.recovery`) replays the intact prefix
and truncates the torn tail.

The §4 effect system is what makes the log *cheap*.  By Theorem 5 the
dynamic trace of a committed statement is a subeffect of its static
effect ε, so the physical delta of an ``A(C)``-only commit is bounded
by the extents the ``A`` atoms name: the record carries just those
extents' new memberships plus the records of the objects that joined
them.  A commit whose effect contains a ``U`` atom forces a **full**
delta instead — attribute reads carry no effect atom (the §5
reference-chasing caveat, the same coarsening :mod:`repro.sched`
applies), so no smaller bound exists.  Unattributed state changes
(transaction rollback, :meth:`Database.restore`) likewise log full
records.

On-disk format (``wal.log``)::

    8-byte header  b"IOQLWAL\\x01"
    record*        4-byte BE payload length
                   4-byte BE CRC32 of the payload
                   payload: UTF-8 JSON (one commit)

Each payload carries a monotone ``lsn``; a checkpoint remembers the
highest LSN it folded, so recovery after a crash *between* writing a
new checkpoint and truncating the log simply skips the already-folded
records.  Readers come in two flavours: :func:`read_records` is strict
(any corruption raises :class:`WalError` — a checksummed log never
yields a silently wrong store) and :func:`scan` is tolerant (it returns
the valid prefix plus the byte offset where it ends, which is what
crash recovery truncates to).

Append failure is self-repairing: if an injected ``wal.append`` /
``wal.fsync`` fault (or a real I/O error) interrupts an append, the
file is truncated back to its pre-append length before the exception
propagates — the caller's commit fails, and the log agrees that it
never happened.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ReproError
from repro.obs import flight as _flight
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.resilience.faults import maybe_fault

MAGIC = b"IOQLWAL\x01"
_FRAME = struct.Struct(">II")  # payload length, CRC32(payload)

#: Hard cap on one record's payload; a longer length prefix is corruption.
MAX_RECORD_BYTES = 256 * 1024 * 1024


class WalError(ReproError):
    """A write-ahead log file is corrupt, torn, or unusable."""


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(raw: bytes, offset: int) -> dict:
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalError(
            f"record at byte {offset}: checksummed payload is not JSON "
            f"({exc})"
        ) from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("lsn"), int):
        raise WalError(
            f"record at byte {offset}: payload is not a WAL record object"
        )
    return doc


class WriteAheadLog:
    """Appender over one ``wal.log`` file.

    The writer keeps the file open in binary append mode and assigns
    each record the next LSN.  ``sync=True`` (the default) fsyncs every
    record — the durability the crash-point sweep certifies;
    ``sync=False`` only flushes to the OS, trading the tail of an
    OS-level crash for latency (a torn tail still recovers to a prefix
    either way).
    """

    def __init__(self, path: str, *, next_lsn: int = 1, sync: bool = True):
        self.path = os.path.abspath(path)
        self.sync = sync
        self._next_lsn = next_lsn
        # recent fsync latencies (seconds), always on: the health
        # surface reports exact p50/p99 from here even with obs off
        self.fsync_times: deque = deque(maxlen=256)
        existing = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        self._fh = open(self.path, "ab")
        if existing == 0:
            self._fh.write(MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record (0 if none)."""
        return self._next_lsn - 1

    def size(self) -> int:
        """Current on-disk length in bytes (header included)."""
        self._fh.flush()
        return os.path.getsize(self.path)

    # -- writing ---------------------------------------------------------
    def append(self, record: dict[str, Any]) -> int:
        """Frame ``record``, append it, make it durable; returns its LSN.

        The record dict must not already carry an ``lsn`` — the log owns
        numbering.  On *any* failure past the ``wal.append`` fault site
        the file is truncated back to its pre-append length, so a failed
        commit leaves no half-record behind.
        """
        if self._fh.closed:
            raise WalError("write-ahead log is closed")
        lsn = self._next_lsn
        record = dict(record)
        record["lsn"] = lsn
        payload = json.dumps(
            record, ensure_ascii=False, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        frame = _frame(payload)
        start = self._fh.tell()
        fsync_s: float | None = None
        try:
            maybe_fault("wal.append")
            self._fh.write(frame)
            self._fh.flush()
            maybe_fault("wal.fsync")
            if self.sync:
                t0 = time.monotonic()
                os.fsync(self._fh.fileno())
                fsync_s = time.monotonic() - t0
                self.fsync_times.append(fsync_s)
        except BaseException as exc:
            # self-repair: the commit is failing, so the log must agree
            # that it never happened
            try:
                self._fh.truncate(start)
                self._fh.seek(start)
            except OSError as oserr:  # pragma: no cover - disk-level failure
                self._fh.close()
                raise WalError(
                    f"wal append failed and the partial record could not "
                    f"be removed: {oserr}"
                ) from oserr
            # black box: the failed append plus everything that led to
            # it (the commit's effect, the injected fault) hits disk
            # next to the log it concerns
            _flight.record(
                "wal-append-failed",
                lsn=lsn,
                kind=record.get("kind", "?"),
                error=f"{type(exc).__name__}: {exc}",
            )
            _flight.crash_dump(
                "wal-append-failed",
                error=exc,
                directory=os.path.dirname(self.path),
            )
            raise
        self._next_lsn = lsn + 1
        _flight.record(
            "wal-append",
            lsn=lsn,
            kind=record.get("kind", "?"),
            bytes=len(frame),
        )
        if _OBS.enabled:
            _METRICS.counter("wal_records_total", kind=record.get("kind", "?")).inc()
            _METRICS.counter("wal_bytes_total").inc(len(frame))
            if self.sync:
                _METRICS.counter("wal_fsyncs_total").inc()
                if fsync_s is not None:
                    _METRICS.histogram("wal_fsync_seconds").observe(fsync_s)
        return lsn

    def reset(self, *, next_lsn: int | None = None) -> None:
        """Truncate the log back to its header (checkpoint folding).

        LSNs keep counting monotonically unless explicitly restarted —
        a crash between checkpoint and reset must leave the folded
        records recognisably *old* (LSN ≤ the checkpoint's).
        """
        if self._fh.closed:
            raise WalError("write-ahead log is closed")
        self._fh.truncate(len(MAGIC))
        self._fh.seek(len(MAGIC))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if next_lsn is not None:
            self._next_lsn = next_lsn


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def scan(path: str) -> tuple[list[dict], int, WalError | None]:
    """Tolerantly read ``path``: ``(records, valid_bytes, error)``.

    ``records`` is the longest prefix of intact records, ``valid_bytes``
    the file offset just past the last of them (where crash recovery
    truncates), and ``error`` describes the first torn/corrupt record —
    ``None`` when the whole file is intact.  A missing file is an empty
    log.  Only a corrupt *header* is unrecoverable (there is no valid
    prefix to keep) and raises.
    """
    if not os.path.exists(path):
        return [], 0, None
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < len(MAGIC) or raw[: len(MAGIC)] != MAGIC:
        raise WalError(
            f"{path}: not a write-ahead log (bad or truncated header)"
        )
    records: list[dict] = []
    offset = len(MAGIC)
    while offset < len(raw):
        try:
            record, end = _read_one(raw, offset)
        except WalError as exc:
            return records, offset, exc
        records.append(record)
        offset = end
    return records, offset, None


def _read_one(raw: bytes, offset: int) -> tuple[dict, int]:
    if offset + _FRAME.size > len(raw):
        raise WalError(f"record at byte {offset}: torn frame header")
    length, crc = _FRAME.unpack_from(raw, offset)
    if length > MAX_RECORD_BYTES:
        raise WalError(
            f"record at byte {offset}: implausible length {length} "
            f"(corrupt length prefix)"
        )
    body_start = offset + _FRAME.size
    body_end = body_start + length
    if body_end > len(raw):
        raise WalError(
            f"record at byte {offset}: torn payload "
            f"({body_end - len(raw)} byte(s) missing)"
        )
    payload = raw[body_start:body_end]
    if zlib.crc32(payload) != crc:
        raise WalError(f"record at byte {offset}: checksum mismatch")
    return _decode_payload(payload, offset), body_end


@dataclass(frozen=True)
class TailResult:
    """One :func:`tail` poll: the intact frames past a byte offset.

    ``offset`` is the position just past the last intact record — the
    next poll's starting point.  ``reset=True`` means the file shrank
    below the requested offset (a checkpoint folded the log); the
    caller's offset is meaningless and it must resynchronise from the
    checkpoint.  ``error`` is the first torn/corrupt frame at
    ``offset`` — for a live log that is usually an append still in
    flight, which the next poll will see completed; a *persistent*
    error while the file keeps growing is mid-file corruption.
    """

    records: tuple[dict, ...]
    offset: int
    size: int
    reset: bool = False
    error: WalError | None = None


def tail(path: str, offset: int) -> TailResult:
    """Incrementally read intact frames of ``path`` from byte ``offset``.

    This is the replication shipper's reader: tolerant like
    :func:`scan`, but resumable — it never re-reads shipped frames and
    never mutates the file (the primary owns repair).  A missing file
    or one shorter than ``offset`` reports ``reset`` rather than
    raising: both mean the stream the offset referred to is gone.
    """
    if not os.path.exists(path):
        return TailResult((), len(MAGIC), 0, reset=offset > len(MAGIC))
    with open(path, "rb") as fh:
        raw = fh.read()
    size = len(raw)
    if size < len(MAGIC) or raw[: len(MAGIC)] != MAGIC:
        raise WalError(
            f"{path}: not a write-ahead log (bad or truncated header)"
        )
    offset = max(offset, len(MAGIC))
    if size < offset:
        return TailResult((), offset, size, reset=True)
    records: list[dict] = []
    error: WalError | None = None
    while offset < size:
        try:
            record, end = _read_one(raw, offset)
        except WalError as exc:
            error = exc
            break
        records.append(record)
        offset = end
    return TailResult(tuple(records), offset, size, error=error)


def read_records(path: str) -> list[dict]:
    """Strictly read every record of ``path``.

    Any torn or corrupt record — including a torn tail that recovery
    would silently truncate — raises :class:`WalError`.  This is the
    audit-grade reader; recovery uses :func:`scan`.
    """
    records, _, error = scan(path)
    if error is not None:
        raise error
    return records


def iter_records(path: str) -> Iterator[dict]:
    """Iterate :func:`read_records` (strict)."""
    return iter(read_records(path))


def truncate_to(path: str, valid_bytes: int) -> None:
    """Chop a torn tail off ``path`` (idempotent; fsyncs the result)."""
    size = os.path.getsize(path)
    if size <= valid_bytes:
        return
    with open(path, "r+b") as fh:
        fh.truncate(max(valid_bytes, len(MAGIC)))
        fh.flush()
        os.fsync(fh.fileno())
