"""Saving and loading databases — making the "heart of the database"
durable.

The paper's EE/OE environments live only for a derivation; a library a
downstream user adopts needs them on disk.  The format is a single
JSON document containing:

* the ODL source of the schema (the schema is re-parsed and
  re-validated on load — well-formedness is checked again, not
  trusted);
* every object of OE as ``{"class": C, "attrs": {...}}`` with values in
  a tagged JSON encoding (oids, sets, bags, lists and records nest);
* every extent of EE as its member list;
* the query definitions as their concrete syntax (re-parsed and
  re-type-checked on load).

Because values are re-validated through the same constructors the
machine uses, a corrupted file fails loudly at load time rather than
poisoning later reductions.  MJava method bodies travel inside the ODL
source; native Python methods cannot be serialised — saving a database
whose schema binds native methods raises, listing them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any

from repro.errors import EvalError, ReproError
from repro.resilience.faults import maybe_fault
from repro.lang.ast import (
    BagLit,
    BoolLit,
    IntLit,
    ListLit,
    OidRef,
    Query,
    RecordLit,
    SetLit,
    StrLit,
)
from repro.lang.values import make_bag_value, make_set_value
from repro.methods.ast import AccessMode, NativeMethod
from repro.db.database import Database
from repro.db.store import ObjectRecord

FORMAT_VERSION = 1

#: Key holding the dump's integrity digest (SHA-256 over the canonical
#: serialisation of the rest of the document).  JSON itself detects torn
#: files but not bit rot *inside* string/number payloads — without a
#: digest a flipped bit in an attribute value would load as a silently
#: wrong store.  Docs written before the digest existed still load.
INTEGRITY_KEY = "integrity"


class PersistenceError(ReproError):
    """Raised on unserialisable databases or malformed dump files."""


def _canonical(doc: dict) -> bytes:
    return json.dumps(
        doc, ensure_ascii=False, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def seal_document(doc: dict) -> dict:
    """Return a copy of ``doc`` carrying its integrity digest."""
    body = {k: v for k, v in doc.items() if k != INTEGRITY_KEY}
    sealed = dict(body)
    sealed[INTEGRITY_KEY] = hashlib.sha256(_canonical(body)).hexdigest()
    return sealed


def verify_document(doc: dict) -> None:
    """Check ``doc``'s digest; absent digests pass (pre-digest dumps)."""
    if INTEGRITY_KEY not in doc:
        return
    body = {k: v for k, v in doc.items() if k != INTEGRITY_KEY}
    want = doc[INTEGRITY_KEY]
    got = hashlib.sha256(_canonical(body)).hexdigest()
    if got != want:
        raise PersistenceError(
            "dump integrity digest mismatch: the file is corrupt "
            f"(expected {want!r}, recomputed {got!r})"
        )


# ---------------------------------------------------------------------------
# value <-> JSON
# ---------------------------------------------------------------------------


def value_to_json(v: Query) -> Any:
    """Encode a value as tagged JSON."""
    if isinstance(v, IntLit):
        return {"t": "int", "v": v.value}
    if isinstance(v, BoolLit):
        return {"t": "bool", "v": v.value}
    if isinstance(v, StrLit):
        return {"t": "str", "v": v.value}
    if isinstance(v, OidRef):
        return {"t": "oid", "v": v.name}
    if isinstance(v, SetLit):
        return {"t": "set", "v": [value_to_json(i) for i in v.items]}
    if isinstance(v, BagLit):
        return {"t": "bag", "v": [value_to_json(i) for i in v.items]}
    if isinstance(v, ListLit):
        return {"t": "list", "v": [value_to_json(i) for i in v.items]}
    if isinstance(v, RecordLit):
        return {
            "t": "rec",
            "v": [[l, value_to_json(q)] for l, q in v.fields],
        }
    raise PersistenceError(f"not a serialisable value: {v!r}")


def value_from_json(doc: Any) -> Query:
    """Decode tagged JSON back into a canonical value."""
    try:
        tag, payload = doc["t"], doc["v"]
    except (TypeError, KeyError) as exc:
        raise PersistenceError(f"malformed value document: {doc!r}") from exc
    if tag == "int":
        return IntLit(int(payload))
    if tag == "bool":
        return BoolLit(bool(payload))
    if tag == "str":
        return StrLit(str(payload))
    if tag == "oid":
        return OidRef(str(payload))
    if tag == "set":
        return make_set_value(value_from_json(i) for i in payload)
    if tag == "bag":
        return make_bag_value(value_from_json(i) for i in payload)
    if tag == "list":
        return ListLit(tuple(value_from_json(i) for i in payload))
    if tag == "rec":
        return RecordLit(
            tuple((l, value_from_json(q)) for l, q in payload)
        )
    raise PersistenceError(f"unknown value tag {tag!r}")


# ---------------------------------------------------------------------------
# database <-> JSON document
# ---------------------------------------------------------------------------


def dump_database(db: Database, odl_source: str) -> dict:
    """Serialise a database to a JSON-able document.

    ``odl_source`` is the ODL text the schema was built from (the
    schema object does not retain its source); it is embedded verbatim
    and re-parsed on load.
    """
    natives = [
        f"{cname}.{m.name}"
        for cname, cd in sorted(db.schema.classes.items())
        for m in cd.methods
        if isinstance(m.body, NativeMethod)
    ]
    if natives:
        raise PersistenceError(
            "cannot serialise native Python methods: " + ", ".join(natives)
        )
    objects = {
        oid: {
            "class": rec.cname,
            "attrs": {a: value_to_json(v) for a, v in rec.attrs},
        }
        for oid, rec in db.oe.items()
    }
    extents = {
        e: sorted(db.ee.members(e)) for e in sorted(db.ee.names())
    }
    from repro.lang.pprint import pretty_definition

    doc = {
        "format": FORMAT_VERSION,
        "odl": odl_source,
        "method_mode": db.method_mode.value,
        "objects": objects,
        "extents": extents,
        "definitions": [
            pretty_definition(d) for d in db.definitions.values()
        ],
    }
    shards = getattr(db, "_shards", None)
    if shards is not None and shards.enabled:
        # layout only — the partition itself is recomputed on load.
        # Shard declarations travel in checkpoints, not the WAL, so a
        # WAL-only recovery must re-declare (see Database.shard).
        doc["sharding"] = [
            {"class": spec.cname, "by": spec.by, "k": spec.k}
            for spec in sorted(
                shards.specs.values(), key=lambda s: s.cname
            )
        ]
    return doc


def load_database(doc: dict) -> Database:
    """Rebuild a database from a document produced by :func:`dump_database`.

    Everything is re-validated: the schema re-parses, every object's
    attributes must be values of the right attribute set, extents must
    reference live objects of the right class, and definitions re-type-
    check.
    """
    if doc.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported dump format {doc.get('format')!r}"
        )
    mode = AccessMode(doc.get("method_mode", AccessMode.READ_ONLY.value))
    db = Database.from_odl(doc["odl"], method_mode=mode)
    # objects first — oids must exist before extents reference them
    oe = db.oe
    for oid, entry in sorted(doc.get("objects", {}).items()):
        cname = entry["class"]
        if cname not in db.schema:
            raise PersistenceError(f"object {oid}: unknown class {cname!r}")
        declared = [a for a, _ in db.schema.atypes(cname)]
        given = entry.get("attrs", {})
        if sorted(given) != sorted(declared):
            raise PersistenceError(
                f"object {oid}: attribute set {sorted(given)} does not "
                f"match class {cname} ({sorted(declared)})"
            )
        attrs = tuple((a, value_from_json(given[a])) for a in declared)
        try:
            oe = oe.with_object(oid, ObjectRecord(cname, attrs))
        except EvalError as exc:
            raise PersistenceError(f"object {oid}: {exc}") from exc
    db.oe = oe
    ee = db.ee
    for extent, members in sorted(doc.get("extents", {}).items()):
        if extent not in ee:
            raise PersistenceError(f"unknown extent {extent!r} in dump")
        want_class = db.schema.extent_class(extent)
        for oid in members:
            if oid not in db.oe:
                raise PersistenceError(
                    f"extent {extent!r} references missing object {oid}"
                )
            if db.oe.class_of(oid) != want_class:
                raise PersistenceError(
                    f"extent {extent!r} holds {oid} of class "
                    f"{db.oe.class_of(oid)!r}, expected {want_class!r}"
                )
            ee = ee.with_member(extent, oid)
    db.ee = ee
    for d in doc.get("definitions", []):
        db.define(d)
    for entry in doc.get("sharding", []):
        try:
            db.shard(
                entry["class"],
                k=int(entry.get("k", 8)),
                by=entry.get("by"),
            )
        except Exception as exc:
            raise PersistenceError(
                f"sharding stanza {entry!r} does not apply: {exc}"
            ) from exc
    return db


def write_document(doc: dict, path: str) -> None:
    """Seal ``doc`` with its integrity digest and write it **atomically**.

    The document is written to a temporary file in the same directory,
    flushed and fsynced, and then :func:`os.replace`\\ d into place.  A
    crash (or an injected ``persistence.save`` fault) at any point
    leaves either the old file or the new one on disk, never a torn
    mixture.  Shared by :func:`save` and the durability layer's
    checkpoints (:meth:`Database.checkpoint`).
    """
    doc = seal_document(doc)
    target = os.path.abspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        # the crash window the temp file exists to survive: the dump is
        # fully on disk but not yet visible under its real name
        maybe_fault("persistence.save")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_document(path: str) -> dict:
    """Read and verify a document written by :func:`write_document`.

    Malformed input — truncated or invalid JSON, a non-object document,
    or an integrity-digest mismatch — raises :class:`PersistenceError`,
    never a raw :class:`json.JSONDecodeError` and never a silently
    corrupted document.
    """
    maybe_fault("persistence.load")
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"not a database dump (truncated or invalid JSON): {exc}"
            ) from exc
    if not isinstance(doc, dict):
        raise PersistenceError(
            f"not a database dump: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
    verify_document(doc)
    return doc


def save(db: Database, odl_source: str, path: str) -> None:
    """Serialise ``db`` to ``path`` as sealed JSON — atomically."""
    write_document(dump_database(db, odl_source), path)


def load(path: str) -> Database:
    """Load a database saved with :func:`save`."""
    return load_database(read_document(path))


# ---------------------------------------------------------------------------
# schema -> ODL (for checkpointing databases built from Schema objects)
# ---------------------------------------------------------------------------


def schema_to_odl(schema) -> str:
    """Render a :class:`~repro.model.schema.Schema` back to ODL source.

    The dump format embeds ODL text (re-parsed and re-validated on
    load); a database built straight from a :class:`Schema` object —
    e.g. the metatheory generators' random schemas — has no retained
    source, so the durability layer reconstructs one.  Attribute
    declarations round-trip through ``str(type)``; method *bodies* do
    not survive a schema object, so schemas with methods must supply
    their original ODL text instead.
    """
    lines: list[str] = []
    for cname, cd in schema.classes.items():
        if cd.methods:
            raise PersistenceError(
                f"class {cname!r} declares methods; serialising methods "
                "needs the original ODL source (Database.from_odl keeps "
                "it — pass odl_source explicitly for hand-built schemas)"
            )
        lines.append(
            f"class {cd.name} extends {cd.superclass} (extent {cd.extent}) {{"
        )
        for a in cd.attributes:
            lines.append(f"    attribute {a.type} {a.name};")
        lines.append("}")
    return "\n".join(lines)
