"""Per-(extent, attribute) statistics for the cost-based optimizer v2.

The optimizer's original :class:`~repro.optimizer.cost.CostModel` priced
predicates with the System-R constants (0.5 default, 0.1 equality) and
collections it could not see through at a flat guess.  This module is
the catalog that replaces those constants with measurements of the live
store:

* **row counts** — read directly off the live EE (exact and cheap, so
  they are never cached);
* **distinct counts** — per (extent, attribute), exact up to
  :data:`EXACT_DISTINCT_CAP` tracked values and a KMV (k-minimum-values)
  sketch beyond that, giving the 1/distinct equality selectivity;
* **value frequencies** — exact per-value counts below the cap, frozen
  to a top-:data:`MCV_SIZE` most-common-values list beyond it, so
  equality against a known literal (and equi-joins between two
  frequency-tracked columns) are priced by measured skew instead of the
  uniform 1/distinct guess;
* **equi-depth histograms** — per integer attribute, up to
  :data:`HISTOGRAM_BUCKETS` buckets, giving range selectivities for
  ``<``/``<=``/``>``/``>=`` predicates.

Maintenance follows the Theorem 5 effect discipline that already
governs the plan/result caches and :class:`~repro.db.store.AttributeIndexes`:

* an ``A(C)``-only commit can only *grow* the extent of ``C`` — cached
  column stats for the touched extents are **folded forward** with the
  added objects' values when the commit path supplies them, otherwise
  evicted; stats on untouched extents are promoted to the new store
  version;
* any ``U`` atom may have rewritten attribute values anywhere, so every
  column stat is dropped;
* unattributed state changes (restore, rollback, recovery, replica
  installs) advance the store version without a promotion, so every
  cached column stat lazily invalidates on its next version check —
  the safe default.

Staleness of *plans* is handled by the **stats epoch**: a monotone
counter bumped whenever an extent's row count drifts geometrically
(roughly 2×) from the anchor it had when the epoch was last bumped.
Compiled plans record the epoch they were costed against
(:class:`~repro.exec.cache.PlanEntry`), and the engine treats an epoch
mismatch as a cache miss — so a generator order chosen against an empty
catalog is re-costed after the extent grows, while steady-state commits
recompile nothing (O(log n) recompiles over an n-row load).

A wrong or stale estimate can only cost performance, never answers —
correctness is carried entirely by the effect side conditions.
"""

from __future__ import annotations

import heapq
import threading
from bisect import bisect_left, bisect_right
from typing import Iterable, Mapping

from repro.db.store import column_values
from repro.lang.ast import IntLit, Query
from repro.model.schema import Schema

EXACT_DISTINCT_CAP = 4096
"""Distinct values tracked exactly before falling back to the sketch."""

SKETCH_K = 256
"""Number of minimum hashes the KMV distinct sketch retains."""

HISTOGRAM_BUCKETS = 16
"""Maximum equi-depth buckets per integer attribute."""

MCV_SIZE = 16
"""Most-common values kept once exact frequency tracking overflows."""

_HASH_SPACE = float(1 << 64)


class DistinctSketch:
    """KMV (k-minimum-values) distinct-count estimator.

    Keeps the :data:`SKETCH_K` smallest 64-bit hashes seen; the
    estimate is ``(k-1) * 2^64 / kth_smallest`` once full, exact count
    below that.  Insertion is O(log k); duplicates collapse because the
    same value hashes identically.
    """

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int = SKETCH_K):
        self.k = k
        self._heap: list[int] = []  # max-heap via negation
        self._members: set[int] = set()

    def add(self, value: Query) -> None:
        h = hash(value) & 0xFFFFFFFFFFFFFFFF
        if h in self._members:
            return
        if len(self._heap) < self.k:
            self._members.add(h)
            heapq.heappush(self._heap, -h)
            return
        largest = -self._heap[0]
        if h < largest:
            self._members.discard(largest)
            self._members.add(h)
            heapq.heapreplace(self._heap, -h)

    def estimate(self) -> float:
        n = len(self._heap)
        if n < self.k:
            return float(n)
        kth = -self._heap[0]
        if kth <= 0:
            return float(n)
        return (self.k - 1) * _HASH_SPACE / float(kth)


class ColumnStats:
    """Distinct count + optional equi-depth histogram for one column.

    Built from a full scan of the extent's live members; refined in
    place when an ``A``-only commit folds new rows forward.  ``rows``
    is the membership the stats were computed over — the live row count
    always comes from the EE, so a reader comparing the two can see
    drift.
    """

    __slots__ = (
        "extent",
        "attr",
        "rows",
        "_exact",
        "_sketch",
        "_freq",
        "_freq_frozen",
        "_bounds",
        "_counts",
        "_hist_rows",
        "_min",
        "_numeric",
    )

    def __init__(self, extent: str, attr: str):
        self.extent = extent
        self.attr = attr
        self.rows = 0
        self._exact: set[Query] | None = set()
        self._sketch: DistinctSketch | None = None
        # per-value counts: exact while the column is below the distinct
        # cap, frozen to the MCV_SIZE most common values beyond it
        self._freq: dict[Query, int] = {}
        self._freq_frozen = False
        # histogram: _bounds[i] is the inclusive upper bound of bucket i
        # (ascending); _counts[i] is the number of rows in it; _min is
        # the dataset minimum (the lower edge of bucket 0).
        self._bounds: list[int] = []
        self._counts: list[int] = []
        self._hist_rows = 0
        self._min = 0
        self._numeric = True

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls, extent: str, attr: str, oe, members: Iterable[str]
    ) -> "ColumnStats":
        stats = cls(extent, attr)
        ints: list[int] = []
        for value in column_values(oe, members, attr):
            stats._note_distinct(value)
            stats.rows += 1
            if stats._numeric:
                if isinstance(value, IntLit):
                    ints.append(value.value)
                else:
                    stats._numeric = False
        if stats._numeric and ints:
            stats._build_histogram(ints)
        return stats

    def _build_histogram(self, ints: list[int]) -> None:
        ints.sort()
        n = len(ints)
        buckets = min(HISTOGRAM_BUCKETS, n)
        bounds: list[int] = []
        counts: list[int] = []
        start = 0
        for b in range(buckets):
            end = ((b + 1) * n) // buckets
            if end <= start:
                continue
            hi = ints[end - 1]
            # merge runs of equal values into the same bucket so bounds
            # stay strictly increasing (equi-depth on distinct cuts)
            while end < n and ints[end] == hi:
                end += 1
            if bounds and bounds[-1] == hi:
                counts[-1] += end - start
            else:
                bounds.append(hi)
                counts.append(end - start)
            start = end
            if start >= n:
                break
        self._bounds = bounds
        self._counts = counts
        self._hist_rows = n
        self._min = ints[0]

    def _note_distinct(self, value: Query) -> None:
        if not self._freq_frozen:
            self._freq[value] = self._freq.get(value, 0) + 1
        elif value in self._freq:
            self._freq[value] += 1
        if self._exact is not None:
            self._exact.add(value)
            if len(self._exact) > EXACT_DISTINCT_CAP:
                sketch = DistinctSketch()
                for v in self._exact:
                    sketch.add(v)
                self._sketch = sketch
                self._exact = None
                self._freq = dict(
                    sorted(
                        self._freq.items(),
                        key=lambda kv: kv[1],
                        reverse=True,
                    )[:MCV_SIZE]
                )
                self._freq_frozen = True
        else:
            assert self._sketch is not None
            self._sketch.add(value)

    # -- incremental refinement (A-only commits) ---------------------------
    def fold(self, oe, added: Iterable[str]) -> None:
        """Fold newly added oids' values into the stats in place."""
        for value in column_values(oe, added, self.attr):
            self._note_distinct(value)
            self.rows += 1
            if not self._numeric:
                continue
            if not isinstance(value, IntLit):
                self._numeric = False
                self._bounds = []
                self._counts = []
                self._hist_rows = 0
                continue
            if self._bounds:
                i = bisect_left(self._bounds, value.value)
                if i >= len(self._bounds):
                    i = len(self._bounds) - 1
                    self._bounds[i] = value.value  # extend the top bucket
                self._counts[i] += 1
                self._hist_rows += 1
                if value.value < self._min:
                    self._min = value.value

    # -- estimates ---------------------------------------------------------
    def distinct(self) -> float:
        if self._exact is not None:
            return float(len(self._exact))
        assert self._sketch is not None
        return self._sketch.estimate()

    def eq_selectivity(self, value: Query | None = None) -> float:
        """Selectivity of ``column = value``.

        With a concrete comparand the frequency table answers: an exact
        or MCV hit is its measured count, an exact miss is ≤ one row,
        and an MCV miss spreads the residual mass uniformly over the
        non-MCV distincts.  Without one, the uniform 1/distinct guess.
        """
        d = self.distinct()
        if d <= 0.0 or self.rows <= 0:
            return 1.0
        if value is not None and self._freq:
            count = self._freq.get(value)
            if count is not None:
                return min(1.0, count / self.rows)
            if not self._freq_frozen:
                return min(1.0, 1.0 / self.rows)
            mcv_rows = sum(self._freq.values())
            rest_rows = max(0.0, float(self.rows - mcv_rows))
            rest_d = max(1.0, d - len(self._freq))
            return min(1.0, (rest_rows / rest_d) / self.rows)
        return min(1.0, 1.0 / d)

    @property
    def has_histogram(self) -> bool:
        return bool(self._bounds) and self._hist_rows > 0

    def le_fraction(self, v: int) -> float:
        """Estimated P(column <= v) from the equi-depth histogram."""
        if not self.has_histogram:
            return 0.5
        total = float(self._hist_rows)
        i = bisect_left(self._bounds, v)
        if i >= len(self._bounds):
            return 1.0
        below = sum(self._counts[:i])
        # within the containing bucket assume uniformity over its span
        lo = self._bounds[i - 1] + 1 if i > 0 else self._min
        hi = self._bounds[i]
        if v < lo:
            frac_in = 0.0
        elif hi <= lo:
            frac_in = 1.0 if v >= hi else 0.0
        else:
            frac_in = min(1.0, max(0.0, (v - lo + 1) / float(hi - lo + 1)))
        return min(1.0, (below + frac_in * self._counts[i]) / total)

    def range_selectivity(self, op: str, v: int) -> float:
        """Selectivity of ``column <op> v`` for op in <, <=, >, >=."""
        if not self.has_histogram:
            return 0.5
        if op == "<=":
            return self.le_fraction(v)
        if op == "<":
            return self.le_fraction(v - 1)
        if op == ">":
            return max(0.0, 1.0 - self.le_fraction(v))
        if op == ">=":
            return max(0.0, 1.0 - self.le_fraction(v - 1))
        return 0.5

    def to_dict(self) -> dict:
        return {
            "extent": self.extent,
            "attr": self.attr,
            "rows": self.rows,
            "distinct": round(self.distinct(), 1),
            "exact": self._exact is not None,
            "histogram_buckets": len(self._bounds),
        }


def join_selectivity(left: ColumnStats, right: ColumnStats) -> float:
    """Selectivity of ``left.col = right.col`` over the cross product.

    When both columns still carry exact frequency tables the matching
    row count is computed directly (skew-proof); otherwise the textbook
    ``1/max(distinct)`` estimate.
    """
    if (
        not left._freq_frozen
        and not right._freq_frozen
        and left._freq
        and right._freq
        and left.rows > 0
        and right.rows > 0
    ):
        small, big = (
            (left, right)
            if len(left._freq) <= len(right._freq)
            else (right, left)
        )
        matches = sum(
            c * big._freq.get(v, 0) for v, c in small._freq.items()
        )
        return min(1.0, matches / float(left.rows * right.rows))
    d = max(left.distinct(), right.distinct())
    if d <= 0.0:
        return 1.0
    return min(1.0, 1.0 / d)


class StatisticsCatalog:
    """The database's per-column statistics, effect-maintained.

    Mirrors :class:`~repro.db.store.AttributeIndexes`: column stats are
    built lazily at a store version and answer only while that version
    (or an effect-promoted successor) is current.  The catalog also owns
    the **stats epoch** used to invalidate cached plans on geometric
    row-count drift.
    """

    def __init__(self):
        self._columns: dict[tuple[str, str], tuple[int, ColumnStats]] = {}
        self._anchors: dict[str, int] = {}
        self.epoch = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._columns)

    # -- epoch -------------------------------------------------------------
    def observe(self, ee) -> int:
        """Re-anchor row counts, bumping the epoch on material drift.

        Material = roughly a 2× change (with a small absolute slack so
        tiny extents don't thrash).  Called on every plan-cache lookup
        and after every commit — O(#extents) dict work.
        """
        with self._lock:
            bumped = False
            for extent in ee.names():
                rows = len(ee.members(extent))
                anchor = self._anchors.get(extent)
                if anchor is None:
                    self._anchors[extent] = rows
                    continue
                if rows > 2 * anchor + 8 or 2 * rows + 8 < anchor:
                    self._anchors[extent] = rows
                    bumped = True
            if bumped:
                self.epoch += 1
            return self.epoch

    # -- column access -----------------------------------------------------
    def column(
        self, ee, oe, version: int, extent: str, attr: str
    ) -> ColumnStats:
        """Stats for ``extent.attr`` valid at ``version`` (lazy build)."""
        key = (extent, attr)
        with self._lock:
            hit = self._columns.get(key)
            if hit is not None and hit[0] == version:
                return hit[1]
            stats = ColumnStats.build(extent, attr, oe, ee.members(extent))
            self._columns[key] = (version, stats)
            return stats

    # -- effect-guided maintenance ----------------------------------------
    def note_write(
        self,
        schema: Schema,
        effect,
        pre: int,
        post: int,
        adds: Mapping[str, Iterable[str]] | None = None,
        oe=None,
        ee=None,
    ) -> None:
        """Theorem 5 maintenance after a committed write.

        ``adds`` maps extent name → newly added oids when the commit
        path knows them (insert, the sharded installer, the plain
        commit diff); with ``oe`` present, touched columns are folded
        forward instead of evicted.
        """
        with self._lock:
            if effect.updates():
                self._columns.clear()
            else:
                touched = set()
                for cname in effect.adds():
                    try:
                        touched.add(schema.class_extent(cname))
                    except Exception:
                        continue
                for key in list(self._columns):
                    version, stats = self._columns[key]
                    if key[0] in touched:
                        added = adds.get(key[0]) if adds is not None else None
                        if (
                            added is not None
                            and oe is not None
                            and version == pre
                        ):
                            stats.fold(oe, added)
                            self._columns[key] = (post, stats)
                        else:
                            del self._columns[key]
                    elif version == pre:
                        self._columns[key] = (post, stats)
        if ee is not None:
            self.observe(ee)

    def clear(self) -> None:
        with self._lock:
            self._columns.clear()

    # -- eager build / introspection --------------------------------------
    def analyze(self, schema: Schema, ee, oe, version: int) -> dict:
        """Eagerly build stats for every (extent, attribute) column.

        Returns a JSON-safe summary (the shell's ``.analyze``).
        """
        self.observe(ee)
        summary: dict[str, dict] = {}
        for extent in sorted(ee.names()):
            cname = ee.class_of(extent)
            try:
                attrs = schema.atypes(cname)
            except Exception:
                continue
            for attr, _ in attrs:
                try:
                    stats = self.column(ee, oe, version, extent, attr)
                except Exception:
                    continue
                summary[f"{extent}.{attr}"] = stats.to_dict()
        return summary

    def snapshot(self) -> dict:
        """Health-surface view: epoch, anchors, analyzed columns."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "anchored_extents": len(self._anchors),
                "analyzed_columns": len(self._columns),
                "columns": {
                    f"{extent}.{attr}": version
                    for (extent, attr), (version, _) in sorted(
                        self._columns.items()
                    )
                },
            }
