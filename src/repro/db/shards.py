"""Hash-sharded extents: the partition layer under per-shard commits.

An extent is logically one oid-set (§3.3); this module partitions it
*physically* across ``k`` hash shards — on the oid by default, or on a
declared attribute (``Database.shard(C, by="region", k=8)``).  The
partition is pure bookkeeping: membership, answers and the effect
system are untouched (a sharded run must be ``≡`` the unsharded run),
but three things get finer-grained:

* **commits** — an ``A``-only commit *merges* its per-shard deltas into
  the current environments instead of replacing EE/OE wholesale, under
  per-shard install versions (``shard.install`` fault site);
* **execution** — the compiled engine prunes equality-constrained scans
  to one shard and fans full scans out per-shard on a worker pool
  (:mod:`repro.exec.parallel`);
* **invalidation and freshness** — the Figure 3 atoms ``R(C)``/``A(C)``
  refine to ``(C, shard)``: Theorem 5 applied per-partition says a
  write confined to shard ``i`` cannot be observed by a read confined
  to shard ``j ≠ i``, which drives the plan/result cache, the
  scheduler's conflict graph and the replicas' per-shard watermarks.

Shard assignment must be stable across processes (shard ids travel in
WAL ``shard-delta`` records that replicas replay), so hashing uses
``zlib.crc32`` over a canonical rendering of the key — never Python's
randomised ``hash``.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

from repro.errors import ReproError
from repro.lang.ast import (
    BoolLit,
    Comp,
    DefCall,
    ExtentRef,
    Field,
    Gen,
    IntLit,
    MethodCall,
    New,
    OidRef,
    Pred,
    PrimEq,
    Query,
    StrLit,
    Var,
)
from repro.lang.traversal import walk
from repro.resilience.faults import maybe_fault

_PRIM_LITS = (IntLit, BoolLit, StrLit)


@dataclass(frozen=True)
class ShardSpec:
    """One extent's declared partitioning: ``k`` shards keyed by ``by``
    (an attribute of the class) or, when ``by is None``, by the oid."""

    cname: str
    extent: str
    k: int
    by: str | None = None

    def describe(self) -> str:
        return f"{self.extent} k={self.k} by={self.by or 'oid'}"


def shard_key(value: Query) -> str:
    """A canonical, process-independent string key for a value AST."""
    if isinstance(value, IntLit):
        return f"i:{value.value}"
    if isinstance(value, BoolLit):
        return f"b:{value.value}"
    if isinstance(value, StrLit):
        return f"s:{value.value}"
    if isinstance(value, OidRef):
        return f"o:{value.name}"
    # any other canonical value prints deterministically (frozen ASTs)
    from repro.lang.pprint import pretty

    return f"v:{pretty(value)}"


def shard_of(value: Query, k: int) -> int:
    """The shard a key value hashes to: crc32 of its canonical key."""
    return zlib.crc32(shard_key(value).encode("utf-8")) % k


def oid_shard(oid: str, k: int) -> int:
    """The shard an oid hashes to (default, attribute-less sharding)."""
    return zlib.crc32(oid.encode("utf-8")) % k


class ShardedExtents:
    """The registry of shard specs plus the cached physical partitions.

    A partition is a tuple of ``k`` frozensets whose union is the
    extent's membership, cached against the store version with the same
    validate-or-rebuild discipline as
    :class:`repro.db.store.AttributeIndexes`.  ``A``-only commits
    install by *merging* new frozensets for exactly the touched shards
    (:meth:`prepare_install` / :meth:`commit_staged`), so untouched
    shards keep their object identity — which downstream caches use as
    a free validity token.
    """

    def __init__(self) -> None:
        self.specs: dict[str, ShardSpec] = {}
        self._by_class: dict[str, ShardSpec] = {}
        # extent -> (store version the partition reflects, parts tuple)
        self._parts: dict[str, tuple[int, tuple[frozenset[str], ...]]] = {}
        # extent -> per-shard install counters (health: version skew)
        self._versions: dict[str, list[int]] = {}
        self.epoch = 0
        self.installs = 0
        self.rebuilds = 0
        self._lock = threading.RLock()

    # -- declaration -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self.specs)

    def set_spec(self, spec: ShardSpec) -> None:
        with self._lock:
            self.specs[spec.extent] = spec
            self._by_class[spec.cname] = spec
            self._parts.pop(spec.extent, None)
            self._versions[spec.extent] = [0] * spec.k
            self.epoch += 1

    def spec(self, extent: str) -> ShardSpec | None:
        return self.specs.get(extent)

    def spec_for_class(self, cname: str) -> ShardSpec | None:
        return self._by_class.get(cname)

    # -- assignment ------------------------------------------------------
    def shard_of_record(self, spec: ShardSpec, oid: str, rec) -> int:
        """Which shard a live object belongs to under ``spec``."""
        if spec.by is None:
            return oid_shard(oid, spec.k)
        return shard_of(rec.attr(spec.by), spec.k)

    # -- partitions ------------------------------------------------------
    def _split(
        self, spec: ShardSpec, members: frozenset[str], oe
    ) -> tuple[frozenset[str], ...]:
        buckets: list[set[str]] = [set() for _ in range(spec.k)]
        for oid in members:
            buckets[self.shard_of_record(spec, oid, oe.get(oid))].add(oid)
        return tuple(frozenset(b) for b in buckets)

    def partition(
        self, extent: str, ee, oe, version: int
    ) -> tuple[frozenset[str], ...] | None:
        """The shard partition of ``extent`` at ``version`` (or ``None``).

        ``None`` means the extent is unsharded or the caller holds a
        pinned snapshot (``version < 0``) — callers fall back to the
        whole-extent path, which is always correct.  A stale cached
        partition is rebuilt from the passed environments and stamped.
        """
        spec = self.specs.get(extent)
        if spec is None:
            return None
        if version < 0:
            return None
        with self._lock:
            hit = self._parts.get(extent)
            if hit is not None and hit[0] == version:
                return hit[1]
        parts = self._split(spec, ee.members(extent), oe)
        with self._lock:
            self._parts[extent] = (version, parts)
            vs = self._versions.setdefault(extent, [0] * spec.k)
            for i in range(spec.k):
                vs[i] += 1
            self.rebuilds += 1
        return parts

    # -- per-shard installs (A-only commits) -----------------------------
    def prepare_install(
        self, pre_version: int, shard_adds: dict[str, dict[int, set[str]]]
    ) -> dict[str, tuple[frozenset[str], ...] | None]:
        """Stage the post-commit partitions for the touched shards.

        Fires the ``shard.install`` fault site once per touched shard
        *before* anything durable or visible happens: an injected fault
        here aborts the whole commit with nothing logged and nothing
        installed, which is exactly the atomicity the per-shard install
        must preserve.  Returns the staged parts per extent (``None``
        when the cached partition is stale and will rebuild lazily).
        Caller must hold the database commit lock.
        """
        for extent in sorted(shard_adds):
            if extent in self.specs:
                for _shard in sorted(shard_adds[extent]):
                    maybe_fault("shard.install")
        staged: dict[str, tuple[frozenset[str], ...] | None] = {}
        with self._lock:
            for extent in sorted(shard_adds):
                spec = self.specs.get(extent)
                if spec is None:
                    continue
                hit = self._parts.get(extent)
                if hit is not None and hit[0] == pre_version:
                    parts = list(hit[1])
                    for shard, added in shard_adds[extent].items():
                        # a fresh frozenset only for touched shards: the
                        # untouched ones keep identity (cache token)
                        parts[shard] = parts[shard] | added
                    staged[extent] = tuple(parts)
                else:
                    staged[extent] = None
        return staged

    def commit_staged(
        self,
        staged: dict[str, tuple[frozenset[str], ...] | None],
        shard_adds: dict[str, dict[int, set[str]]],
        post_version: int,
    ) -> None:
        """Swap the staged partitions in after the state installed."""
        with self._lock:
            for extent, parts in staged.items():
                spec = self.specs.get(extent)
                if spec is None:
                    continue
                if parts is None:
                    self._parts.pop(extent, None)
                else:
                    self._parts[extent] = (post_version, parts)
                vs = self._versions.setdefault(extent, [0] * spec.k)
                for shard in shard_adds.get(extent, {}):
                    if 0 <= shard < len(vs):
                        vs[shard] += 1
                self.installs += 1

    # -- health ----------------------------------------------------------
    def snapshot(self, ee=None) -> dict:
        """JSON-safe health view: per-extent layout and version skew."""
        with self._lock:
            extents = {}
            for extent, spec in sorted(self.specs.items()):
                hit = self._parts.get(extent)
                sizes = [len(p) for p in hit[1]] if hit is not None else None
                versions = list(self._versions.get(extent, [0] * spec.k))
                entry = {
                    "class": spec.cname,
                    "by": spec.by or "oid",
                    "k": spec.k,
                    "shard_sizes": sizes,
                    "size_skew": (
                        max(sizes) - min(sizes) if sizes else None
                    ),
                    "shard_versions": versions,
                    "version_skew": max(versions) - min(versions),
                }
                if ee is not None and extent in ee:
                    entry["rows"] = len(ee.members(extent))
                extents[extent] = entry
            return {
                "extents": extents,
                "epoch": self.epoch,
                "installs": self.installs,
                "rebuilds": self.rebuilds,
            }


# ---------------------------------------------------------------------------
# the commit-side delta computation
# ---------------------------------------------------------------------------


def commit_deltas(
    shards: ShardedExtents,
    schema,
    base_ee,
    result_ee,
    result_oe,
    add_classes,
) -> tuple[dict[str, frozenset[str]], dict[str, dict[int, set[str]]]]:
    """What one ``A``-only evaluation added, per extent and per shard.

    Returns ``(extent_adds, shard_adds)``: the oids that joined each
    touched extent relative to the evaluation's base environments, and
    — for extents with a shard spec — the same oids bucketed by shard.
    Theorem 5 bounds the touched extents by the static ``A`` atoms, so
    this is the whole physical delta of the commit.
    """
    extent_adds: dict[str, frozenset[str]] = {}
    shard_adds: dict[str, dict[int, set[str]]] = {}
    for cname in sorted(add_classes):
        try:
            extent = schema.class_extent(cname)
        except Exception:
            continue  # extent-less class: nothing durable changed
        added = result_ee.members(extent) - base_ee.members(extent)
        extent_adds[extent] = added
        spec = shards.spec(extent)
        if spec is not None:
            per: dict[int, set[str]] = {}
            for oid in added:
                s = shards.shard_of_record(spec, oid, result_oe.get(oid))
                per.setdefault(s, set()).add(oid)
            shard_adds[extent] = per
    return extent_adds, shard_adds


# ---------------------------------------------------------------------------
# static shard analysis (Figure 3 atoms refined to (class, shard))
# ---------------------------------------------------------------------------


def _comp_constrained_shards(
    comp: Comp, gen: Gen, spec: ShardSpec
) -> frozenset[int] | None:
    """The shards a generator over a sharded extent provably stays in.

    A generator ``x <- E`` is confined to shard ``h(v)`` when the same
    comprehension carries a pure predicate ``x.by = v`` with ``v`` a
    literal — every row surviving the predicate has the shard
    attribute equal to ``v``, hence lives in that one shard, and rows
    the scan would skip are exactly rows the predicate rejects.
    Returns ``None`` when no such predicate constrains the generator.
    """
    if spec.by is None:
        return None
    shards: set[int] = set()
    for cq in comp.qualifiers:
        if not isinstance(cq, Pred):
            continue
        cond = cq.cond
        if not isinstance(cond, PrimEq):
            continue
        for fld, lit in ((cond.left, cond.right), (cond.right, cond.left)):
            if (
                isinstance(fld, Field)
                and isinstance(fld.target, Var)
                and fld.target.name == gen.var
                and fld.name == spec.by
                and isinstance(lit, _PRIM_LITS)
            ):
                shards.add(shard_of(lit, spec.k))
    return frozenset(shards) if shards else None


def static_read_shards(
    shards: ShardedExtents, schema, q: Query
) -> dict[str, frozenset[int]] | None:
    """Per-class shard sets this query's reads provably stay within.

    The returned dict maps a class name to the set of shards every
    occurrence of its extent is confined to; a class *absent* from the
    dict must be treated as reading **all** shards.  Returns ``None``
    (no refinement at all) when the query calls definitions or methods
    — their bodies read extents this syntactic walk cannot see.
    """
    if shards is None or not shards.enabled:
        return None
    if any(isinstance(n, (DefCall, MethodCall)) for n in walk(q)):
        return None
    # every ExtentRef occurrence of a sharded extent must be a
    # generator source confined by an equality on the shard attribute
    occurrences: dict[str, int] = {}
    confined: dict[str, list[frozenset[int]]] = {}
    for node in walk(q):
        if isinstance(node, ExtentRef) and shards.spec(node.name) is not None:
            occurrences[node.name] = occurrences.get(node.name, 0) + 1
    if not occurrences:
        return {}
    for node in walk(q):
        if not isinstance(node, Comp):
            continue
        gen_vars = [cq.var for cq in node.qualifiers if isinstance(cq, Gen)]
        dup_vars = len(set(gen_vars)) != len(gen_vars)
        for cq in node.qualifiers:
            if not isinstance(cq, Gen):
                continue
            src = cq.source
            if isinstance(src, ExtentRef) and src.name in occurrences:
                spec = shards.spec(src.name)
                got = (
                    None
                    if dup_vars
                    else _comp_constrained_shards(node, cq, spec)
                )
                if got is not None:
                    confined.setdefault(src.name, []).append(got)
    out: dict[str, frozenset[int]] = {}
    for extent, n in occurrences.items():
        sets = confined.get(extent, [])
        if len(sets) == n:  # every occurrence individually confined
            union: frozenset[int] = frozenset()
            for s in sets:
                union |= s
            out[schema.extent_class(extent)] = union
    return out


def static_write_shards(
    shards: ShardedExtents, schema, q: Query
) -> dict[str, frozenset[int]] | None:
    """Per-class shard sets this query's ``new``s provably stay within.

    A ``new C(..., by: lit, ...)`` with a literal shard-attribute value
    creates an object in exactly shard ``h(lit)``.  A class absent from
    the dict writes **unknown** shards (treat as all); ``None`` means
    no refinement (definitions/methods hide ``new``s from the walk).
    """
    if shards is None or not shards.enabled:
        return None
    if any(isinstance(n, (DefCall, MethodCall)) for n in walk(q)):
        return None
    out: dict[str, frozenset[int] | None] = {}
    for node in walk(q):
        if not isinstance(node, New):
            continue
        spec = shards.spec_for_class(node.cname)
        if spec is None or spec.by is None:
            continue  # unsharded or oid-sharded: shard unknowable here
        lit = None
        for label, value in node.fields:
            if label == spec.by:
                lit = value
                break
        if isinstance(lit, _PRIM_LITS):
            prev = out.get(node.cname, frozenset())
            if prev is not None:
                out[node.cname] = prev | {shard_of(lit, spec.k)}
        else:
            out[node.cname] = None  # one dynamic-keyed new poisons the class
    return {c: s for c, s in out.items() if s is not None}


def validate_spec(schema, cname: str, by: str | None, k: int) -> ShardSpec:
    """Check a ``Database.shard`` declaration against the schema."""
    if k < 1:
        raise ReproError(f"shard count must be >= 1, got {k}")
    try:
        extent = schema.class_extent(cname)
    except Exception:
        raise ReproError(
            f"class {cname!r} has no extent to shard"
        ) from None
    if by is not None:
        attrs = {name for name, _ in schema.atypes(cname)}
        if by not in attrs:
            raise ReproError(
                f"class {cname!r} has no attribute {by!r} to shard by "
                f"(attributes: {', '.join(sorted(attrs))})"
            )
    return ShardSpec(cname=cname, extent=extent, k=k, by=by)
