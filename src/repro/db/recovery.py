"""Crash recovery: checkpoint + write-ahead log → a consistent database.

The durability contract (proved by the crash-point sweep in
``tests/test_db_recovery.py``): after a crash at *any* byte boundary —
mid-record, mid-fsync, between a checkpoint and the log reset that
should follow it — :func:`recover` yields a state equal to the one
reached by some **prefix** of the committed sequence, never a torn
mixture and never a state containing a commit that was not made
durable.

The algorithm is classical redo logging, specialised to the immutable
EE/OE store:

1. read the checkpoint (a sealed :mod:`repro.db.persistence` dump plus
   a ``durability`` stanza: the LSN it folded and the oid-supply
   counter);
2. scan the log tolerantly (:func:`repro.db.wal.scan`), truncate the
   torn tail **first** — repair is idempotent, so a crash *during*
   recovery re-runs to the same state;
3. replay intact records in LSN order, skipping those the checkpoint
   already folded (``lsn ≤ checkpoint.lsn`` — the crash window between
   writing a new checkpoint and resetting the log);
4. advance the oid supply past every logged allocation, so the
   recovered database never re-issues a spent oid.

Replay applies the records' *physical* deltas (extent memberships and
object records restricted to the commit's static R∪A∪U effect, per
Theorem 5), not the logical statements — re-running queries would be
slower and needlessly re-entangles recovery with evaluation.  A record
that passes its checksum but fails semantic validation (unknown extent,
wrong attribute set, non-monotone LSN) raises
:class:`~repro.db.wal.WalError`: a checksummed log is never *silently*
wrong, only detectably damaged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db import wal as _wal
from repro.db.persistence import (
    PersistenceError,
    load_database,
    read_document,
    value_from_json,
)
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord
from repro.db.wal import WalError
from repro.errors import EvalError
from repro.obs import flight as _flight
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span
from repro.resilience.faults import maybe_fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

#: File names inside a durable database directory.
CHECKPOINT_FILE = "checkpoint.json"
WAL_FILE = "wal.log"


def checkpoint_path(directory: str) -> str:
    return os.path.join(directory, CHECKPOINT_FILE)


def wal_path(directory: str) -> str:
    return os.path.join(directory, WAL_FILE)


@dataclass(frozen=True)
class RecoveryResult:
    """What one :func:`recover` run did."""

    db: "Database"
    checkpoint_lsn: int
    last_lsn: int
    replayed: int
    skipped: int
    torn: bool
    truncated_bytes: int

    def summary(self) -> str:
        tail = (
            f", truncated a torn tail of {self.truncated_bytes} byte(s)"
            if self.torn
            else ""
        )
        return (
            f"recovered from checkpoint lsn {self.checkpoint_lsn}: "
            f"replayed {self.replayed} record(s), skipped {self.skipped} "
            f"already-folded{tail}"
        )


def recover(
    directory: str, *, attach: bool = True, sync: bool = True
) -> RecoveryResult:
    """Rebuild the database stored under ``directory``.

    ``attach=True`` (the default) re-attaches the repaired log to the
    recovered database so it keeps journalling; ``attach=False`` is the
    read-only form the crash-point sweep uses.  Raises
    :class:`PersistenceError` for a damaged checkpoint and
    :class:`WalError` for semantically invalid log records; a *torn log
    tail* is not an error — it is the crash this module exists to
    absorb, and it is truncated away.
    """
    ckpt = checkpoint_path(directory)
    if not os.path.exists(ckpt):
        raise PersistenceError(
            f"no checkpoint under {directory!r}: not a durable database "
            "directory (Database.open creates one)"
        )
    doc = read_document(ckpt)
    wpath = wal_path(directory)
    with _span("recovery.replay", directory=directory) as sp:
        records, valid_bytes, scan_error = _wal.scan(wpath)
        torn = scan_error is not None
        truncated = 0
        if torn:
            truncated = os.path.getsize(wpath) - valid_bytes
            # repair before replay: truncation is idempotent, so a crash
            # mid-replay (e.g. an injected recovery.replay fault) leaves
            # the files exactly as a fresh recovery expects them
            _wal.truncate_to(wpath, valid_bytes)
        db = load_database(doc)
        durability = doc.get("durability", {})
        ckpt_lsn = int(durability.get("lsn", 0))
        db.supply.advance_to(int(durability.get("next_oid", 0)))
        last_lsn = ckpt_lsn
        replayed = skipped = 0
        for rec in records:
            maybe_fault("recovery.replay")
            lsn = rec["lsn"]
            if lsn <= ckpt_lsn:
                skipped += 1
                continue
            if lsn <= last_lsn:
                raise WalError(
                    f"non-monotone record lsn {lsn} after {last_lsn}"
                )
            apply_record(db, rec)
            last_lsn = lsn
            replayed += 1
        if _OBS.enabled:
            _METRICS.counter("recovery_replayed_records_total").inc(replayed)
            _METRICS.counter("recovery_skipped_records_total").inc(skipped)
            if torn:
                _METRICS.counter("recovery_torn_tails_total").inc()
                _METRICS.counter("recovery_truncated_bytes_total").inc(
                    truncated
                )
            sp.set(
                records=len(records),
                replayed=replayed,
                skipped=skipped,
                torn=torn,
            )
        # a replay IS a crash post-mortem: leave the black box next to
        # the files it recovered, with the replay's outcome as the tail
        _flight.record(
            "recovery-replay",
            directory=directory,
            checkpoint_lsn=ckpt_lsn,
            last_lsn=last_lsn,
            replayed=replayed,
            skipped=skipped,
            torn=torn,
            truncated_bytes=truncated,
        )
        _flight.crash_dump("recovery-replay", directory=directory)
        if attach:
            db._adopt_wal(directory, next_lsn=last_lsn + 1, sync=sync)
            db._checkpoint_lsn = ckpt_lsn
        return RecoveryResult(
            db=db,
            checkpoint_lsn=ckpt_lsn,
            last_lsn=last_lsn,
            replayed=replayed,
            skipped=skipped,
            torn=torn,
            truncated_bytes=truncated,
        )


def bootstrap(directory: str) -> tuple["Database", int, int]:
    """Non-mutating recover: seed a **replica** from a primary's files.

    Rebuilds the state from the checkpoint plus the intact log prefix
    exactly like :func:`recover`, but never repairs the log (the
    primary is alive and owns its files), never attaches a WAL to the
    result, and never dumps the flight ring (replicas resync routinely;
    a resync is not a crash).  Returns ``(db, last_lsn, valid_bytes)``:
    the replayed database, the highest LSN it contains, and the byte
    offset just past the last intact record — the shipper resumes
    tailing from there.
    """
    ckpt = checkpoint_path(directory)
    if not os.path.exists(ckpt):
        raise PersistenceError(
            f"no checkpoint under {directory!r}: not a durable database "
            "directory (Database.open creates one)"
        )
    doc = read_document(ckpt)
    records, valid_bytes, _scan_error = _wal.scan(wal_path(directory))
    db = load_database(doc)
    durability = doc.get("durability", {})
    ckpt_lsn = int(durability.get("lsn", 0))
    db.supply.advance_to(int(durability.get("next_oid", 0)))
    last_lsn = ckpt_lsn
    for rec in records:
        lsn = rec["lsn"]
        if lsn <= ckpt_lsn:
            continue
        if lsn <= last_lsn:
            raise WalError(f"non-monotone record lsn {lsn} after {last_lsn}")
        apply_record(db, rec)
        last_lsn = lsn
    return db, last_lsn, valid_bytes


# ---------------------------------------------------------------------------
# Record replay
# ---------------------------------------------------------------------------


def apply_record(db: "Database", rec: dict) -> None:
    """Apply one intact WAL record's physical delta to ``db``.

    Semantic validation failures raise :class:`WalError` — the record's
    checksum held, so either the log was tampered with beyond what a
    CRC catches or the writer was buggy; both must fail loudly.
    """
    kind = rec.get("kind")
    try:
        if kind == "define":
            db.define(rec["source"])
        elif kind == "delta":
            _apply_state(db, rec, full=False)
        elif kind == "shard-delta":
            _apply_shard_delta(db, rec)
        elif kind == "full":
            _apply_state(db, rec, full=True)
            _restore_definitions(db, rec.get("definitions", []))
        else:
            raise WalError(f"record lsn {rec.get('lsn')}: unknown kind {kind!r}")
    except WalError:
        raise
    except Exception as exc:
        raise WalError(
            f"record lsn {rec.get('lsn')} does not apply: {exc}"
        ) from exc
    db.supply.advance_to(int(rec.get("next_oid", 0)))


def _apply_state(db: "Database", rec: dict, *, full: bool) -> None:
    schema = db.schema
    oe = ObjectEnv() if full else db.oe
    for oid, entry in sorted(rec.get("objects", {}).items()):
        cname = entry["class"]
        if cname not in schema:
            raise WalError(f"object {oid}: unknown class {cname!r}")
        declared = [a for a, _ in schema.atypes(cname)]
        given = entry.get("attrs", {})
        if sorted(given) != sorted(declared):
            raise WalError(
                f"object {oid}: attribute set {sorted(given)} does not "
                f"match class {cname} ({sorted(declared)})"
            )
        try:
            attrs = tuple((a, value_from_json(given[a])) for a in declared)
            oe = oe.with_object(oid, ObjectRecord(cname, attrs))
        except (PersistenceError, EvalError) as exc:
            raise WalError(f"object {oid}: {exc}") from exc
    ee = ExtentEnv.for_schema(schema) if full else db.ee
    for extent, members in sorted(rec.get("extents", {}).items()):
        if extent not in ee:
            raise WalError(f"unknown extent {extent!r} in record")
        want = schema.extent_class(extent)
        for oid in members:
            if oid not in oe:
                raise WalError(
                    f"extent {extent!r} references missing object {oid}"
                )
            if oe.class_of(oid) != want:
                raise WalError(
                    f"extent {extent!r} holds {oid} of class "
                    f"{oe.class_of(oid)!r}, expected {want!r}"
                )
        ee = ee.with_members(extent, frozenset(members))
    # OE before EE: same installation order as Database commit
    db.oe = oe
    db.ee = ee


def _apply_shard_delta(db: "Database", rec: dict) -> None:
    """Replay one per-shard install: an additive extent-membership union.

    ``shard-delta`` records carry only the commit's *added* members per
    extent (plus the new objects), never whole extents — so replay is a
    set union, which is idempotent and order-insensitive within the
    LSN-ordered prefix.  The record's ``"shards"`` stanza (which shard
    each oid was installed into) is observability metadata: replay
    recomputes the partition from the live layout rather than trusting
    the log, so a database recovered under a different (or no) shard
    declaration still reaches the identical extent state.
    """
    schema = db.schema
    oe = db.oe
    for oid, entry in sorted(rec.get("objects", {}).items()):
        cname = entry["class"]
        if cname not in schema:
            raise WalError(f"object {oid}: unknown class {cname!r}")
        declared = [a for a, _ in schema.atypes(cname)]
        given = entry.get("attrs", {})
        if sorted(given) != sorted(declared):
            raise WalError(
                f"object {oid}: attribute set {sorted(given)} does not "
                f"match class {cname} ({sorted(declared)})"
            )
        try:
            attrs = tuple((a, value_from_json(given[a])) for a in declared)
            oe = oe.with_object(oid, ObjectRecord(cname, attrs))
        except (PersistenceError, EvalError) as exc:
            raise WalError(f"object {oid}: {exc}") from exc
    ee = db.ee
    for extent, added in sorted(rec.get("adds", {}).items()):
        if extent not in ee:
            raise WalError(f"unknown extent {extent!r} in record")
        want = schema.extent_class(extent)
        for oid in added:
            if oid not in oe:
                raise WalError(
                    f"extent {extent!r} references missing object {oid}"
                )
            if oe.class_of(oid) != want:
                raise WalError(
                    f"extent {extent!r} holds {oid} of class "
                    f"{oe.class_of(oid)!r}, expected {want!r}"
                )
        if added:
            ee = ee.with_members(
                extent, ee.members(extent) | frozenset(added)
            )
    # OE before EE: same installation order as Database commit
    db.oe = oe
    db.ee = ee


def _restore_definitions(db: "Database", sources: list[str]) -> None:
    """Reset the definition environment to exactly ``sources``.

    Full records capture the whole DE because the unattributed state
    changes that produce them (transaction rollback, restore) may have
    *removed* definitions — replaying only additions cannot express
    that.
    """
    current = [d for d in db.definitions]
    if [*sources] == [
        _pretty_definition(db, name) for name in current
    ]:
        return
    db._defs_version += 1
    db._definitions.clear()
    db._def_types.clear()
    db.machine.defs = db._definitions
    for source in sources:
        db.define(source)


def _pretty_definition(db: "Database", name: str) -> str:
    from repro.lang.pprint import pretty_definition

    return pretty_definition(db.definitions[name])
