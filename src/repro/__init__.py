"""repro — an executable reproduction of G.M. Bierman,
"Formal semantics and analysis of object queries" (SIGMOD 2003).

The package implements, from scratch:

* the §2 object data model (classes, single inheritance, extents) —
  :mod:`repro.model`;
* IOQL, the paper's idealized object query language, with a concrete
  syntax, parser and pretty-printer — :mod:`repro.lang`;
* the Figure 1 type system — :mod:`repro.typing`;
* the Figure 2 small-step operational semantics with evaluation
  contexts, plus the Figure 4 effect-instrumented variant —
  :mod:`repro.semantics`;
* the Figure 3 effect system and its ⊢′ (determinism, Theorem 7) and
  ⊢″ (safe commutativity, Theorem 8) refinements — :mod:`repro.effects`;
* MJava, a small Java-like method language realising the paper's
  abstract ⇓ relation, in both the §2 read-only and §5 effectful
  design points — :mod:`repro.methods`;
* an object store (the EE/OE environments), an exhaustive
  reduction-order explorer and the oid-bijection ∼ — :mod:`repro.db`,
  :mod:`repro.semantics.explorer`, :mod:`repro.semantics.bijection`;
* an effect-gated query optimizer — :mod:`repro.optimizer`;
* executable checkers for Theorems 1–8 over randomly generated
  well-typed configurations — :mod:`repro.metatheory`;
* an observability layer — structured spans, a metrics registry and a
  reduction-event stream across the whole pipeline, off by default and
  toggled with :func:`repro.instrument` — :mod:`repro.obs`;
* a resilience layer — resource budgets, effect-guided transactions,
  statically-gated retry and a deterministic fault-injection harness —
  :mod:`repro.resilience` (see ``docs/ROBUSTNESS.md``).

Quick start::

    import repro

    db = repro.open_database('''
        class Person extends Object (extent Persons) {
            attribute string name;
            attribute int age;
        }
    ''')
    db.insert("Person", name="Ada", age=36)
    result = repro.run(db, "{ p.name | p <- Persons, p.age > 30 }")
    assert result.python() == frozenset({"Ada"})
"""

from repro import obs, resilience
from repro.api import (
    effects,
    explore,
    instrument,
    is_deterministic,
    open_database,
    optimize,
    run,
    transaction,
    typecheck,
)
from repro.db.database import Database, from_value, to_value
from repro.effects.algebra import EMPTY, Effect
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    EvalError,
    FuelExhausted,
    IOQLEffectError,
    IOQLTypeError,
    MethodError,
    ObjectQuotaExceeded,
    ParseError,
    ReproError,
    SchemaError,
    StuckError,
    TransientFault,
)
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.retry import RetryPolicy
from repro.lang.parser import parse_program, parse_query, parse_type
from repro.lang.pprint import pretty
from repro.methods.ast import AccessMode
from repro.model.odl_parser import parse_schema
from repro.model.schema import Schema
from repro.semantics.strategy import (
    FIRST,
    LAST,
    FirstStrategy,
    LastStrategy,
    RandomStrategy,
    ScriptedStrategy,
)

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "Budget",
    "BudgetExceeded",
    "Database",
    "DeadlineExceeded",
    "EMPTY",
    "Effect",
    "EvalError",
    "FIRST",
    "FaultPlan",
    "FaultRule",
    "FirstStrategy",
    "FuelExhausted",
    "IOQLEffectError",
    "IOQLTypeError",
    "LAST",
    "LastStrategy",
    "MethodError",
    "ObjectQuotaExceeded",
    "ParseError",
    "RandomStrategy",
    "ReproError",
    "RetryPolicy",
    "Schema",
    "SchemaError",
    "ScriptedStrategy",
    "StuckError",
    "TransientFault",
    "__version__",
    "effects",
    "explore",
    "from_value",
    "instrument",
    "is_deterministic",
    "obs",
    "open_database",
    "optimize",
    "parse_program",
    "parse_query",
    "parse_schema",
    "parse_type",
    "pretty",
    "resilience",
    "run",
    "to_value",
    "transaction",
    "typecheck",
]
