"""The shared worker pool for partition-parallel execution.

One lazy process-wide :class:`~concurrent.futures.ThreadPoolExecutor`
runs per-shard pipeline tasks (sharded scans, filter chains, index
partial builds).  Threads, not processes: the environments are
immutable in-process structures, so workers share them with zero
serialisation, and the wins come from (a) shard pruning — algorithmic,
GIL-oblivious — and (b) overlapping injected/IO latency, which releases
the GIL while it sleeps.

``MIN_ROWS`` gates fan-out: below it, the task-submission overhead
costs more than the parallelism returns.  Tests lower it via
``repro.exec.parallel.MIN_ROWS = 0``.  The stats counters feed
``Database.health()["sharding"]["pool"]``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

#: Extents smaller than this run single-threaded even when sharded.
MIN_ROWS = 512

# floor of 4: shard tasks are frequently latency-bound (injected IO
# faults, store sleeps), where threads beyond the core count still
# overlap usefully because the waits release the GIL
_MAX_WORKERS = max(4, min(8, (os.cpu_count() or 4)))

_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None

# -- health counters (monotone; read without the lock, JSON-safe) ------------
_stats = {
    "tasks": 0,  # per-shard tasks executed
    "batches": 0,  # fan-outs submitted
    "busy_s": 0.0,  # summed in-task wall time
    "wall_s": 0.0,  # summed fan-out wall time (caller-side)
}


def _get_pool() -> ThreadPoolExecutor:
    global _pool
    if _pool is None:
        with _lock:
            if _pool is None:
                _pool = ThreadPoolExecutor(
                    max_workers=_MAX_WORKERS, thread_name_prefix="repro-shard"
                )
    return _pool


def worker_count() -> int:
    return _MAX_WORKERS


def should_parallelize(rows: int, parts: int) -> bool:
    """Fan out only when the extent is big enough to amortise overhead."""
    return parts > 1 and rows >= MIN_ROWS


def run_sharded(tasks):
    """Run the thunks on the pool; return their results in task order.

    Exceptions propagate to the caller (the first failing task's, in
    task order) — a per-shard transient fault must fail the whole query
    exactly as its sequential counterpart would.
    """
    start = time.perf_counter()
    pool = _get_pool()

    def timed(task):
        t0 = time.perf_counter()
        try:
            return task()
        finally:
            with _lock:
                _stats["tasks"] += 1
                _stats["busy_s"] += time.perf_counter() - t0

    futures = [pool.submit(timed, task) for task in tasks]
    try:
        results = [f.result() for f in futures]
    finally:
        with _lock:
            _stats["batches"] += 1
            _stats["wall_s"] += time.perf_counter() - start
    return results


def snapshot() -> dict:
    """JSON-safe pool health: size, task counts, utilization estimate."""
    with _lock:
        tasks = _stats["tasks"]
        batches = _stats["batches"]
        busy = _stats["busy_s"]
        wall = _stats["wall_s"]
    util = None
    if wall > 0:
        # busy time spread over the pool during fan-outs
        util = round(min(1.0, busy / (wall * _MAX_WORKERS)), 4)
    return {
        "workers": _MAX_WORKERS,
        "tasks": tasks,
        "batches": batches,
        "busy_s": round(busy, 6),
        "wall_s": round(wall, 6),
        "utilization": util,
    }
