"""Compiled set-at-a-time execution of IOQL queries.

The reduction machine (Figure 2/4) and the big-step evaluator execute
comprehensions tuple-at-a-time over immutable environments — faithful
to the paper, but far slower than the hardware allows.  This package
supplies the production path the paper licenses:

* Theorem 4 (functional queries are deterministic up to the oid
  bijection ∼) means any evaluation of a ``new``-free query that agrees
  with the machine on observables is sound — so we may compile such
  queries to set-at-a-time pipeline operators and run them without
  consulting the reduction rules at all;
* Theorem 5 (every dynamic effect trace is a subeffect of the static
  Figure 3 effect) tells us exactly which extents a cached plan or
  result can depend on — so a committed write with ``A(C)``/``U(C)``
  atoms needs to evict only the cache entries whose ``R`` set touches
  ``C``.

Modules:

* :mod:`repro.exec.compiler` — lowers a typechecked, optimizer-
  normalised query to a tree of Python closures (scan, filter with
  predicate pushdown, hash join, projection, the binary set operators);
* :mod:`repro.exec.runtime` — the per-evaluation :class:`ExecContext`
  threading budgets, fault sites, obs and the dynamic effect trace
  through the operators;
* :mod:`repro.exec.cache` — the effect-invalidated plan/result cache;
* :mod:`repro.exec.engine` — the entry points used by
  :meth:`repro.db.database.Database.run`.
"""

from repro.exec.cache import PlanCache, PlanEntry, schema_fingerprint
from repro.exec.compiler import CompiledPlan, NotCompilable, compile_plan
from repro.exec.engine import PlanDecision, execute_plan
from repro.exec.runtime import ExecContext

__all__ = [
    "CompiledPlan",
    "ExecContext",
    "NotCompilable",
    "PlanCache",
    "PlanDecision",
    "PlanEntry",
    "compile_plan",
    "execute_plan",
    "schema_fingerprint",
]
