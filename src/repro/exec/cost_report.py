"""A TD2-style distributed cost report for one query, without running it.

TD2 (the SIGMOD 2003 paper's industrial contemporary in distributed
query processing) prices a plan by what each *site* scans and what
moves between sites.  The sharded database has the same shape in
miniature: each shard is a site, a partition-parallel pipeline runs
per shard, and the merge point pays for the rows the shards emit.
:func:`build_cost_report` combines the optimizer's
:class:`~repro.optimizer.cost.CostModel` (extent cardinalities,
System-R selectivities) with the static shard analysis
(:func:`repro.db.shards.static_read_shards`) to report, per extent
access:

* how many of the extent's shards the compiled plan would touch
  (1 after shard-probe pruning, all ``k`` for an unconfined scan);
* the estimated rows actually scanned (``ceil(rows / k)`` per shard
  touched — the partition is hash-balanced by construction);
* the predicate selectivities that thin the pipeline downstream;

and per comprehension the **merge cost**: the estimated rows (and
bytes, at a flat per-row figure à la TD2's ``size_msg``) the per-shard
pipelines hand to the ordered merge.  Everything is estimated from the
catalog snapshot — the report never executes the query, so it is safe
to call on any effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.lang.ast import Comp, ExtentRef, Gen, Pred, Query
from repro.lang.pprint import pretty
from repro.lang.traversal import walk

#: Flat estimate of one row crossing a merge point, in bytes — an oid
#: ref or small tuple; the TD2 ``size_msg`` analogue.
ROW_BYTES = 24


@dataclass
class ExtentAccess:
    """One generator's scan of one extent, shard-priced."""

    extent: str
    cname: str
    var: str
    rows: int
    sharded: bool
    k: int
    by: str | None
    shards_accessed: int
    rows_scanned: float
    pruned: bool

    def to_dict(self) -> dict:
        return {
            "extent": self.extent,
            "class": self.cname,
            "var": self.var,
            "rows": self.rows,
            "sharded": self.sharded,
            "k": self.k,
            "by": self.by,
            "shards_accessed": self.shards_accessed,
            "rows_scanned": self.rows_scanned,
            "pruned": self.pruned,
        }


@dataclass
class PredicateCost:
    """One predicate and the fraction of rows it is estimated to pass."""

    pred: str
    selectivity: float

    def to_dict(self) -> dict:
        return {"pred": self.pred, "selectivity": self.selectivity}


@dataclass
class MergePoint:
    """One comprehension's fan-in: what the shard pipelines emit."""

    comp: str
    pipelines: int
    est_rows_moved: float
    est_bytes_moved: float

    def to_dict(self) -> dict:
        return {
            "comp": self.comp,
            "pipelines": self.pipelines,
            "est_rows_moved": self.est_rows_moved,
            "est_bytes_moved": self.est_bytes_moved,
        }


@dataclass
class CostReport:
    """The full report; ``render()`` pretty-prints, ``to_dict()`` is
    JSON-safe (the shell's ``.explain cost``)."""

    query: str
    engine: str
    decision: str
    est_cost: float
    accesses: list[ExtentAccess] = field(default_factory=list)
    predicates: list[PredicateCost] = field(default_factory=list)
    merges: list[MergePoint] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def total_rows_scanned(self) -> float:
        return sum(a.rows_scanned for a in self.accesses)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "engine": self.engine,
            "decision": self.decision,
            "est_cost": self.est_cost,
            "total_rows_scanned": self.total_rows_scanned,
            "accesses": [a.to_dict() for a in self.accesses],
            "predicates": [p.to_dict() for p in self.predicates],
            "merges": [m.to_dict() for m in self.merges],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [
            f"cost report: {self.query}",
            f"  engine {self.engine} — {self.decision}",
            f"  est cost {self.est_cost:.1f} steps, "
            f"est rows scanned {self.total_rows_scanned:.1f}",
        ]
        for a in self.accesses:
            if a.sharded:
                tag = (
                    f"{a.shards_accessed}/{a.k} shard(s)"
                    + (" [pruned]" if a.pruned else "")
                )
            else:
                tag = "unsharded"
            lines.append(
                f"  access {a.var} <- {a.extent} ({a.cname}): "
                f"{a.rows} rows, {tag}, "
                f"~{a.rows_scanned:.1f} scanned"
            )
        for p in self.predicates:
            lines.append(
                f"  filter {p.pred}: selectivity {p.selectivity:.2f}"
            )
        for m in self.merges:
            lines.append(
                f"  merge {m.comp}: {m.pipelines} pipeline(s), "
                f"~{m.est_rows_moved:.1f} rows "
                f"(~{m.est_bytes_moved:.0f} B) moved"
            )
        for note in self.notes:
            lines.append(f"  note {note}")
        return "\n".join(lines)


def build_cost_report(db, q: Query) -> CostReport:
    """Assemble the report for ``q`` against ``db``'s current catalog."""
    from repro.db.shards import static_read_shards
    from repro.optimizer.cost import CostModel
    from repro.optimizer.planner import optimize

    db.typecheck(q)
    decision = db.plan_decision(q)
    model = CostModel.from_database(db)
    try:
        normalised = optimize(db, q).query
    except Exception:
        normalised = q
    shards = getattr(db, "_shards", None)
    enabled = shards is not None and shards.enabled
    confinement = (
        static_read_shards(shards, db.schema, normalised)
        if enabled
        else None
    )

    report = CostReport(
        query=pretty(q),
        engine=decision.engine,
        decision=decision.reason,
        est_cost=model.eval_cost(normalised),
    )
    if decision.plan is not None:
        report.notes.extend(decision.plan.notes)

    seen_preds: set[Query] = set()
    for node in walk(normalised):
        if not isinstance(node, Comp):
            continue
        pipelines = 1
        for cq in node.qualifiers:
            if isinstance(cq, Pred):
                if cq.cond not in seen_preds:
                    seen_preds.add(cq.cond)
                    report.predicates.append(
                        PredicateCost(
                            pretty(cq.cond),
                            model.predicate_selectivity(cq.cond),
                        )
                    )
                continue
            if not isinstance(cq, Gen) or not isinstance(
                cq.source, ExtentRef
            ):
                continue
            extent = cq.source.name
            try:
                cname = db.schema.extent_class(extent)
            except Exception:
                continue
            rows = len(db.ee.members(extent))
            spec = shards.spec(extent) if enabled else None
            if spec is None:
                report.accesses.append(
                    ExtentAccess(
                        extent, cname, cq.var, rows,
                        sharded=False, k=1, by=None,
                        shards_accessed=1,
                        rows_scanned=float(rows),
                        pruned=False,
                    )
                )
                continue
            confined = (
                confinement.get(cname) if confinement is not None else None
            )
            accessed = len(confined) if confined is not None else spec.k
            per_shard = math.ceil(rows / spec.k) if spec.k else rows
            report.accesses.append(
                ExtentAccess(
                    extent, cname, cq.var, rows,
                    sharded=True, k=spec.k, by=spec.by,
                    shards_accessed=accessed,
                    rows_scanned=float(per_shard * accessed),
                    pruned=confined is not None,
                )
            )
            # an unconfined scan of a sharded extent fans out one
            # pipeline per shard; a pruned access runs one
            pipelines = max(pipelines, accessed)
        est_out = model.cardinality(node)
        report.merges.append(
            MergePoint(
                comp=pretty(node),
                pipelines=pipelines,
                est_rows_moved=est_out,
                est_bytes_moved=est_out * ROW_BYTES,
            )
        )
    return report
