"""The per-evaluation context threaded through compiled operators.

One :class:`ExecContext` lives for exactly one plan execution.  It
carries the (immutable) EE/OE the plan reads, accounts for resource
budgets and fault-injection sites with the same discipline as the
reduction machine, and records the *dynamic* effect trace — the classes
whose extents were actually scanned — so Theorem 5 can be checked
against compiled runs exactly as it is against the machine.

Obs fast path: the enabled flag is read **once** at construction; when
instrumentation is off, no span, metric or label object is ever built
by the operators (the satellite requirement from PR 1's <3% overhead
budget).
"""

from __future__ import annotations

from repro.effects.algebra import EMPTY, Effect, read as read_effect
from repro.errors import StuckError
from repro.lang.ast import OidRef, Query
from repro.lang.values import make_set_value
from repro.obs._state import STATE as _OBS
from repro.resilience.budget import Budget
from repro.resilience.faults import maybe_fault


def _metrics():
    from repro.obs.metrics import REGISTRY

    return REGISTRY


class ReplanSignal(Exception):
    """Raised mid-execution when an observed cardinality diverges from
    the plan's compile-time estimate by at least the configured ratio.

    Carries the misestimated source sub-query and both numbers; the
    engine catches it, recompiles with the observation as a cardinality
    override, and re-executes.  Only read-only plans carry replan
    guards, so abandoning the partial execution is always safe
    (Theorem 4: a write-free query cannot have changed the store).
    """

    def __init__(self, source: Query, est: float, actual: int):
        self.source = source
        self.est = est
        self.actual = actual
        super().__init__(
            f"cardinality misestimate: estimated {est:.1f} rows, "
            f"observed {actual}"
        )


class ReplanGuard:
    """The divergence test compiled generator stages consult.

    Attached to an :class:`ExecContext` (``ctx.replan``) only on
    non-pinned first executions; ``None`` disables every guard at the
    cost of one attribute check per source materialization.
    """

    __slots__ = ("ratio",)

    #: Sources smaller than this (both estimated and observed) never
    #: trigger — replanning a handful of rows costs more than it saves.
    MIN_ROWS = 8

    def __init__(self, ratio: float):
        self.ratio = ratio

    def check(self, source: Query, est: float, actual: int) -> None:
        if max(est, float(actual)) < self.MIN_ROWS:
            return
        e = max(est, 1.0)
        a = max(float(actual), 1.0)
        r = a / e
        if r >= self.ratio or 1.0 / r >= self.ratio:
            raise ReplanSignal(source, est, actual)


def build_attr_index(oe, members, attr: str) -> dict[Query, tuple[OidRef, ...]]:
    """Hash the objects of one extent by one attribute's value.

    Attribute values are canonical value ASTs (frozen, hashable), so
    they key a dict directly; buckets hold the members' oid refs.
    """
    idx: dict[Query, list[OidRef]] = {}
    for oid in members:
        key = oe.get(oid).attr(attr)
        idx.setdefault(key, []).append(OidRef(oid))
    return {k: tuple(v) for k, v in idx.items()}


class ExecContext:
    """Everything one compiled-plan execution reads and accounts for."""

    __slots__ = (
        "ee",
        "oe",
        "schema",
        "defs",
        "method_mode",
        "method_fuel",
        "supply",
        "budget",
        "reads",
        "extra_effect",
        "ops",
        "indexes",
        "state_version",
        "obs",
        "prof",
        "shards",
        "shard_reads",
        "replan",
        "closure_indexes",
        "_extent_cache",
        "stage_cache",
    )

    def __init__(
        self,
        ee,
        oe,
        schema,
        defs,
        *,
        method_mode,
        method_fuel: int = 10_000,
        supply=None,
        budget: Budget | None = None,
        indexes=None,
        state_version: int = -1,
        shards=None,
        closure_indexes=None,
    ):
        self.ee = ee
        self.oe = oe
        self.schema = schema
        self.defs = defs
        self.method_mode = method_mode
        self.method_fuel = method_fuel
        self.supply = supply
        self.budget = budget.start() if budget is not None else None
        self.reads: set[str] = set()
        self.extra_effect: Effect = EMPTY
        self.ops = 0
        self.indexes = indexes
        self.state_version = state_version
        self.obs = _OBS.enabled
        # set by the profiled execution path (.explain analyze) only;
        # plain runs pay nothing for it
        self.prof = None
        self.shards = shards
        # dynamic shard trace: class -> set of shard ids read, or None
        # once any whole-extent read happened (= all shards)
        self.shard_reads: dict[str, set | None] = {}
        # adaptive replanning: a ReplanGuard on non-pinned first
        # executions, None everywhere else (guards become no-ops)
        self.replan: ReplanGuard | None = None
        # persistent interval indexes for unbounded traverse (None on
        # pinned snapshots — the RED route then degrades to the chase)
        self.closure_indexes = closure_indexes
        self._extent_cache: dict[str, Query] = {}
        # tables/sources provably independent of the variable environment
        # (closed stages) are shared across re-executions of nested
        # comprehensions within this one plan run
        self.stage_cache: dict[int, object] = {}

    # -- accounting ------------------------------------------------------
    def charge(self, n: int = 1) -> None:
        """One row-level unit of work: budget fuel + the step fault site.

        Compiled operators charge per row/operator event, never per AST
        node, so a compiled run always consumes no more budget than the
        machine would for the same query.
        """
        self.ops += n
        maybe_fault("machine.step")
        if self.budget is not None:
            self.budget.charge_steps(n)

    def effect(self) -> Effect:
        """The dynamic trace: R atoms for scanned classes (+ methods')."""
        eff = Effect.of(*(read_effect(c) for c in self.reads))
        return eff | self.extra_effect if self.extra_effect.atoms else eff

    def note_shard_read(self, cname: str, shard: int | None) -> None:
        """Refine the dynamic trace to ``(class, shard)`` granularity.

        ``shard=None`` records a whole-extent read (all shards), which
        is absorbing: once a class was read unpruned, no later pruned
        read narrows it again.
        """
        if shard is None:
            self.shard_reads[cname] = None
        else:
            have = self.shard_reads.get(cname, set())
            if have is not None:
                have.add(shard)
                self.shard_reads[cname] = have

    def absorb(self, ops: int) -> None:
        """Fold a forked worker context's row charges into this one.

        Budget fuel is charged in one lump after the fan-out completes,
        so a budget can overshoot by at most one parallel scan — the
        documented granularity of partition-parallel accounting.
        """
        self.ops += ops
        if self.budget is not None and ops:
            self.budget.charge_steps(ops)

    def fork(self) -> "ExecContext":
        """A lightweight per-worker context sharing the immutable state.

        Workers get their own accounting, caches and shard trace; the
        parent folds the ops back via :meth:`absorb` and keeps its own
        (whole-extent) dynamic trace, so budgets and effects stay
        equivalent to the sequential run.
        """
        sub = object.__new__(ExecContext)
        sub.ee = self.ee
        sub.oe = self.oe
        sub.schema = self.schema
        sub.defs = self.defs
        sub.method_mode = self.method_mode
        sub.method_fuel = self.method_fuel
        sub.supply = self.supply
        sub.budget = None
        sub.reads = set()
        sub.extra_effect = EMPTY
        sub.ops = 0
        sub.indexes = self.indexes
        sub.state_version = self.state_version
        sub.obs = False
        sub.prof = None
        sub.shards = self.shards
        sub.shard_reads = {}
        sub.replan = None  # workers never replan; the parent decides
        sub.closure_indexes = self.closure_indexes
        sub._extent_cache = {}
        sub.stage_cache = {}
        return sub

    # -- store access ----------------------------------------------------
    def scan(self, extent: str) -> Query:
        """The (Extent) read: the extent's members as a canonical set.

        Records the dynamic ``R`` atom and hits the ``store.read`` fault
        site exactly like the machine; the canonical :class:`SetLit` is
        built once per execution per extent (the machine re-sorts it on
        every read).
        """
        self.charge()
        maybe_fault("store.read")
        cname, members = self.ee.get(extent)
        self.reads.add(cname)
        self.note_shard_read(cname, None)
        if self.prof is not None:
            self.prof.scans += 1
        cached = self._extent_cache.get(extent)
        if cached is None:
            cached = make_set_value(OidRef(o) for o in members)
            self._extent_cache[extent] = cached
        return cached

    def extent_size(self, extent: str) -> int:
        """``size(E)`` without materialising the member set."""
        self.charge()
        maybe_fault("store.read")
        cname, members = self.ee.get(extent)
        self.reads.add(cname)
        self.note_shard_read(cname, None)
        if self.prof is not None:
            self.prof.scans += 1
        return len(members)

    def extent_members(self, extent: str) -> frozenset[str]:
        """The extent's member oids, skipping canonical-value build.

        Same accounting as :meth:`scan` — one charge, the
        ``store.read`` fault site, the dynamic ``R`` atom — but
        traversal sources consume raw oids, so sorting the members
        into a canonical :class:`SetLit` would be pure waste.
        """
        self.charge()
        maybe_fault("store.read")
        cname, members = self.ee.get(extent)
        self.reads.add(cname)
        self.note_shard_read(cname, None)
        if self.prof is not None:
            self.prof.scans += 1
        return members

    def attr_index(self, extent: str, attr: str) -> dict:
        """A hash index over one extent keyed by one attribute.

        Reading through the index is still a scan of the extent: it
        records the same dynamic ``R`` atom and fault-site hit.  The
        database-level :class:`~repro.db.store.AttributeIndexes` cache
        (when attached) makes the index persistent across queries,
        validated against the store version and invalidated by write
        effects.
        """
        self.charge()
        maybe_fault("store.read")
        cname, members = self.ee.get(extent)
        self.reads.add(cname)
        self.note_shard_read(cname, None)
        if self.prof is not None:
            self.prof.index_lookups += 1
        if self.indexes is not None:
            return self.indexes.get(
                self.ee,
                self.oe,
                self.state_version,
                extent,
                attr,
                shards=self.shards,
            )
        return build_attr_index(self.oe, members, attr)

    def pruned_attr_index(self, extent: str, attr: str, key: Query):
        """One shard's index partial when ``attr`` is the shard key.

        For an index probe with key *k* over an extent sharded
        ``by=attr``, every object whose ``attr`` equals *k* lives (by
        construction of the partition) in the shard *k* hashes to — so
        that shard's partial contains exactly the full index's bucket
        for *k*.  Records a single-``(class, shard)`` dynamic read, the
        confinement the per-shard result cache keys on.  ``None`` when
        pruning does not apply (unsharded, sharded by a different
        attribute or by oid, pinned snapshot) — the caller uses the
        full index.
        """
        shards = self.shards
        if shards is None or self.indexes is None:
            return None
        spec = shards.spec(extent)
        if spec is None or spec.by != attr:
            return None
        from repro.db.shards import shard_of

        s = shard_of(key, spec.k)
        self.charge()
        maybe_fault("store.read")
        cname = self.ee.class_of(extent)
        self.reads.add(cname)
        partial = self.indexes.get_shard(
            self.ee, self.oe, self.state_version, extent, attr, s, shards
        )
        if partial is None:
            self.note_shard_read(cname, None)
            return None
        self.note_shard_read(cname, s)
        if self.prof is not None:
            self.prof.index_lookups += 1
        return partial

    # -- sharded access --------------------------------------------------
    def shard_view(self, extent: str):
        """``(spec, parts)`` for a sharded extent, or ``(None, None)``.

        Re-validated at execution time: the plan was compiled against a
        shard *spec view* that may have changed since (``.shard`` can be
        re-declared), and pinned snapshots never partition.
        """
        shards = self.shards
        if shards is None:
            return None, None
        spec = shards.spec(extent)
        if spec is None:
            return None, None
        parts = shards.partition(extent, self.ee, self.oe, self.state_version)
        if parts is None:
            return None, None
        return spec, parts

    def shard_items(
        self, extent: str, shard: int, parts: tuple
    ) -> tuple[OidRef, ...]:
        """One shard's members as oid refs — a pruned (Extent) read.

        Accounts exactly like :meth:`scan` (charge, ``store.read``
        fault, dynamic ``R`` atom) plus the ``exec.shard`` site, but
        records only the single shard in the shard trace.
        """
        self.charge()
        maybe_fault("store.read")
        maybe_fault("exec.shard")
        cname = self.ee.class_of(extent)
        self.reads.add(cname)
        self.note_shard_read(cname, shard)
        if self.prof is not None:
            self.prof.scans += 1
        key = (extent, shard)
        cached = self._extent_cache.get(key)
        if cached is None:
            cached = tuple(OidRef(o) for o in sorted(parts[shard]))
            self._extent_cache[key] = cached
        return cached

    # -- traverse --------------------------------------------------------
    def traverse_chase(
        self, start: list[str], attr: str, depth: int | None
    ) -> frozenset[str]:
        """GREEN/YELLOW traverse: the shared semi-naive frontier chase.

        Charges one budget unit per visited node (matching the big-step
        evaluator's fuel discipline, so exhaustion mid-fixpoint raises
        the same :class:`~repro.errors.FuelExhausted`) and records the
        classes actually visited in the dynamic ``R`` trace.
        """
        maybe_fault("exec.traverse")
        from repro.semantics.traverse import chase

        oids, classes = chase(self.oe, start, attr, depth, tick=self.charge)
        self.reads |= classes
        for c in classes:
            self.note_shard_read(c, None)
        if self.obs:
            route = "yellow" if depth is not None else "red-fallback"
            _metrics().counter("exec_traverse_total", route=route).inc()
        return oids

    def traverse_indexed(
        self,
        start,
        attr: str,
        cone: frozenset[str] | None = None,
        extent: str | None = None,
    ) -> frozenset[str] | None:
        """RED traverse: answer from the persistent interval index.

        Returns None when the route must degrade to the chase: pinned
        snapshot (no index store), empty start, a cyclic or uncovered
        graph, or a start object outside the indexed cone.  A served
        answer records the whole cone in the dynamic trace — the index
        was (re)built from every cone extent, which is exactly the
        static closure bound of the effect rule.

        ``cone`` is the reachable-closure class set when the compiler
        already knows it statically (extent-sourced traversals); when
        None it is recovered from the start objects' runtime classes.
        ``extent`` marks a start set that IS a whole extent, unlocking
        the index's cached per-extent stab array.
        """
        if self.closure_indexes is None or not start:
            return None
        maybe_fault("exec.traverse")
        if cone is None:
            from repro.model.closure import closure_read_set

            cone = frozenset()
            for cname in {self.oe.get(o).cname for o in start}:
                cone |= closure_read_set(self.schema, cname, attr)
        idx = self.closure_indexes.get(
            self.schema,
            self.ee,
            self.oe,
            self.state_version,
            attr,
            cone,
            shards=self.shards,
        )
        result = None
        if extent is not None:
            result = idx.closure_of_extent(self.ee, extent)
        if result is None:
            result = idx.closure_of(start)
        if result is None:
            return None
        self.charge(max(1, len(result)))
        self.reads |= cone
        for c in cone:
            self.note_shard_read(c, None)
        if self.prof is not None:
            self.prof.index_lookups += 1
        if self.obs:
            _metrics().counter("exec_traverse_total", route="red").inc()
        return result

    # -- methods ---------------------------------------------------------
    def call_method(self, target: OidRef, mname: str, args: tuple) -> Query:
        """Invoke a (read-only) method exactly as the machine does."""
        from repro.methods.interp import Fuel, MethodInterpreter

        self.charge()
        maybe_fault("method.call")
        interp = MethodInterpreter(
            self.schema,
            self.ee,
            self.oe,
            mode=self.method_mode,
            fuel=Fuel(self.method_fuel),
            oid_supply=self.supply,
        )
        outcome = interp.invoke(target.name, mname, args)
        if outcome.ee is not self.ee or outcome.oe is not self.oe:
            if outcome.ee != self.ee or outcome.oe != self.oe:
                # unreachable for plans gated on an empty static write
                # effect (Theorem 5), kept as a hard guard
                raise StuckError(
                    f"method {mname!r} mutated state inside a compiled plan"
                )
        if outcome.effect.atoms:
            self.extra_effect |= outcome.effect
        return outcome.value
