"""Lowering IOQL queries to set-at-a-time pipeline closures.

Every query node compiles to a Python closure ``fn(ctx, env) -> value``
over the :class:`~repro.exec.runtime.ExecContext` and a *mutable*
variable environment (a plain dict, saved/restored around generator
loops — no per-row environment copies).  Comprehensions compile to a
pipeline of stages ``stage(ctx, env, acc, state)``:

* **scan** — a generator source; bare extents go through
  :meth:`ExecContext.scan` (canonicalised once per execution);
  uncorrelated sources are evaluated lazily once per comprehension
  execution instead of once per outer row;
* **filter** — predicates, with pushdown: a syntactically pure
  predicate (no extent read, definition call, method call or ``new``)
  is scheduled at the earliest point where all its variables are bound;
  impure predicates keep their original position, so their dynamic
  effect stays inside the machine's possible traces;
* **hash join** — a generator whose slot carries a pure equality
  between an expression over earlier-bound variables and an expression
  over the new variable builds a hash table over the source (or reuses
  a persistent :class:`~repro.db.store.AttributeIndexes` index when the
  source is a bare extent keyed by one attribute) and probes it per
  outer row, replacing the machine's nested-loop re-evaluation;
* **projection** — the head, emitted per surviving row; the final set
  is canonicalised once (the machine sorts after every insertion).

Soundness: compiled execution is only ever routed to ``new``-free /
read-only queries (Theorem 4 — any strategy, and hence any operator
order, yields the same observables), and every reordering above
preserves exactly the machine's answers for such queries: pure
predicates cannot get stuck on well-typed rows (Theorem 3) and read no
state, so evaluating them earlier only skips work.

Queries containing ``new`` (or method calls outside read-only mode)
raise :class:`NotCompilable`; the caller falls back to the machine.
"""

from __future__ import annotations

import operator
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.errors import EvalError, StuckError
from repro.exec import parallel as _parallel
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)
from repro.lang.traversal import free_vars, walk
from repro.lang.values import (
    bag_except,
    bag_intersect,
    bag_union,
    collection_to_set,
    list_concat,
    make_bag_value,
    make_oid_set,
    make_set_value,
    set_except,
    set_intersect,
    set_union,
)
from repro.methods.ast import AccessMode
from repro.obs.profile import OpDescr
from repro.resilience.faults import maybe_fault

_MISSING = object()

_PRIMS = (IntLit, BoolLit, StrLit)

_SET_FNS = {
    SetOpKind.UNION: set_union,
    SetOpKind.INTERSECT: set_intersect,
    SetOpKind.EXCEPT: set_except,
}
_BAG_FNS = {
    SetOpKind.UNION: bag_union,
    SetOpKind.INTERSECT: bag_intersect,
    SetOpKind.EXCEPT: bag_except,
}
_INT_FNS = {
    IntOpKind.ADD: operator.add,
    IntOpKind.SUB: operator.sub,
    IntOpKind.MUL: operator.mul,
}
_CMP_FNS = {
    CmpKind.LT: operator.lt,
    CmpKind.LE: operator.le,
    CmpKind.GT: operator.gt,
    CmpKind.GE: operator.ge,
}


class NotCompilable(Exception):
    """The query (or a definition it calls) is outside the compiled
    fragment; the caller must fall back to the machine."""


@dataclass(frozen=True)
class CompiledPlan:
    """A ready-to-run plan: the root closure plus its description.

    ``ops`` is non-empty only for plans compiled with ``profile=True``:
    one :class:`~repro.obs.profile.OpDescr` per pipeline operator, in
    pipeline order, each carrying the cost model's estimated output
    cardinality — the static half of ``.explain analyze``.
    """

    fn: Callable
    source: Query = field(repr=False)
    notes: tuple[str, ...] = ()
    ops: tuple = ()


def is_pure(q: Query) -> bool:
    """Syntactically effect-free *and* state-independent beyond its
    variables: safe to reorder freely within a comprehension."""
    return not any(
        isinstance(n, (ExtentRef, DefCall, MethodCall, New)) for n in walk(q)
    )


_COLLECTION_SYNTAX = (
    Comp,
    SetLit,
    BagLit,
    ListLit,
    SetOp,
    ToSet,
    ExtentRef,
    Traverse,
)

#: Bounded depths up to this limit compile to the GREEN route: the hop
#: loop is unrolled into a tuple of per-hop step closures at compile
#: time.  Deeper bounds go YELLOW (iterative semi-naive chase);
#: unbounded goes RED (persistent interval index, chase fallback).
GREEN_TRAVERSE_DEPTH = 8


def _traverse_hop(attr: str):
    """One unrolled GREEN hop: advance the frontier by one link.

    Mirrors the chase's discipline exactly — one ``charge`` per frontier
    node, a missing attribute or non-object value is a leaf, an already
    seen target is skipped (semi-naive), a dangling reference raises.
    """
    from repro.semantics.traverse import attr_value

    def step(ctx, seen: set, frontier: list) -> list:
        oe = ctx.oe
        nxt: list = []
        for o in frontier:
            ctx.charge()
            val = attr_value(oe.get(o), attr)
            if not isinstance(val, OidRef) or val.name in seen:
                continue
            seen.add(val.name)
            cname = oe.get(val.name).cname
            ctx.reads.add(cname)
            ctx.note_shard_read(cname, None)
            nxt.append(val.name)
        return nxt

    return step


def compile_plan(
    schema,
    defs,
    q: Query,
    *,
    method_mode: AccessMode = AccessMode.READ_ONLY,
    method_fuel: int = 10_000,
    profile: bool = False,
    cost_model=None,
    shards=None,
) -> CompiledPlan:
    """Compile one (typechecked, optimizer-normalised) query.

    With ``profile=True`` every pipeline operator is wrapped with a
    call/row counter and a clock, feeding a
    :class:`~repro.exec.runtime.ExecContext`'s ``prof`` run (when one is
    attached — a profiled plan run without one pays only a ``None``
    check per operator call).  ``cost_model`` supplies the estimated
    cardinalities recorded on each operator and drives join selection
    and the replan guards; for profiled compiles it defaults to an
    empty :class:`~repro.optimizer.cost.CostModel` (all extents
    unknown).  A model may also be passed *without* profiling — the
    engine's normal compile path does, so plans carry stats-driven
    estimates for adaptive replanning at zero per-row cost.
    """
    model = cost_model
    if profile and model is None:
        from repro.optimizer.cost import CostModel

        model = CostModel()
    c = _Compiler(
        schema,
        defs,
        method_mode=method_mode,
        model=model,
        profile=profile,
        shards=shards,
    )
    if profile:
        est = (
            model.cardinality(q)
            if isinstance(q, _COLLECTION_SYNTAX)
            else 1.0
        )
        root = c._new_op(
            "result", "result", parent=None, est_rows=est, est_calls=1.0
        )
        with c._under(root):
            fn = c.compile(q)
    else:
        fn = c.compile(q)
    return CompiledPlan(
        fn=fn, source=q, notes=tuple(c.notes), ops=tuple(c.ops)
    )


class _Compiler:
    def __init__(
        self,
        schema,
        defs,
        *,
        method_mode: AccessMode,
        model=None,
        profile=False,
        shards=None,
    ):
        self.schema = schema
        self.defs = defs or {}
        self.method_mode = method_mode
        # the database's ShardedExtents view (or None): decides whether
        # generator stages get the shard-pruning/fan-out wrapper.  The
        # wrapper re-validates at run time, so a spec change after
        # compilation only costs the optimisation, never correctness.
        self.shards = shards
        self.notes: list[str] = []
        self._def_bodies: dict[str, tuple[tuple[str, ...], Callable]] = {}
        self._next_sid = 0
        # profiling state: a flat operator table plus the compile-time
        # cursor (which operator encloses the expression being compiled,
        # and its estimated call count — nested comprehensions scale
        # their estimates by it)
        self.model = model
        self._profile = profile
        self.ops: list[OpDescr] = []
        self._cur_parent: int | None = None
        self._mult = 1.0

    def _sid(self) -> int:
        self._next_sid += 1
        return self._next_sid - 1

    # -- profiling scaffolding -------------------------------------------
    @property
    def profile(self) -> bool:
        return self._profile

    def _new_op(
        self,
        kind: str,
        label: str,
        *,
        parent: int | None,
        est_rows: float,
        est_calls: float,
    ) -> int:
        op_id = len(self.ops)
        self.ops.append(
            OpDescr(
                op_id=op_id,
                parent=parent,
                kind=kind,
                label=label,
                est_rows=est_rows,
                rows_from=op_id,
                extra={"est_calls": est_calls},
            )
        )
        return op_id

    @contextmanager
    def _under(self, op_id: int | None):
        """Compile sub-expressions as children of operator ``op_id``."""
        if op_id is None:
            yield
            return
        prev = (self._cur_parent, self._mult)
        self._cur_parent = op_id
        self._mult = self.ops[op_id].extra.get("est_calls", 1.0)
        try:
            yield
        finally:
            self._cur_parent, self._mult = prev

    def _wrap_stage(self, op_id: int | None, stage: Callable) -> Callable:
        """Count calls and accumulate inclusive time for one operator."""
        if op_id is None:
            return stage

        def profiled_stage(ctx, env, acc, state):
            prof = ctx.prof
            if prof is None:
                stage(ctx, env, acc, state)
                return
            prof.rows[op_id] += 1
            t0 = perf_counter()
            try:
                stage(ctx, env, acc, state)
            finally:
                prof.times[op_id] += perf_counter() - t0

        return profiled_stage

    def _wrap_fn(self, op_id: int | None, fn: Callable) -> Callable:
        if op_id is None:
            return fn

        def profiled_fn(ctx, env):
            prof = ctx.prof
            if prof is None:
                return fn(ctx, env)
            prof.rows[op_id] += 1
            t0 = perf_counter()
            try:
                return fn(ctx, env)
            finally:
                prof.times[op_id] += perf_counter() - t0

        return profiled_fn

    # -- expressions -----------------------------------------------------
    def compile(self, q: Query) -> Callable:
        if isinstance(q, (IntLit, BoolLit, StrLit, OidRef)):
            return lambda ctx, env: q
        if isinstance(q, Var):
            name = q.name

            def var_fn(ctx, env):
                try:
                    return env[name]
                except KeyError:
                    raise StuckError(f"unbound identifier {name!r}") from None

            return var_fn
        if isinstance(q, ExtentRef):
            name = q.name
            return lambda ctx, env: ctx.scan(name)
        if isinstance(q, SetLit):
            fns = tuple(self.compile(i) for i in q.items)
            return lambda ctx, env: make_set_value(f(ctx, env) for f in fns)
        if isinstance(q, BagLit):
            fns = tuple(self.compile(i) for i in q.items)
            return lambda ctx, env: make_bag_value(f(ctx, env) for f in fns)
        if isinstance(q, ListLit):
            fns = tuple(self.compile(i) for i in q.items)
            return lambda ctx, env: ListLit(
                tuple(f(ctx, env) for f in fns)
            )
        if isinstance(q, SetOp):
            return self._compile_setop(q)
        if isinstance(q, IntOp):
            lf, rf = self.compile(q.left), self.compile(q.right)
            op = _INT_FNS[q.op]

            def intop_fn(ctx, env):
                l, r = lf(ctx, env), rf(ctx, env)
                if type(l) is not IntLit or type(r) is not IntLit:
                    raise StuckError(f"arithmetic on {l}, {r}")
                return IntLit(op(l.value, r.value))

            return intop_fn
        if isinstance(q, Cmp):
            lf, rf = self.compile(q.left), self.compile(q.right)
            op = _CMP_FNS[q.op]

            def cmp_fn(ctx, env):
                l, r = lf(ctx, env), rf(ctx, env)
                if type(l) is not IntLit or type(r) is not IntLit:
                    raise StuckError(f"comparison on {l}, {r}")
                return BoolLit(op(l.value, r.value))

            return cmp_fn
        if isinstance(q, PrimEq):
            lf, rf = self.compile(q.left), self.compile(q.right)

            def primeq_fn(ctx, env):
                l, r = lf(ctx, env), rf(ctx, env)
                if type(l) is not type(r) or not isinstance(l, _PRIMS):
                    raise StuckError(f"'=' on {l}, {r}")
                return BoolLit(l == r)

            return primeq_fn
        if isinstance(q, ObjEq):
            lf, rf = self.compile(q.left), self.compile(q.right)

            def objeq_fn(ctx, env):
                l, r = lf(ctx, env), rf(ctx, env)
                if not isinstance(l, OidRef) or not isinstance(r, OidRef):
                    raise StuckError("'==' on non-oids")
                ctx.oe.get(l.name)
                ctx.oe.get(r.name)
                return BoolLit(l.name == r.name)

            return objeq_fn
        if isinstance(q, RecordLit):
            pairs = tuple((lbl, self.compile(sub)) for lbl, sub in q.fields)
            return lambda ctx, env: RecordLit(
                tuple((lbl, f(ctx, env)) for lbl, f in pairs)
            )
        if isinstance(q, Field):
            tf = self.compile(q.target)
            name = q.name

            def field_fn(ctx, env):
                target = tf(ctx, env)
                if isinstance(target, OidRef):
                    return ctx.oe.get(target.name).attr(name)
                if isinstance(target, RecordLit):
                    hit = target.field(name)
                    if hit is None:
                        raise StuckError(f"record has no label {name!r}")
                    return hit
                raise StuckError(f"projection from {target}")

            return field_fn
        if isinstance(q, DefCall):
            return self._compile_defcall(q)
        if isinstance(q, Size):
            if isinstance(q.arg, ExtentRef):
                name = q.arg.name
                return lambda ctx, env: IntLit(ctx.extent_size(name))
            af = self.compile(q.arg)

            def size_fn(ctx, env):
                v = af(ctx, env)
                if not isinstance(v, (SetLit, BagLit, ListLit)):
                    raise StuckError(f"size of {v}")
                return IntLit(len(v.items))

            return size_fn
        if isinstance(q, ToSet):
            af = self.compile(q.arg)

            def toset_fn(ctx, env):
                v = af(ctx, env)
                if not isinstance(v, (SetLit, BagLit, ListLit)):
                    raise StuckError(f"toset of {v}")
                return collection_to_set(v)

            return toset_fn
        if isinstance(q, Sum):
            af = self.compile(q.arg)

            def sum_fn(ctx, env):
                v = af(ctx, env)
                if not isinstance(v, (SetLit, BagLit, ListLit)):
                    raise StuckError(f"sum of {v}")
                total = 0
                for item in v.items:
                    if not isinstance(item, IntLit):
                        raise StuckError("sum over non-integers")
                    total += item.value
                return IntLit(total)

            return sum_fn
        if isinstance(q, Cast):
            af = self.compile(q.arg)
            cname = q.cname

            def cast_fn(ctx, env):
                v = af(ctx, env)
                if not isinstance(v, OidRef):
                    raise StuckError("cast of a non-object")
                dyn = ctx.oe.get(v.name).cname
                if not ctx.schema.hierarchy.is_subclass(dyn, cname):
                    raise StuckError(f"failed upcast to {cname}")
                return v

            return cast_fn
        if isinstance(q, MethodCall):
            if self.method_mode is not AccessMode.READ_ONLY:
                raise NotCompilable(
                    "method calls are compiled only in read-only method mode"
                )
            tf = self.compile(q.target)
            arg_fns = tuple(self.compile(a) for a in q.args)
            mname = q.mname

            def method_fn(ctx, env):
                target = tf(ctx, env)
                if not isinstance(target, OidRef):
                    raise StuckError("method call on a non-object")
                args = tuple(f(ctx, env) for f in arg_fns)
                return ctx.call_method(target, mname, args)

            return method_fn
        if isinstance(q, New):
            raise NotCompilable(
                f"'new {q.cname}' creates objects (Theorem 4 inapplicable)"
            )
        if isinstance(q, If):
            cf = self.compile(q.cond)
            tf, ef = self.compile(q.then), self.compile(q.els)

            def if_fn(ctx, env):
                cond = cf(ctx, env)
                if not isinstance(cond, BoolLit):
                    raise StuckError("non-boolean guard")
                return tf(ctx, env) if cond.value else ef(ctx, env)

            return if_fn
        if isinstance(q, Comp):
            return self._compile_comp(q)
        if isinstance(q, Traverse):
            return self._compile_traverse(q)
        raise NotCompilable(f"unknown query node {type(q).__name__}")

    def _compile_traverse(self, q: Traverse) -> Callable:
        """Complexity-routed recursive closure (see module docstring).

        GREEN (depth <= :data:`GREEN_TRAVERSE_DEPTH`) unrolls the hop
        loop into a fixed tuple of step closures; YELLOW (deeper bounds)
        runs the shared semi-naive chase; RED (unbounded) answers from
        the persistent interval index when the reference graph over the
        cone is acyclic and falls back to the chase otherwise.  All
        three charge one budget unit per visited node and record their
        reads in the context's dynamic ``R`` trace, so the compiled
        effect stays inside the static closure bound.
        """
        attr = q.attr
        depth = q.depth
        if depth is not None and depth <= GREEN_TRAVERSE_DEPTH:
            route = "green"
        elif depth is not None:
            route = "yellow"
        else:
            route = "red"
        bound = f"depth<={depth}" if depth is not None else "unbounded"
        self.notes.append(f"traverse route: {route} ({attr!r}, {bound})")

        static_cone: frozenset[str] | None = None
        extent_hint: str | None = None
        if isinstance(q.source, ExtentRef):
            # extent-sourced traversal: the start oids come straight
            # from the extent (no canonical-set materialisation), and
            # the element class is statically known, so the RED cone is
            # the compile-time reachable closure — identical to the
            # effect rule's bound
            extent_name = extent_hint = q.source.name
            try:
                from repro.model.closure import closure_read_set

                static_cone = closure_read_set(
                    self.schema, self.schema.extent_class(extent_name), attr
                )
            except Exception:
                static_cone = None

            def start_oids(ctx, env):
                return ctx.extent_members(extent_name)

        else:
            sf = self.compile(q.source)

            def start_oids(ctx, env):
                source = sf(ctx, env)
                if not isinstance(source, SetLit):
                    raise StuckError(f"traverse over non-set {source}")
                start = []
                for item in source.items:
                    if not isinstance(item, OidRef):
                        raise StuckError(f"traverse over non-object {item}")
                    start.append(item.name)
                return start

        if route == "green":
            steps = tuple(_traverse_hop(attr) for _ in range(depth))

            def green_fn(ctx, env):
                start = start_oids(ctx, env)
                maybe_fault("exec.traverse")
                seen: set = set()
                frontier: list = []
                for o in start:
                    if o in seen:
                        continue
                    seen.add(o)
                    ctx.charge()
                    cname = ctx.oe.get(o).cname
                    ctx.reads.add(cname)
                    ctx.note_shard_read(cname, None)
                    frontier.append(o)
                for step in steps:
                    if not frontier:
                        break
                    frontier = step(ctx, seen, frontier)
                if ctx.obs:
                    from repro.obs.metrics import REGISTRY

                    REGISTRY.counter(
                        "exec_traverse_total", route="green"
                    ).inc()
                return make_oid_set(seen)

            return green_fn

        if route == "yellow":

            def yellow_fn(ctx, env):
                start = start_oids(ctx, env)
                oids = ctx.traverse_chase(start, attr, depth)
                return make_oid_set(oids)

            return yellow_fn

        def red_fn(ctx, env):
            start = start_oids(ctx, env)
            oids = ctx.traverse_indexed(start, attr, static_cone, extent_hint)
            if oids is None:
                oids = ctx.traverse_chase(start, attr, None)
            return make_oid_set(oids)

        return red_fn

    def _compile_setop(self, q: SetOp) -> Callable:
        lf, rf = self.compile(q.left), self.compile(q.right)
        op = q.op
        set_fn = _SET_FNS[op]
        bag_fn = _BAG_FNS[op]

        def setop_fn(ctx, env):
            l, r = lf(ctx, env), rf(ctx, env)
            if isinstance(l, SetLit) and isinstance(r, SetLit):
                return set_fn(l, r)
            if isinstance(l, BagLit) and isinstance(r, BagLit):
                return bag_fn(l, r)
            if isinstance(l, ListLit) and isinstance(r, ListLit):
                if op is not SetOpKind.UNION:
                    raise StuckError("lists support only union")
                return list_concat(l, r)
            raise StuckError(f"set operator on {l}, {r}")

        return setop_fn

    def _compile_defcall(self, q: DefCall) -> Callable:
        d = self.defs.get(q.name)
        if d is None:
            raise NotCompilable(f"unknown definition {q.name!r}")
        cached = self._def_bodies.get(q.name)
        if cached is None:
            # definitions are non-recursive (⊢_prog), so this terminates
            params = tuple(d.param_names())
            body_fn = self.compile(d.body)
            cached = (params, body_fn)
            self._def_bodies[q.name] = cached
        params, body_fn = cached
        if len(q.args) != len(params):
            raise NotCompilable(f"definition {q.name!r}: arity mismatch")
        arg_fns = tuple(self.compile(a) for a in q.args)

        def defcall_fn(ctx, env):
            call_env = {
                p: f(ctx, env) for p, f in zip(params, arg_fns)
            }
            return body_fn(ctx, call_env)

        return defcall_fn

    # -- comprehensions --------------------------------------------------
    def _compile_comp(self, q: Comp) -> Callable:
        gens: list[Gen] = [cq for cq in q.qualifiers if isinstance(cq, Gen)]
        n_gens = len(gens)
        dup_vars = len({g.var for g in gens}) != n_gens

        # slot g holds the predicates scheduled after generator g-1
        # (slot 0 = before any generator)
        slot_preds: list[list[Query]] = [[] for _ in range(n_gens + 1)]
        gen_uncorrelated: list[bool] = []
        latest_binder: dict[str, int] = {}
        g = 0
        for cq in q.qualifiers:
            if isinstance(cq, Gen):
                src_fv = free_vars(cq.source)
                gen_uncorrelated.append(
                    not any(latest_binder.get(v, 0) > 0 for v in src_fv)
                )
                g += 1
                latest_binder[cq.var] = g
            else:
                assert isinstance(cq, Pred)
                if is_pure(cq.cond):
                    slot = max(
                        (
                            latest_binder.get(v, 0)
                            for v in free_vars(cq.cond)
                        ),
                        default=0,
                    )
                    if slot < g:
                        self.notes.append(
                            f"pushdown: predicate {cq.cond} hoisted from "
                            f"after generator {g} to after generator {slot}"
                        )
                else:
                    slot = g
                slot_preds[slot].append(cq.cond)

        # variable → extent bindings, for stats-driven selectivity of
        # join candidates and the replan guards' source estimates
        var_extents: dict[str, str] = {
            g.var: g.source.name
            for g in gens
            if isinstance(g.source, ExtentRef)
        }

        # pick hash joins where a pure equality in a generator's slot
        # links it to earlier-bound variables.  Join selection is
        # slot-local, so it runs as a forward pre-pass (consuming the
        # equalities from slot_preds) — profiling needs the per-
        # generator operator kinds before the reversed build loop.
        joins: list = [None] * n_gens
        for i in range(1, n_gens + 1):
            gen = gens[i - 1]
            if not dup_vars and gen_uncorrelated[i - 1]:
                joins[i - 1] = self._pick_join(
                    gen, i, slot_preds[i], gens, var_extents
                )

        comp_op = pred_ops = gen_ops = emit_op = None
        if self.profile:
            comp_op, pred_ops, gen_ops, emit_op = self._comp_ops(
                q, gens, slot_preds, joins
            )

        # a single-generator comprehension whose predicates and head are
        # all pure may fan its scan out per shard: the downstream chain
        # touches only per-worker env/acc and the immutable store
        par_ok = (
            n_gens == 1
            and joins[0] is None
            and not self.profile
            and is_pure(q.head)
            and all(is_pure(c) for c in slot_preds[0])
            and all(is_pure(c) for c in slot_preds[1])
        )

        with self._under(emit_op):
            head_fn = self.compile(q.head)

        def emit_stage(ctx, env, acc, state):
            ctx.charge()
            acc.append(head_fn(ctx, env))

        stage = self._wrap_stage(emit_op, emit_stage)
        for i in range(n_gens, 0, -1):
            gen = gens[i - 1]
            preds = slot_preds[i]
            gop = gen_ops[i - 1] if gen_ops is not None else None
            for k in range(len(preds) - 1, -1, -1):
                pop = pred_ops[i][k] if pred_ops is not None else None
                with self._under(pop):
                    cond_fn = self.compile(preds[k])
                stage = self._wrap_stage(
                    pop, self._pred_stage(cond_fn, stage)
                )
            with self._under(gop):
                if joins[i - 1] is not None:
                    stage = self._join_stage(gen, joins[i - 1], stage)
                elif (
                    not dup_vars
                    and self.shards is not None
                    and isinstance(gen.source, ExtentRef)
                    and self.shards.spec(gen.source.name) is not None
                ):
                    spec = self.shards.spec(gen.source.name)
                    probe_q = (
                        self._pick_shard_probe(
                            gen.var,
                            slot_preds[i],
                            {g.var for g in gens[: i - 1]},
                            {g.var for g in gens},
                            spec.by,
                        )
                        if spec.by is not None
                        else None
                    )
                    stage = self._sharded_gen_stage(
                        gen,
                        gen_uncorrelated[i - 1],
                        probe_q,
                        par_ok,
                        stage,
                    )
                else:
                    stage = self._gen_stage(
                        gen,
                        gen_uncorrelated[i - 1],
                        stage,
                        est=self._source_estimate(
                            gen, gen_uncorrelated[i - 1], var_extents
                        ),
                    )
            stage = self._wrap_stage(gop, stage)
        preds = slot_preds[0]
        for k in range(len(preds) - 1, -1, -1):
            pop = pred_ops[0][k] if pred_ops is not None else None
            with self._under(pop):
                cond_fn = self.compile(preds[k])
            stage = self._wrap_stage(pop, self._pred_stage(cond_fn, stage))

        first = stage
        n_states = self._next_sid

        def comp_fn(ctx, env):
            ctx.charge()
            acc: list[Query] = []
            state = [None] * n_states if n_states else None
            first(ctx, env, acc, state)
            return make_set_value(acc)

        return self._wrap_fn(comp_op, comp_fn)

    def _comp_ops(self, q: Comp, gens, slot_preds, joins):
        """Lay out profiling operators for one comprehension, in
        pipeline order, with cost-model estimates flowing through.

        Returns ``(comp_op, pred_ops, gen_ops, emit_op)`` where
        ``pred_ops`` mirrors the ``slot_preds`` structure.
        """
        from repro.lang.pprint import pretty

        model = self.model
        mult = self._mult  # estimated executions of this comprehension
        comp_op = self._new_op(
            "comp",
            pretty(q),
            parent=self._cur_parent,
            est_rows=mult * model.cardinality(q),
            est_calls=mult,
        )
        chain: list[int] = []
        prev = comp_op
        rows = 1.0  # estimated rows in flight, per comp execution
        # the same env the reorder rule prices with, so the profiler's
        # per-operator estimates and the optimizer's choice always agree
        env: dict[str, str] = {}

        def add(kind: str, label: str, est_rows: float, calls: float) -> int:
            nonlocal prev
            op = self._new_op(
                kind, label, parent=prev, est_rows=est_rows, est_calls=calls
            )
            chain.append(op)
            prev = op
            return op

        pred_ops: list[list[int]] = [[] for _ in slot_preds]
        gen_ops: list[int] = []

        def add_filters(slot: int) -> None:
            nonlocal rows
            for cond in slot_preds[slot]:
                calls = mult * rows
                rows *= model.predicate_selectivity(cond, env)
                pred_ops[slot].append(
                    add("filter", f"filter {pretty(cond)}", mult * rows, calls)
                )

        add_filters(0)
        for i, gen in enumerate(gens):
            calls = mult * rows
            card = model.cardinality(gen.source, env)
            if isinstance(gen.source, ExtentRef):
                env[gen.var] = gen.source.name
            else:
                env.pop(gen.var, None)
            if joins[i] is not None:
                probe_q, build_q, is_objeq, cond = joins[i]
                rows *= card * model.predicate_selectivity(cond, env)
                label = (
                    f"hash join {gen.var} <- {pretty(gen.source)} on "
                    f"{pretty(build_q)} {'==' if is_objeq else '='} "
                    f"{pretty(probe_q)}"
                )
                gen_ops.append(add("hash-join", label, mult * rows, calls))
            else:
                rows *= card
                label = f"scan {gen.var} <- {pretty(gen.source)}"
                gen_ops.append(add("scan", label, mult * rows, calls))
            add_filters(i + 1)
        emit_op = add(
            "emit", f"emit {pretty(q.head)}", mult * rows, mult * rows
        )
        for a, b in zip(chain, chain[1:]):
            self.ops[a].rows_from = b
        self.ops[emit_op].rows_from = emit_op
        self.ops[comp_op].rows_from = emit_op
        return comp_op, pred_ops, gen_ops, emit_op

    def _pick_join(
        self,
        gen: Gen,
        slot: int,
        preds: list[Query],
        gens: list[Gen],
        var_extents: dict[str, str] | None = None,
    ):
        """Find (and consume) the best hash-joinable equality here.

        Eligible: ``PrimEq``/``ObjEq`` where one side mentions, among
        this comprehension's variables, exactly the new variable, and
        the other side none bound at or after this generator.  Earlier
        comprehension variables and enclosing-scope variables may appear
        freely on the probe side; the build side must depend on the new
        variable only, so one table serves every probe row.

        With a cost model, candidates are *ranked*: an index-backed key
        (bare extent keyed by one attribute — served by the persistent
        :class:`~repro.db.store.AttributeIndexes`) beats an ad-hoc hash
        build, and among those the most selective equality (smallest
        estimated bucket) wins.  Without a model the first eligible
        equality is taken, as before.
        """
        comp_vars = {g.var for g in gens}
        earlier = {g.var for g in gens[: slot - 1]}
        var = gen.var
        candidates = []
        for idx, cond in enumerate(preds):
            if not isinstance(cond, (PrimEq, ObjEq)):
                continue
            for probe_q, build_q in (
                (cond.left, cond.right),
                (cond.right, cond.left),
            ):
                build_fv = free_vars(build_q) & comp_vars
                probe_fv = free_vars(probe_q) & comp_vars
                if build_fv == {var} and probe_fv <= earlier:
                    candidates.append((idx, probe_q, build_q, cond))
                    break
        if not candidates:
            return None
        if self.model is not None and len(candidates) > 1:
            env = dict(var_extents or {})

            def rank(cand):
                idx, probe_q, build_q, cond = cand
                indexed = (
                    isinstance(gen.source, ExtentRef)
                    and isinstance(build_q, Field)
                    and isinstance(build_q.target, Var)
                    and build_q.target.name == var
                )
                sel = self.model.predicate_selectivity(cond, env)
                return (0 if indexed else 1, sel, idx)

            candidates.sort(key=rank)
            if candidates[0][0] != sorted(c[0] for c in candidates)[0]:
                from repro.lang.pprint import pretty

                self.notes.append(
                    f"join-choice: {var} keyed by "
                    f"{pretty(candidates[0][3])} "
                    f"(most selective of {len(candidates)} candidates)"
                )
        idx, probe_q, build_q, cond = candidates[0]
        preds.pop(idx)
        return (probe_q, build_q, isinstance(cond, ObjEq), cond)

    def _pred_stage(self, cond_fn: Callable, nxt: Callable) -> Callable:
        def stage(ctx, env, acc, state):
            cond = cond_fn(ctx, env)
            if not isinstance(cond, BoolLit):
                raise StuckError("non-boolean comprehension predicate")
            if cond.value:
                nxt(ctx, env, acc, state)

        return stage

    def _source_estimate(
        self, gen: Gen, uncorrelated: bool, var_extents: dict[str, str]
    ) -> float | None:
        """Compile-time cardinality estimate for one generator's source,
        baked into the stage as the adaptive-replan reference point.

        Only *derived* uncorrelated sources (nested comprehensions,
        definition calls, set operations…) get one: a bare extent's size
        is read exactly off the live EE at costing time, so it cannot
        misestimate — whereas a derived source's estimate rests on
        selectivity guesses, which is where skew bites.
        """
        if (
            self.model is None
            or not uncorrelated
            or isinstance(gen.source, ExtentRef)
        ):
            return None
        try:
            return max(1.0, self.model.cardinality(gen.source, var_extents))
        except Exception:
            return None

    def _gen_stage(
        self,
        gen: Gen,
        uncorrelated: bool,
        nxt: Callable,
        est: float | None = None,
    ) -> Callable:
        var = gen.var
        source_fn = self.compile(gen.source)
        # an uncorrelated source yields the same collection on every
        # outer row; evaluate it lazily once per comprehension execution
        # (closed sources once per *plan* execution)
        sid = self._sid() if uncorrelated else None
        closed = uncorrelated and not free_vars(gen.source)
        source = gen.source

        def stage(ctx, env, acc, state):
            items = None
            if sid is not None:
                items = (
                    ctx.stage_cache.get(sid) if closed else state[sid]
                )
            if items is None:
                src = source_fn(ctx, env)
                if not isinstance(src, (SetLit, BagLit, ListLit)):
                    raise StuckError(f"generator over {src}")
                items = src.items
                if est is not None and ctx.replan is not None:
                    ctx.replan.check(source, est, len(items))
                if sid is not None:
                    if closed:
                        ctx.stage_cache[sid] = items
                    else:
                        state[sid] = items
            old = env.get(var, _MISSING)
            try:
                for item in items:
                    ctx.charge()
                    env[var] = item
                    nxt(ctx, env, acc, state)
            finally:
                if old is _MISSING:
                    env.pop(var, None)
                else:
                    env[var] = old

        return stage

    def _pick_shard_probe(
        self,
        var: str,
        preds: list[Query],
        earlier: set[str],
        comp_vars: set[str],
        by: str,
    ):
        """Find (without consuming) a shard-pruning equality.

        A pure predicate ``x.by = probe`` in the new generator's slot,
        with ``probe`` independent of this and later generators, confines
        the surviving rows to the shard ``probe`` hashes to.  The
        predicate stays in the pipeline — it still filters hash
        collisions within the shard, so pruning changes which rows are
        *scanned*, never which rows are *kept*.
        """
        for cond in preds:
            if not isinstance(cond, PrimEq):
                continue
            for fld, probe in (
                (cond.left, cond.right),
                (cond.right, cond.left),
            ):
                if (
                    isinstance(fld, Field)
                    and isinstance(fld.target, Var)
                    and fld.target.name == var
                    and fld.name == by
                    and is_pure(probe)
                    and (free_vars(probe) & comp_vars) <= earlier
                ):
                    return probe
        return None

    def _sharded_gen_stage(
        self,
        gen: Gen,
        uncorrelated: bool,
        probe_q,
        parallel_ok: bool,
        nxt: Callable,
    ) -> Callable:
        """A generator over a sharded extent: prune or fan out.

        Three run-time regimes, re-validated against the live shard
        layout on every execution (falling back to the plain stage keeps
        the unsharded semantics bit-for-bit):

        * a shard-probe equality confines the scan to one shard;
        * a big enough whole-extent scan with a pure downstream chain
          runs per-shard on the worker pool, merged in shard order;
        * otherwise the plain sequential stage runs.
        """
        from repro.db.shards import shard_of as _shard_of

        var = gen.var
        extent = gen.source.name
        probe_fn = self.compile(probe_q) if probe_q is not None else None
        plain = self._gen_stage(gen, uncorrelated, nxt)
        if probe_q is not None:
            self.notes.append(
                f"shard-prune: {var} <- {extent} confined by "
                f"{extent}-shard of {probe_q}"
            )

        def stage(ctx, env, acc, state):
            spec, parts = ctx.shard_view(extent)
            if spec is None:
                plain(ctx, env, acc, state)
                return
            if probe_fn is not None and spec.by is not None:
                try:
                    key = probe_fn(ctx, env)
                except (StuckError, EvalError):
                    key = None  # the plain path will (re)surface this
                if isinstance(key, _PRIMS):
                    items = ctx.shard_items(
                        extent, _shard_of(key, spec.k), parts
                    )
                    old = env.get(var, _MISSING)
                    try:
                        for item in items:
                            ctx.charge()
                            env[var] = item
                            nxt(ctx, env, acc, state)
                    finally:
                        if old is _MISSING:
                            env.pop(var, None)
                        else:
                            env[var] = old
                    return
            if parallel_ok and _parallel.should_parallelize(
                len(ctx.ee.members(extent)), len(parts)
            ):
                _parallel_scan(ctx, env, acc, state, var, extent, parts, nxt)
                return
            plain(ctx, env, acc, state)

        return stage

    def _join_stage(self, gen: Gen, join, nxt: Callable) -> Callable:
        var = gen.var
        probe_q, build_q, is_objeq, _cond = join
        probe_fn = self.compile(probe_q)
        sid = self._sid()
        closed = not (free_vars(gen.source) | (free_vars(build_q) - {var}))

        # bare extent keyed by one attribute: use the persistent index
        use_index = (
            isinstance(gen.source, ExtentRef)
            and isinstance(build_q, Field)
            and isinstance(build_q.target, Var)
            and build_q.target.name == var
        )
        if use_index:
            extent, attr = gen.source.name, build_q.name
            self.notes.append(
                f"hash join: {var} <- {extent} via index "
                f"{extent}.{attr} {'==' if is_objeq else '='} {probe_q}"
            )
            spec = (
                self.shards.spec(extent) if self.shards is not None else None
            )
            if spec is not None and spec.by == attr:
                self.notes.append(
                    f"shard-prune: index probe {extent}.{attr} confined "
                    f"to the shard of {probe_q}"
                )
            source_fn = build_fn = None
        else:
            extent = attr = None
            source_fn = self.compile(gen.source)
            build_fn = self.compile(build_q)
            self.notes.append(
                f"hash join: {var} <- {gen.source} keyed by {build_q} "
                f"{'==' if is_objeq else '='} {probe_q}"
            )

        def stage(ctx, env, acc, state):
            if use_index:
                # probe first: when the indexed attribute is the live
                # shard key, the bucket for this probe lives entirely in
                # the shard the key hashes to (see pruned_attr_index) —
                # only that shard's partial is built and only that
                # (class, shard) enters the dynamic trace
                key = probe_fn(ctx, env)
                _check_key(ctx, key, is_objeq)
                table = ctx.pruned_attr_index(extent, attr, key)
                if table is None:
                    table = (
                        ctx.stage_cache.get(sid) if closed else state[sid]
                    )
                    if table is None:
                        table = ctx.attr_index(extent, attr)
                        if closed:
                            ctx.stage_cache[sid] = table
                        else:
                            state[sid] = table
                bucket = table.get(key)
                if bucket:
                    old = env.get(var, _MISSING)
                    try:
                        for item in bucket:
                            ctx.charge()
                            env[var] = item
                            nxt(ctx, env, acc, state)
                    finally:
                        if old is _MISSING:
                            env.pop(var, None)
                        else:
                            env[var] = old
                return
            table = ctx.stage_cache.get(sid) if closed else state[sid]
            if table is None:
                src = source_fn(ctx, env)
                if not isinstance(src, (SetLit, BagLit, ListLit)):
                    raise StuckError(f"generator over {src}")
                built: dict[Query, list[Query]] = {}
                old = env.get(var, _MISSING)
                try:
                    for item in src.items:
                        ctx.charge()
                        env[var] = item
                        key = build_fn(ctx, env)
                        _check_key(ctx, key, is_objeq)
                        built.setdefault(key, []).append(item)
                finally:
                    if old is _MISSING:
                        env.pop(var, None)
                    else:
                        env[var] = old
                table = {k: tuple(v) for k, v in built.items()}
                if closed:
                    ctx.stage_cache[sid] = table
                else:
                    state[sid] = table
            key = probe_fn(ctx, env)
            _check_key(ctx, key, is_objeq)
            bucket = table.get(key)
            if bucket:
                old = env.get(var, _MISSING)
                try:
                    for item in bucket:
                        ctx.charge()
                        env[var] = item
                        nxt(ctx, env, acc, state)
                finally:
                    if old is _MISSING:
                        env.pop(var, None)
                    else:
                        env[var] = old

        return stage


def _parallel_scan(ctx, env, acc, state, var, extent, parts, nxt) -> None:
    """Fan one whole-extent generator out per shard on the worker pool.

    Each worker runs the (pure, therefore thread-safe) downstream chain
    against a forked context and its own env/acc/state; results merge
    in shard order and the final ``make_set_value`` canonicalisation
    makes the order immaterial.  Per-worker row charges fold back into
    the parent context, so ops and budget match the sequential run; a
    transient fault in any shard's task fails the whole query, exactly
    like its sequential counterpart.
    """
    ctx.charge()
    maybe_fault("store.read")
    cname = ctx.ee.class_of(extent)
    ctx.reads.add(cname)
    ctx.note_shard_read(cname, None)
    n_state = len(state) if state is not None else 0

    def make_task(members):
        def task():
            maybe_fault("exec.shard")
            sub = ctx.fork()
            senv = dict(env)
            sacc: list[Query] = []
            sstate = [None] * n_state if n_state else None
            for oid in sorted(members):
                sub.charge()
                senv[var] = OidRef(oid)
                nxt(sub, senv, sacc, sstate)
            return sacc, sub.ops

        return task

    results = _parallel.run_sharded([make_task(m) for m in parts])
    total_ops = 0
    for sacc, ops in results:
        acc.extend(sacc)
        total_ops += ops
    ctx.absorb(total_ops)


def _check_key(ctx, key: Query, is_objeq: bool) -> None:
    """The equality's own dynamic guards, applied to each join key."""
    if is_objeq:
        if not isinstance(key, OidRef):
            raise StuckError("'==' on non-oids")
        ctx.oe.get(key.name)
    elif not isinstance(key, _PRIMS):
        raise StuckError(f"'=' on {key}")
