"""Engine selection and compiled-plan execution.

:func:`decide` is the compile/fallback gate behind
``Database.run(engine="auto")``: a query is routed to the compiled
engine exactly when the Figure 3 effect system proves it read-only
(empty ``A``/``U`` write set — the premise of Theorem 4, which makes
every schedule, and hence the set-at-a-time operator order, yield the
same observables) *and* the compiler covers its syntax.  Everything
else falls back to the paper's reduction machine, with the reason
recorded for ``.explain``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.effects.algebra import Effect
from repro.exec.cache import PlanEntry
from repro.exec.compiler import CompiledPlan, NotCompilable, compile_plan
from repro.exec.runtime import ExecContext, ReplanGuard, ReplanSignal
from repro.lang.ast import Query


@dataclass(frozen=True)
class PlanDecision:
    """Which engine a query runs on, and why."""

    engine: str  # "compiled" | "reduction"
    reason: str
    entry: PlanEntry | None = None
    static_effect: Effect | None = None

    @property
    def plan(self) -> CompiledPlan | None:
        return self.entry.plan if self.entry is not None else None

    def describe(self) -> str:
        lines = [f"{self.engine} — {self.reason}"]
        if self.plan is not None and self.plan.notes:
            lines.extend(f"  {note}" for note in self.plan.notes)
        return "\n".join(lines)


def decide(db, q: Query) -> PlanDecision:
    """The compile/fallback decision for one parsed query."""
    from repro.errors import ReproError

    try:
        _, eff = db.typecheck_with_effect(q)
    except ReproError as exc:
        return PlanDecision(
            "reduction", f"static analysis failed ({exc})"
        )
    if eff.writes():
        written = ", ".join(sorted(eff.writes()))
        return PlanDecision(
            "reduction",
            f"write effects on {{{written}}} — Theorem 4 does not apply",
            static_effect=eff,
        )
    entry = db._plan_cache.get(q, db._defs_version)
    if entry is not None and _stats_stale(db, entry):
        # the catalog the plan was costed against has materially
        # changed (stats-epoch drift): recompile rather than keep a
        # generator order chosen for a different data shape
        entry = None
    if entry is None:
        entry = _compile_entry(db, q, eff)
        db._plan_cache.put(q, db._defs_version, entry)
    if entry.plan is None:
        return PlanDecision(
            "reduction", entry.reason, entry=entry, static_effect=eff
        )
    return PlanDecision(
        "compiled",
        "read-only (empty write effect) — deterministic by Theorem 4",
        entry=entry,
        static_effect=eff,
    )


def _stats_stale(db, entry: PlanEntry) -> bool:
    """Has the statistics epoch drifted since ``entry`` was costed?"""
    catalog = getattr(db, "_stats", None)
    if catalog is None:
        return False
    return entry.stats_epoch != catalog.observe(db.ee)


def _compile_entry(db, q: Query, eff: Effect) -> PlanEntry:
    from repro.optimizer.cost import CostModel, cost_rules
    from repro.optimizer.planner import optimize

    # cost-based pipeline: the reorder rule prices generator orders
    # with the stats catalog, and the model rides into the compiler
    # for join selection and the replan guards' baked-in estimates
    model = CostModel.from_database(db)
    try:
        normalised = optimize(db, q, cost_rules(model), model=model).query
        plan = compile_plan(
            db.schema,
            db._definitions,
            normalised,
            method_mode=db.method_mode,
            method_fuel=db.machine.method_fuel,
            cost_model=model,
            shards=getattr(db, "_shards", None),
        )
        return PlanEntry(
            plan=plan,
            reads=eff.reads(),
            static_effect=eff,
            stats_epoch=model.stats_epoch,
        )
    except NotCompilable as exc:
        return PlanEntry(
            plan=None,
            reads=eff.reads(),
            static_effect=eff,
            reason=f"not compilable: {exc}",
            stats_epoch=model.stats_epoch,
        )


def route_read(db, q: Query, decision: PlanDecision, **run_kw):
    """The replication routing hook behind ``Database.run(engine="auto")``.

    A query whose Figure 3 effect has an **empty write set** is exactly
    one Theorem 4 makes schedule-invariant — so it may be answered by
    any replica whose per-extent watermarks cover its R-set (plus the
    star mark that tracks ``U``/``define`` commits, per the §5
    reference-chasing caveat) without the answer being distinguishable
    from the primary's.  Returns the replica's :class:`EvalResult`, or
    ``None`` when no replica qualifies (the caller degrades to the
    primary: counted, never wrong).
    """
    replicas = getattr(db, "_replicas", None)
    if replicas is None:
        return None
    eff = decision.static_effect
    if eff is None or eff.writes():
        return None
    return replicas.try_serve(q, eff, **run_kw)


def execute_plan(
    db, entry: PlanEntry, *, budget=None, ee=None, oe=None, trace=None
):
    """Run a compiled plan against the database's current EE/OE.

    Returns ``(value, dynamic_effect, ops)``; the environments are
    untouched by construction (the plan is read-only).  ``ee``/``oe``
    override the live environments for pinned snapshot reads (the
    scheduler's routed reads evaluate against the immutable pair they
    captured at admission, not whatever the replica has applied since).
    ``trace``, when a dict, receives ``"shard_reads"``: the dynamic
    per-class shard sets this execution actually touched (``None`` =
    all shards) — the result cache's per-``(class, shard)`` key.

    **Adaptive replanning**: on a non-pinned execution the context
    carries a :class:`~repro.exec.runtime.ReplanGuard`; when an
    observed source cardinality diverges from the plan's compile-time
    estimate by ``db.replan_ratio`` or more, the plan raises
    :class:`~repro.exec.runtime.ReplanSignal`, the entry is recompiled
    with the observation as a cardinality override, and execution
    restarts (at most once).  Abandoning the partial run is safe —
    the plan is read-only, so by Theorem 4 re-execution yields the
    same observables — and the restarted attempt gets a fresh budget
    start, so a budget can overshoot by at most one aborted attempt.
    """
    pinned = ee is not None or oe is not None
    ratio = getattr(db, "replan_ratio", None)
    for attempt in (0, 1):
        ctx = ExecContext(
            ee if ee is not None else db.ee,
            oe if oe is not None else db.oe,
            db.schema,
            db._definitions,
            method_mode=db.method_mode,
            method_fuel=db.machine.method_fuel,
            supply=db.supply,
            budget=budget,
            # attribute indexes are versioned against the *live* store; a
            # pinned snapshot may be older, so it scans without them
            indexes=None if pinned else db._indexes,
            state_version=-1 if pinned else db._state_version,
            shards=None if pinned else getattr(db, "_shards", None),
            closure_indexes=None if pinned else db._closure_indexes,
        )
        if attempt == 0 and not pinned and ratio:
            ctx.replan = ReplanGuard(ratio)
        # one charge per execution: every machine run takes at least one
        # step, so the compiled engine exposes the same fault/budget site
        # even for constant plans
        ctx.charge()
        try:
            if ctx.obs:
                from repro.obs.spans import span as _span

                with _span("exec.plan") as sp:
                    value = entry.plan.fn(ctx, {})
                    sp.set(ops=ctx.ops, reads=len(ctx.reads))
            else:
                # obs-off fast path: no span/metric/label object built
                value = entry.plan.fn(ctx, {})
        except ReplanSignal as sig:
            _replan_entry(db, entry, sig)
            continue
        break
    if trace is not None:
        trace["shard_reads"] = {
            c: (None if s is None else frozenset(s))
            for c, s in ctx.shard_reads.items()
        }
    return value, ctx.effect(), ctx.ops


def _replan_entry(db, entry: PlanEntry, sig) -> None:
    """Mid-query re-optimization after a caught :class:`ReplanSignal`.

    Recompiles the entry's plan with the *observed* cardinality of the
    misestimated source installed as an override, so the join-order
    search prices the permutations against reality; the refreshed plan
    replaces the cached one in place (later executions keep it).
    """
    from repro.lang.pprint import pretty
    from repro.obs import flight as _flight
    from repro.obs._state import STATE as _OBS
    from repro.obs.metrics import REGISTRY as _METRICS
    from repro.optimizer.cost import CostModel, cost_rules
    from repro.optimizer.planner import optimize

    model = CostModel.from_database(db)
    model.card_overrides[sig.source] = float(sig.actual)
    base = entry.plan.source
    normalised = optimize(db, base, cost_rules(model), model=model).query
    plan = compile_plan(
        db.schema,
        db._definitions,
        normalised,
        method_mode=db.method_mode,
        method_fuel=db.machine.method_fuel,
        cost_model=model,
        shards=getattr(db, "_shards", None),
    )
    note = (
        f"replan: {pretty(sig.source)} estimated {sig.est:.0f} rows, "
        f"observed {sig.actual}"
    )
    entry.plan = CompiledPlan(
        fn=plan.fn,
        source=plan.source,
        notes=plan.notes + (note,),
        ops=plan.ops,
    )
    entry.stats_epoch = model.stats_epoch
    qstats = getattr(db, "_qstats", None)
    if qstats is not None and "replans" in qstats:
        qstats["replans"] += 1
    if _OBS.enabled:
        _METRICS.counter("exec_replans_total").inc()
    _flight.record(
        "exec-replan",
        source=pretty(sig.source),
        est=round(sig.est, 1),
        actual=sig.actual,
    )


def compile_profiled(db, q: Query):
    """Compile ``q`` with per-operator instrumentation for
    ``.explain analyze``.

    Always compiles fresh (never the plan cache): profiled plans carry
    wrappers a production run must not pay for, and the cost model is
    snapshotted from the *current* catalog so estimates are the ones a
    replanner would see now.  Returns ``(plan, normalised, model)``.
    Raises :class:`NotCompilable` for queries outside the compiled
    fragment — the caller falls back to instrumented reduction.
    """
    from repro.optimizer.cost import CostModel, cost_rules
    from repro.optimizer.planner import optimize

    model = CostModel.from_database(db)
    normalised = optimize(db, q, cost_rules(model), model=model).query
    plan = compile_plan(
        db.schema,
        db._definitions,
        normalised,
        method_mode=db.method_mode,
        method_fuel=db.machine.method_fuel,
        profile=True,
        cost_model=model,
    )
    return plan, normalised, model


def execute_profiled(db, plan: CompiledPlan, *, budget=None):
    """Run a profiled plan; returns ``(value, ctx, run, elapsed_s)``.

    The run's root operator (id 0) is credited with one call and the
    whole wall-time, so ``build_nodes`` can report the plan total.
    """
    import time

    from repro.obs.profile import ProfileRun

    ctx = ExecContext(
        db.ee,
        db.oe,
        db.schema,
        db._definitions,
        method_mode=db.method_mode,
        method_fuel=db.machine.method_fuel,
        supply=db.supply,
        budget=budget,
        indexes=db._indexes,
        state_version=db._state_version,
        closure_indexes=db._closure_indexes,
    )
    run = ProfileRun(len(plan.ops))
    ctx.prof = run
    ctx.charge()
    t0 = time.perf_counter()
    value = plan.fn(ctx, {})
    elapsed = time.perf_counter() - t0
    if plan.ops:
        run.rows[0] = 1
        run.times[0] = elapsed
    return value, ctx, run, elapsed
