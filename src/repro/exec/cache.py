"""The effect-invalidated plan (and result) cache.

Entries are keyed by ``(query AST, schema fingerprint, definitions
version)`` — query nodes are frozen/hashable, so the parsed query keys
the dict directly.  Each entry carries the compiled plan, the query's
static ``R`` set (Figure 3), and optionally the last computed result
with the store version it was computed at.

Invalidation is *effect-guided*, justified by Theorem 5 (the dynamic
trace of any run is a subeffect of the static effect):

* a committed write with ``A(C)`` atoms evicts exactly the entries
  whose ``R`` set touches a written class — extents are per-class, and
  a freshly created object cannot be referenced by any pre-existing
  attribute value, so entries whose ``R`` set is disjoint from the
  written classes are provably unaffected and are *promoted* to the
  post-write store version instead;
* a committed write with ``U(C)`` atoms additionally drops every cached
  **result** (plans survive outside ``R ∩ {C}``): attribute reads carry
  no effect atom, so a query whose ``R`` set avoids ``C`` can still
  observe an update through a chain of object references — e.g.
  ``{ e.UniqueManager.name | e <- Employees }`` has effect
  ``{R(Employee)}`` but reads Manager state;
* any state change the database cannot attribute to a known effect
  (snapshot restore, persistence load, transaction rollback) simply
  bumps the store version, which lazily invalidates every cached
  result — the safe default.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.effects.algebra import Effect
from repro.exec.compiler import CompiledPlan
from repro.lang.ast import Query
from repro.obs import flight as _flight


def schema_fingerprint(schema) -> tuple:
    """A structural fingerprint of a schema: classes, parents, attrs.

    Two databases with structurally identical schemas share plan-cache
    keys; anything that changes the fingerprint changes the key and so
    implicitly invalidates every plan compiled under the old schema.
    """
    return tuple(
        (
            cname,
            schema.hierarchy.parent.get(cname),
            tuple(schema.atypes(cname)),
        )
        for cname in sorted(schema.hierarchy.parent)
        if cname != "Object"
    ) + tuple(sorted(schema.extents.items()))


@dataclass
class PlanEntry:
    """One cached compilation (or cached refusal) plus its last result."""

    plan: CompiledPlan | None
    reads: frozenset[str]
    static_effect: Effect
    reason: str = ""
    # the statistics epoch the plan was costed against; the engine
    # treats a mismatch with the live catalog as a cache miss, so a
    # generator order chosen against a materially different catalog
    # (e.g. an extent grown 0 -> 10k) is re-costed instead of surviving
    # shard-disjoint promotions forever
    stats_epoch: int = -1
    result: Query | None = field(default=None, repr=False)
    result_effect: Effect | None = field(default=None, repr=False)
    result_steps: int = 0
    result_version: int = -1
    # the dynamic shard trace of the cached result's execution:
    # class -> frozenset of shard ids read, or None for all shards.
    # A class the execution read but that is missing here must be
    # treated as all-shards (conservative).
    result_shard_reads: dict | None = field(default=None, repr=False)


class PlanCache:
    """Per-database cache of compiled plans, bounded, effect-evicted.

    All access is serialised on an internal lock: concurrent scheduled
    readers (``Database.run_many``) share one cache, and eviction
    bookkeeping must stay consistent under that interleaving.
    """

    def __init__(self, fingerprint: tuple, max_entries: int = 256):
        self.fingerprint = fingerprint
        self.max_entries = max_entries
        self._entries: dict[tuple, PlanEntry] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _key(self, q: Query, defs_version: int) -> tuple:
        return (q, self.fingerprint, defs_version)

    def get(self, q: Query, defs_version: int) -> PlanEntry | None:
        with self._lock:
            entry = self._entries.get(self._key(q, defs_version))
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, q: Query, defs_version: int, entry: PlanEntry) -> None:
        key = self._key(q, defs_version)
        with self._lock:
            # a re-put overwrites in place and is size-neutral; only a
            # genuinely new key at capacity pays an eviction
            if key not in self._entries and len(self._entries) >= self.max_entries:
                # drop the oldest insertion: plans recompile cheaply
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
            self._entries[key] = entry

    def note_write(
        self, effect: Effect, pre: int, post: int, shard_writes=None
    ) -> None:
        """A write with this (dynamic) effect moved version pre → post.

        Evicts entries whose ``R`` set intersects the written classes
        (Theorem 5 guarantees nothing else read them); promotes the
        surviving entries' cached results to the new version, except
        under ``U`` atoms, where results are dropped wholesale (see the
        module docstring for the reference-chasing caveat).

        ``shard_writes`` (class → frozenset of shard ids, exact and
        dynamic, sharded classes only) refines ``A``-only eviction to
        ``(class, shard)``: an entry whose recorded result read only
        shards disjoint from every written shard keeps both its plan
        and its result — an object added to shard *i* carries a shard
        attribute hashing to *i*, so it could never have survived the
        equality predicate that confined the cached run to shard *j*.
        """
        adds = effect.adds()
        updates = effect.updates()
        written = adds | updates
        if not written:
            return
        evicted = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                hit = entry.reads & written
                if hit:
                    if (
                        not updates
                        and shard_writes is not None
                        and self._shard_disjoint(entry, hit, shard_writes)
                    ):
                        if entry.result_version == pre:
                            entry.result_version = post
                        continue
                    del self._entries[key]
                    self.evictions += 1
                    evicted += 1
                elif updates:
                    entry.result = None
                    entry.result_effect = None
                    entry.result_version = -1
                elif entry.result_version == pre:
                    entry.result_version = post
        if evicted:
            _flight.record(
                "cache-evict",
                evicted=evicted,
                written=",".join(sorted(written)),
                version=post,
            )

    @staticmethod
    def _shard_disjoint(entry: PlanEntry, hit, shard_writes) -> bool:
        """Every overlapping class read provably disjoint shards?"""
        reads = entry.result_shard_reads
        if reads is None:
            return False
        for cname in hit:
            wrote = shard_writes.get(cname)
            read = reads.get(cname)
            if wrote is None or read is None or (wrote & read):
                return False
        return True

    def clear(self) -> None:
        with self._lock:
            self.evictions += len(self._entries)
            self._entries.clear()

    def cached_queries(self) -> list[Query]:
        """The queries with a live entry (test/introspection helper)."""
        with self._lock:
            return [key[0] for key in self._entries]
