"""The Figure 3 effect system and its ⊢′ / ⊢″ refinements (§4)."""

from repro.effects.algebra import EMPTY, AccessKind, Atom, Effect, add, read, update
from repro.effects.checker import EffectChecker, effect_of
from repro.effects.commutativity import CommutativityChecker, may_commute
from repro.effects.determinism import DeterminismChecker, is_deterministic

__all__ = [
    "AccessKind", "Atom", "CommutativityChecker", "DeterminismChecker",
    "EMPTY", "Effect", "EffectChecker", "add", "effect_of",
    "is_deterministic", "may_commute", "read", "update",
]
