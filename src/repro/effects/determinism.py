"""The ⊢′ system of §4: static detection of non-determinism (Theorem 7).

The paper replaces the (Comp2) rule with::

    E;D;Q ⊢′ q₂ : set(σ) ! ε₂
    E;D;Q, x:σ ⊢′ {q₁ | c⃗q} : σ′ ! ε₁     nonint(ε₁)
    ─────────────────────────────────────────────────
    E;D;Q ⊢′ {q₁ | x ← q₂, c⃗q} : σ′ ! ε₁ ∪ ε₂

Intuition: the comprehension reduces to an arbitrarily-ordered union of
the per-element instances ``{q₁|c⃗q}[x:=vᵢ]``; if no instance both reads
and adds to a common extent (``nonint``), the instances cannot observe
each other and every ordering agrees — up to a bijection on the fresh
oids (Theorem 7).

:class:`DeterminismChecker` is the one-rule delta as a subclass;
:func:`check_deterministic` / :func:`why_nondeterministic` are the
user-facing calls (the latter returns the offending comprehension and
conflicting classes instead of raising — this is what the §1 example
benchmark prints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.effects.algebra import Effect
from repro.effects.checker import EffectChecker
from repro.errors import IOQLEffectError
from repro.lang.ast import Comp, Gen, Program, Query
from repro.model.schema import Schema
from repro.model.types import FuncType, Type
from repro.typing.context import TypeContext


@dataclass(frozen=True)
class Interference:
    """A witness of potential non-determinism: one generator whose body
    both reads and writes the same extent(s)."""

    comp: Comp
    gen: Gen
    body_effect: Effect
    conflicting: frozenset[str]

    def __str__(self) -> str:
        classes = ", ".join(sorted(self.conflicting))
        return (
            f"generator '{self.gen.var} <- …' iterates a body with effect "
            f"{self.body_effect}: extent(s) of {classes} are both read and "
            f"written, so iteration order is observable"
        )


class DeterminismChecker(EffectChecker):
    """⊢′: the Figure 3 system with the (Comp2′) non-interference check."""

    system_name = "⊢′"

    def __init__(self) -> None:
        self.interferences: list[Interference] = []

    def on_generator(self, body_effect, comp, gen, *, source_type=None):
        from repro.model.types import ListType

        if isinstance(source_type, ListType):
            # Ordered iteration: the (List comp) rule is deterministic,
            # so no non-interference obligation arises — the §6.2
            # observation about XQuery's sequence iteration, executable.
            return
        if not body_effect.noninterfering():
            conflicting = body_effect.reads() & body_effect.writes()
            if not conflicting:
                conflicting = body_effect.updates()
            self.interferences.append(
                Interference(comp, gen, body_effect, frozenset(conflicting))
            )


def analyze_determinism(
    schema: Schema,
    q: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> tuple[Type, Effect, list[Interference]]:
    """Run ⊢′; return (type, effect, interference witnesses).

    An empty witness list means the query is *statically deterministic*:
    by Theorem 7 every evaluation order yields the same answer and final
    database up to an oid bijection.
    """
    ctx = TypeContext(schema, defs=dict(defs or {}), vars=dict(var_types or {}))
    checker = DeterminismChecker()
    t, eff = checker.check(ctx, q)
    return t, eff, checker.interferences


def check_deterministic(
    schema: Schema,
    q: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> tuple[Type, Effect]:
    """Accept ``q`` under ⊢′ or raise :class:`IOQLEffectError`.

    Success is the paper's static guarantee of determinism; failure
    means *possible* non-determinism (the analysis is conservative —
    Theorem 5 only bounds the dynamic effect from above).
    """
    t, eff, witnesses = analyze_determinism(
        schema, q, defs=defs, var_types=var_types
    )
    if witnesses:
        raise IOQLEffectError(
            "query rejected by ⊢′ (possibly non-deterministic): "
            + "; ".join(str(w) for w in witnesses)
        )
    return t, eff


def is_deterministic(
    schema: Schema,
    q: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> bool:
    """Boolean form of :func:`check_deterministic`."""
    _, _, witnesses = analyze_determinism(schema, q, defs=defs, var_types=var_types)
    return not witnesses


def analyze_program(
    schema: Schema, p: Program
) -> tuple[Type, Effect, list[Interference]]:
    """⊢′ over a whole program (definitions carry latent effects)."""
    checker = DeterminismChecker()
    t, eff = checker.check_program(schema, p)
    return t, eff, checker.interferences
