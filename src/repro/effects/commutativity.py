"""The ⊢″ system of §4: safe commutation of set operators (Theorem 8).

The paper's motivating example: with one Person ("Jack"/"Utah") and one
Employee ("Jill"/"NYC"), the query::

    (Persons ∩ side-effecting-subquery) …

cannot have its intersection commuted, because the right operand *adds*
a Person while the left operand *reads* the Person extent.  ⊢″ is the
Figure 3 system where the rule for commutative binary set operators
(∪, ∩) additionally requires the operand effects not to interfere; a
query accepted by ⊢″ may have (all of) its set operators commuted with
observably identical results up to an oid bijection (Theorem 8).

This module also provides :func:`may_commute` — the pairwise check the
optimizer uses to gate the rewrite ``q₁ op q₂ ⇒ q₂ op q₁`` on a single
operator, which is the practically useful form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.effects.algebra import Effect
from repro.effects.checker import EffectChecker
from repro.errors import IOQLEffectError
from repro.lang.ast import Query, SetOp
from repro.model.schema import Schema
from repro.model.types import FuncType, Type
from repro.typing.context import TypeContext


@dataclass(frozen=True)
class CommutationConflict:
    """Witness that one set operator's operands interfere."""

    op: SetOp
    left_effect: Effect
    right_effect: Effect

    def __str__(self) -> str:
        return (
            f"'{self.op.op.symbol}' cannot be commuted: left effect "
            f"{self.left_effect} interferes with right effect "
            f"{self.right_effect}"
        )


class CommutativityChecker(EffectChecker):
    """⊢″: Figure 3 with non-interference required at every commutative
    set operator."""

    system_name = "⊢″"

    def __init__(self) -> None:
        self.conflicts: list[CommutationConflict] = []

    def on_setop(self, op, left, right, *, left_type=None, right_type=None):
        from repro.model.types import ListType

        if isinstance(left_type, ListType) or isinstance(right_type, ListType):
            # list union is concatenation — not commutative as a set
            # function, so ⊢″ has nothing to certify here
            return
        if op.op.commutative and left.interferes_with(right):
            self.conflicts.append(CommutationConflict(op, left, right))


def analyze_commutativity(
    schema: Schema,
    q: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> tuple[Type, Effect, list[CommutationConflict]]:
    """Run ⊢″; return (type, effect, conflict witnesses)."""
    ctx = TypeContext(schema, defs=dict(defs or {}), vars=dict(var_types or {}))
    checker = CommutativityChecker()
    t, eff = checker.check(ctx, q)
    return t, eff, checker.conflicts


def check_commutable(
    schema: Schema,
    q: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> tuple[Type, Effect]:
    """Accept under ⊢″ or raise — Theorem 8's premise as a function."""
    t, eff, conflicts = analyze_commutativity(
        schema, q, defs=defs, var_types=var_types
    )
    if conflicts:
        raise IOQLEffectError(
            "query rejected by ⊢″ (unsafe to commute set operators): "
            + "; ".join(str(c) for c in conflicts)
        )
    return t, eff


def may_commute(
    schema: Schema,
    left: Query,
    right: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> bool:
    """May ``left op right`` be rewritten to ``right op left``?

    The pairwise side condition of Theorem 8: the operand effects must
    not interfere, **and** the operands must not be lists — ``union``
    on lists is concatenation, which is not commutative as a set
    function, exactly the exemption :meth:`CommutativityChecker.on_setop`
    applies.  (That the operator itself is commutative — ∪/∩, not
    ``except`` — the optimizer checks separately.)
    """
    from repro.model.types import ListType

    ctx = TypeContext(schema, defs=dict(defs or {}), vars=dict(var_types or {}))
    checker = EffectChecker()
    lt, le = checker.check(ctx, left)
    rt, re_ = checker.check(ctx, right)
    if isinstance(lt, ListType) or isinstance(rt, ListType):
        return False
    return not le.interferes_with(re_)
