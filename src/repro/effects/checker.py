"""The effect type system of Figure 3: ``E; D; Q ⊢ q : σ ! ε``.

Each branch of :meth:`EffectChecker.check` is one rule of Figure 3;
the structure deliberately mirrors :mod:`repro.typing.checker` (the
effect system "is an adjunct to the type system").  The checker
computes the *least* effect derivable for a query; the paper's (Does)
rule — weakening to any larger effect — is then admissible, realised
here by :meth:`~repro.effects.algebra.Effect.subeffect_of`.

The two refinements of §4 are one-rule deltas, exactly as the paper
presents them:

* the ⊢′ system (:mod:`repro.effects.determinism`) overrides the
  generator rule (Comp2) to require ``nonint`` of the body's effect —
  Theorem 7 then guarantees determinism up to an oid bijection;
* the ⊢″ system (:mod:`repro.effects.commutativity`) overrides the
  binary set-operator rule to require the operands not to interfere —
  Theorem 8 then licenses commuting them.

Both are implemented as subclasses overriding a single hook method.
"""

from __future__ import annotations

from typing import Mapping

from repro.effects.algebra import EMPTY, Effect, add, read
from repro.errors import IOQLTypeError, SchemaError
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    Comp,
    DefCall,
    Definition,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Program,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)
from repro.model.closure import closure_read_set, result_lub
from repro.model.schema import Schema
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span
from repro.model.types import (
    BOOL,
    EMPTY_SET_T,
    INT,
    NEVER,
    OBJECT,
    STRING,
    BagType,
    ClassType,
    FuncType,
    ListType,
    NeverType,
    RecordType,
    SetType,
    Type,
)
from repro.typing.context import TypeContext


class EffectChecker:
    """The ⊢ system of Figure 3; subclass hooks give ⊢′ and ⊢″."""

    system_name = "⊢"

    # -- hook points -----------------------------------------------------
    def on_generator(
        self,
        body_effect: Effect,
        comp: Comp,
        gen: Gen,
        *,
        source_type: Type | None = None,
    ) -> None:
        """Called per generator with the effect ε₁ of the residual
        comprehension ``{q | c⃗q}`` — the quantity the ⊢′ (Comp2′) rule
        constrains — and the generator source's collection type (list
        iteration is ordered, hence exempt).  The base system accepts
        everything."""

    def on_setop(
        self,
        op: SetOp,
        left: Effect,
        right: Effect,
        *,
        left_type: Type | None = None,
        right_type: Type | None = None,
    ) -> None:
        """Called per binary set operator with the operand effects —
        the quantities the ⊢″ rule constrains — and the operand types
        (list ``union`` is concatenation, never commutable).  Base:
        accept."""

    # -- instrumented entry point ----------------------------------------
    def check_traced(self, ctx: TypeContext, q: Query) -> tuple[Type, Effect]:
        """:meth:`check` wrapped in an ``effects`` span.

        Records inference wall-time and the size |ε| of the inferred
        effect (its atom count).  The recursive judgement itself stays
        uninstrumented — one derivation is one observation, not
        thousands.
        """
        with _span("effects", system=self.system_name):
            t, eff = self.check(ctx, q)
            if _OBS.enabled:
                _METRICS.counter("effect_inferences_total").inc()
                _METRICS.histogram(
                    "effect_size", bounds=(0, 1, 2, 4, 8, 16)
                ).observe(len(eff.atoms))
            return t, eff

    # -- the judgement ---------------------------------------------------
    def check(self, ctx: TypeContext, q: Query) -> tuple[Type, Effect]:
        """Derive ``q : σ ! ε``; raises on type errors or hook vetoes."""
        # (Int), (Bool), strings: values have the empty effect (Lemma 2.1)
        if isinstance(q, IntLit):
            return INT, EMPTY
        if isinstance(q, BoolLit):
            return BOOL, EMPTY
        if isinstance(q, StrLit):
            return STRING, EMPTY
        if isinstance(q, (Var, OidRef)):
            return ctx.var_type(q.name), EMPTY

        # (Extent): the read effect R(C)
        if isinstance(q, ExtentRef):
            cname = ctx.extent_class(q.name)
            return SetType(ClassType(cname)), Effect.of(read(cname))

        if isinstance(q, SetLit):
            if not q.items:
                return EMPTY_SET_T, EMPTY
            elem: Type = NEVER
            eff = EMPTY
            for item in q.items:
                t, e = self.check(ctx, item)
                elem = self._lub(ctx, elem, t, "set literal")
                eff |= e
            return SetType(elem), eff

        if isinstance(q, (BagLit, ListLit)):
            elem: Type = NEVER
            eff = EMPTY
            for item in q.items:
                t, e = self.check(ctx, item)
                elem = self._lub(ctx, elem, t, "collection literal")
                eff |= e
            kind = BagType if isinstance(q, BagLit) else ListType
            return kind(elem), eff

        if isinstance(q, ToSet):
            at, eff = self.check(ctx, q.arg)
            if isinstance(at, NeverType):
                return SetType(NEVER), eff
            if not isinstance(at, (SetType, BagType, ListType)):
                raise IOQLTypeError(f"toset of non-collection {at}")
            return SetType(at.elem), eff

        if isinstance(q, SetOp):
            lt, le = self.check(ctx, q.left)
            rt, re_ = self.check(ctx, q.right)
            lt = SetType(NEVER) if isinstance(lt, NeverType) else lt
            rt = SetType(NEVER) if isinstance(rt, NeverType) else rt
            if type(lt) is not type(rt) or not isinstance(
                lt, (SetType, BagType, ListType)
            ):
                raise IOQLTypeError(f"set operator on {lt}, {rt}")
            from repro.lang.ast import SetOpKind as _SOK

            if isinstance(lt, ListType) and q.op is not _SOK.UNION:
                raise IOQLTypeError(
                    f"lists support only union, not {q.op.symbol}"
                )
            self.on_setop(q, le, re_, left_type=lt, right_type=rt)
            elem = self._lub(ctx, lt.elem, rt.elem, f"operands of {q.op.symbol}")
            return type(lt)(elem), le | re_

        if isinstance(q, IntOp):
            le = self._expect(ctx, q.left, INT, q.op.value)
            re_ = self._expect(ctx, q.right, INT, q.op.value)
            return INT, le | re_

        if isinstance(q, PrimEq):
            lt, le = self.check(ctx, q.left)
            rt, re_ = self.check(ctx, q.right)
            j = ctx.schema.hierarchy.lub(lt, rt)
            if j is None or not (j.is_primitive() or isinstance(j, NeverType)):
                raise IOQLTypeError(f"'=' on {lt} = {rt}")
            return BOOL, le | re_

        if isinstance(q, ObjEq):
            eff = EMPTY
            for side in (q.left, q.right):
                t, e = self.check(ctx, side)
                if not isinstance(t, (ClassType, NeverType)):
                    raise IOQLTypeError(f"'==' on non-object type {t}")
                eff |= e
            return BOOL, eff

        if isinstance(q, Cmp):
            le = self._expect(ctx, q.left, INT, q.op.value)
            re_ = self._expect(ctx, q.right, INT, q.op.value)
            return BOOL, le | re_

        if isinstance(q, RecordLit):
            fields: list[tuple[str, Type]] = []
            eff = EMPTY
            for l, sub in q.fields:
                t, e = self.check(ctx, sub)
                fields.append((l, t))
                eff |= e
            return RecordType(tuple(fields)), eff

        if isinstance(q, Field):
            tt, eff = self.check(ctx, q.target)
            if isinstance(tt, NeverType):
                return NEVER, eff
            if isinstance(tt, RecordType):
                ft = tt.field_type(q.name)
                if ft is None:
                    raise IOQLTypeError(f"record {tt} has no label {q.name!r}")
                return ft, eff
            if isinstance(tt, ClassType):
                try:
                    return ctx.schema.atype(tt.name, q.name), eff
                except SchemaError as exc:
                    raise IOQLTypeError(str(exc)) from None
            raise IOQLTypeError(f".{q.name} on {tt}")

        # (Definition access): argument effects ∪ the latent effect
        if isinstance(q, DefCall):
            ftype = ctx.def_type(q.name)
            eff = self._args(ctx, q.args, ftype.params, f"definition {q.name}")
            return ftype.result, eff | ftype.effect

        if isinstance(q, Size):
            t, eff = self.check(ctx, q.arg)
            if not isinstance(t, (SetType, BagType, ListType, NeverType)):
                raise IOQLTypeError(f"size of non-collection {t}")
            return INT, eff

        if isinstance(q, Sum):
            t, eff = self.check(ctx, q.arg)
            if isinstance(t, NeverType):
                return INT, eff
            if not isinstance(t, (SetType, BagType, ListType)):
                raise IOQLTypeError(f"sum of non-collection {t}")
            if not ctx.subtype(t.elem, INT):
                raise IOQLTypeError(f"sum needs integer elements, got {t.elem}")
            return INT, eff

        if isinstance(q, Cast):
            at, eff = self.check(ctx, q.arg)
            if isinstance(at, NeverType):
                return ClassType(q.cname), eff
            if not isinstance(at, ClassType) or not ctx.schema.hierarchy.is_subclass(
                at.name, q.cname
            ):
                raise IOQLTypeError(f"illegal cast ({q.cname}) on {at}")
            return ClassType(q.cname), eff

        # (Method): ε of target and arguments ∪ the method's ε″
        if isinstance(q, MethodCall):
            tt, eff = self.check(ctx, q.target)
            if isinstance(tt, NeverType):
                for a in q.args:
                    _, e = self.check(ctx, a)
                    eff |= e
                return NEVER, eff
            if not isinstance(tt, ClassType):
                raise IOQLTypeError(f"method call on {tt}")
            try:
                mt = ctx.schema.mtype(tt.name, q.mname)
            except SchemaError as exc:
                raise IOQLTypeError(str(exc)) from None
            eff |= self._args(ctx, q.args, mt.params, f"method {tt.name}.{q.mname}")
            return mt.result, eff | mt.effect

        # (New): the add effect A(C)
        if isinstance(q, New):
            if q.cname == OBJECT or q.cname not in ctx.schema:
                raise IOQLTypeError(f"cannot instantiate {q.cname!r}")
            declared = dict(ctx.schema.atypes(q.cname))
            if set(q.labels()) != set(declared) or len(q.labels()) != len(declared):
                raise IOQLTypeError(f"new {q.cname}: attribute mismatch")
            eff = EMPTY
            for a, sub in q.fields:
                t, e = self.check(ctx, sub)
                ctx.require_subtype(t, declared[a], f"attribute {q.cname}.{a}")
                eff |= e
            return ClassType(q.cname), eff | Effect.of(add(q.cname))

        # (Cond): conservative union of branch effects
        if isinstance(q, If):
            ce = self._expect(ctx, q.cond, BOOL, "if condition")
            tt, te = self.check(ctx, q.then)
            et, ee = self.check(ctx, q.els)
            return self._lub(ctx, tt, et, "if branches"), ce | te | ee

        # (Traverse): R over the subclass-widened reachable closure of
        # the source class under ``attr``.  When a chain escapes the
        # declared schema, closure_read_set already widened to every
        # class — the conservative, U-like read footprint.  Everything
        # downstream (Theorem 4 routing, Theorem 5 invalidation, the
        # conflict graph, replica freshness) consumes these R atoms.
        if isinstance(q, Traverse):
            if q.depth is not None and q.depth < 0:
                raise IOQLTypeError(
                    f"traverse depth bound must be non-negative, got {q.depth}"
                )
            st, eff = self.check(ctx, q.source)
            if isinstance(st, NeverType) or (
                isinstance(st, SetType) and isinstance(st.elem, NeverType)
            ):
                return SetType(NEVER), eff
            if not isinstance(st, SetType) or not isinstance(st.elem, ClassType):
                raise IOQLTypeError(f"traverse needs a set of objects, got {st}")
            reads = closure_read_set(ctx.schema, st.elem.name, q.attr)
            eff |= Effect.of(*(read(c) for c in sorted(reads)))
            elem = result_lub(ctx.schema, st.elem.name, q.attr)
            return SetType(ClassType(elem)), eff

        # (Comp1)/(Comp2): the recursive decomposition of Figure 3
        if isinstance(q, Comp):
            return self._comp(ctx, q, q.qualifiers)

        raise IOQLTypeError(f"unknown query node {type(q).__name__}")

    def _comp(
        self, ctx: TypeContext, comp: Comp, quals: tuple[Qualifier, ...]
    ) -> tuple[Type, Effect]:
        """``{q | c⃗q} : set(σ) ! ε`` by recursion on the qualifier list.

        Mirrors the paper's (Comp1)/(Comp2) rules: the effect of a
        generator comprehension is ε₁ ∪ ε₂ where ε₂ is the source's
        effect and ε₁ the residual comprehension's; ⊢′ inspects ε₁ via
        :meth:`on_generator`.
        """
        if not quals:
            t, e = self.check(ctx, comp.head)
            return SetType(t), e
        first, rest = quals[0], quals[1:]
        if isinstance(first, Pred):
            ce = self._expect(ctx, first.cond, BOOL, "comprehension predicate")
            t, e = self._comp(ctx, comp, rest)
            return t, ce | e
        assert isinstance(first, Gen)
        st, e2 = self.check(ctx, first.source)
        if isinstance(st, NeverType):
            st = SetType(NEVER)
        if not isinstance(st, (SetType, BagType, ListType)):
            raise IOQLTypeError(
                f"generator {first.var} over non-collection {st}"
            )
        inner = ctx.extend(first.var, st.elem)
        t, e1 = self._comp(inner, comp, rest)
        self.on_generator(e1, comp, first, source_type=st)
        return t, e1 | e2

    # -- definitions & programs ---------------------------------------------
    def check_definition(self, ctx: TypeContext, d: Definition) -> FuncType:
        """⊢_def with a latent effect: the body's effect is recorded on
        the function type (``int →ᵋ int`` in the paper's notation)."""
        body_ctx = ctx.extend_many({x: t for x, t in d.params})  # type: ignore[misc]
        result, eff = self.check(body_ctx, d.body)
        return FuncType(tuple(t for _, t in d.params), result, eff)  # type: ignore[misc]

    def check_program(
        self,
        schema: Schema,
        p: Program,
        *,
        oid_types: Mapping[str, Type] | None = None,
    ) -> tuple[Type, Effect]:
        """⊢_prog: thread definition (effect-annotated) types, then the
        final query."""
        ctx = TypeContext(schema, vars=dict(oid_types or {}))
        for d in p.definitions:
            ctx = ctx.with_def(d.name, self.check_definition(ctx, d))
        return self.check(ctx, p.query)

    # -- helpers -------------------------------------------------------------
    def _expect(
        self, ctx: TypeContext, q: Query, want: Type, what: str
    ) -> Effect:
        got, eff = self.check(ctx, q)
        if not ctx.subtype(got, want):
            raise IOQLTypeError(f"{what} must be {want}, got {got}")
        return eff

    def _args(
        self,
        ctx: TypeContext,
        args: tuple[Query, ...],
        params: tuple[Type, ...],
        what: str,
    ) -> Effect:
        if len(args) != len(params):
            raise IOQLTypeError(f"{what}: arity mismatch")
        eff = EMPTY
        for i, (a, pt) in enumerate(zip(args, params)):
            t, e = self.check(ctx, a)
            ctx.require_subtype(t, pt, f"argument {i} of {what}")
            eff |= e
        return eff

    def _lub(self, ctx: TypeContext, a: Type, b: Type, what: str) -> Type:
        j = ctx.schema.hierarchy.lub(a, b)
        if j is None:
            raise IOQLTypeError(f"{what}: no common supertype of {a}, {b}")
        return j


def effect_of(
    schema: Schema,
    q: Query,
    *,
    defs: Mapping[str, FuncType] | None = None,
    var_types: Mapping[str, Type] | None = None,
) -> Effect:
    """Convenience: the inferred effect ε of ``q`` under the base system."""
    ctx = TypeContext(schema, defs=dict(defs or {}), vars=dict(var_types or {}))
    _, eff = EffectChecker().check(ctx, q)
    return eff
