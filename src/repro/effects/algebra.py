"""The effect algebra of §4.

The paper defines effects by the grammar::

    ε ::= ∅ | ε ∪ ε | R(C) | A(C)

with equality modulo associativity, commutativity, idempotence and unit —
i.e. an effect is exactly a *finite set* of atomic effects.  We therefore
represent an :class:`Effect` as a frozenset of :class:`Atom` values.

Atoms:

* ``R(C)`` — the extent of class ``C`` may be *read* (the (Extent) rule);
* ``A(C)`` — the extent of class ``C`` may be *added to* (the (New) rule);
* ``U(C)`` — the state of some ``C`` object may be *updated in place*.
  This third atom is our implementation of the §5 extension, where method
  bodies may assign to attributes; it is empty in the paper's core.

The subeffect relation ε ⊆ ε′ of the paper (∃ε″. ε′ = ε ∪ ε″) is exactly
set inclusion, and the ``nonint`` predicate of §4 is::

    nonint(ε)  ⇔  ∀ R(C) ∈ ε. ¬∃ A(C) ∈ ε

generalised here to also exclude read/update and update/update conflicts
when ``U`` atoms are present (the §5 mode).

Effects over a class are *not* closed under subtyping by the algebra
itself: ``R(C)`` names the extent of ``C`` precisely.  The checker is
responsible for emitting atoms for the classes it actually touches; note
that creating a ``C`` object inserts it into the extent of ``C`` (the
paper attaches one extent per class, and (New) updates only that
extent).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator


class AccessKind(Enum):
    """The kind of extent/object access an atom records."""

    READ = "R"
    ADD = "A"
    UPDATE = "U"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic effect ``R(C)``, ``A(C)`` or ``U(C)``."""

    kind: AccessKind
    cname: str

    def __str__(self) -> str:
        return f"{self.kind.value}({self.cname})"


def read(cname: str) -> Atom:
    """The atom ``R(C)``: the extent of ``C`` has been read."""
    return Atom(AccessKind.READ, cname)


def add(cname: str) -> Atom:
    """The atom ``A(C)``: the extent of ``C`` has been added to."""
    return Atom(AccessKind.ADD, cname)


def update(cname: str) -> Atom:
    """The atom ``U(C)``: a ``C`` object has been updated (§5 mode)."""
    return Atom(AccessKind.UPDATE, cname)


@dataclass(frozen=True, slots=True)
class Effect:
    """A finite set of atomic effects, the paper's ε.

    Immutable and hashable.  Use :data:`EMPTY` for ∅ and
    :meth:`union` / the ``|`` operator for ε ∪ ε′.
    """

    atoms: frozenset[Atom]

    # -- construction ---------------------------------------------------
    @staticmethod
    def of(*atoms: Atom) -> "Effect":
        """Build an effect from atoms: ``Effect.of(read("C"), add("D"))``."""
        return Effect(frozenset(atoms))

    @staticmethod
    def union_all(effects: Iterable["Effect"]) -> "Effect":
        """The n-ary union of a (possibly empty) iterable of effects."""
        out: frozenset[Atom] = frozenset()
        for e in effects:
            out |= e.atoms
        return Effect(out)

    def union(self, other: "Effect") -> "Effect":
        """ε ∪ ε′ — associative, commutative, idempotent, unit ∅."""
        return Effect(self.atoms | other.atoms)

    __or__ = union

    # -- queries --------------------------------------------------------
    def is_empty(self) -> bool:
        """True iff this is the empty effect ∅ (pure)."""
        return not self.atoms

    def subeffect_of(self, other: "Effect") -> bool:
        """The paper's ε ⊆ ε′ (i.e. ∃ε″. ε′ = ε ∪ ε″): set inclusion."""
        return self.atoms <= other.atoms

    def __le__(self, other: "Effect") -> bool:
        return self.subeffect_of(other)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self.atoms, key=lambda a: (a.cname, a.kind.value)))

    def __len__(self) -> int:
        return len(self.atoms)

    # -- projections ----------------------------------------------------
    def reads(self) -> frozenset[str]:
        """Class names ``C`` with ``R(C)`` in this effect."""
        return frozenset(a.cname for a in self.atoms if a.kind is AccessKind.READ)

    def adds(self) -> frozenset[str]:
        """Class names ``C`` with ``A(C)`` in this effect."""
        return frozenset(a.cname for a in self.atoms if a.kind is AccessKind.ADD)

    def updates(self) -> frozenset[str]:
        """Class names ``C`` with ``U(C)`` in this effect (§5 mode)."""
        return frozenset(a.cname for a in self.atoms if a.kind is AccessKind.UPDATE)

    def writes(self) -> frozenset[str]:
        """Class names written in any way: A(C) or U(C)."""
        return self.adds() | self.updates()

    # -- the paper's predicates ------------------------------------------
    def noninterfering(self) -> bool:
        """The §4 predicate ``nonint(ε)``: no class both read and written.

        The paper states ``nonint(ε) ≔ ∀R(C) ∈ ε. ¬∃A(C) ∈ ε``; in the
        core language (no ``U`` atoms) this method computes exactly that.

        With the §5 ``U`` atoms we must be stricter on two counts: a
        read/update pair on the same class interferes just like a
        read/add pair, and the mere *presence* of an update makes the
        effect self-interfering.  The latter is because ``nonint`` is
        applied to the effect of a comprehension body to argue that its
        per-element instances commute (Theorem 7); two instances that
        each update objects of class ``C`` may hit the same object, and a
        single effect-set cannot distinguish that from disjoint updates.
        (Two ``A(C)`` instances, by contrast, always commute up to an oid
        bijection, which is why the paper's predicate tolerates
        add/add.)
        """
        if self.updates():
            return False
        return not (self.reads() & self.writes())

    def interferes_with(self, other: "Effect") -> bool:
        """True if commuting ``self`` and ``other`` could be observable.

        Interference arises when one side writes (adds to / updates) a
        class whose extent the other side *reads*, or when both sides
        *update* the same class (they might hit the same object).  Two
        adds to the same class do **not** interfere: each creates fresh
        objects the other never observes, and the results agree up to
        the oid bijection ∼ — which is exactly the equivalence Theorem 8
        asserts.  Used by the ⊢″ system to gate commuting binary set
        operators.
        """
        return bool(
            (self.writes() & other.reads())
            or (other.writes() & self.reads())
            or (self.updates() & other.updates())
        )

    def __str__(self) -> str:
        if not self.atoms:
            return "∅"
        return "{" + ", ".join(str(a) for a in self) + "}"

    def __repr__(self) -> str:
        return f"Effect({self})"


EMPTY: Effect = Effect(frozenset())
"""The empty effect ∅: the effect of every value (Lemma 2.1)."""
