"""repro.sched — effect-scheduled concurrent query sessions.

The public surface is :meth:`repro.db.Database.run_many` and
:meth:`repro.db.Database.session`; this package holds the machinery:
the conflict predicate over Figure 3 effects, the admission-order
conflict graph, and the worker pool that executes it.  See
``docs/CONCURRENCY.md`` for the Theorem 7/8 argument and the limits.
"""

from repro.sched.scheduler import (
    Admission,
    BatchResult,
    Outcome,
    Pending,
    QueryScheduler,
    Session,
    conflicts,
)

__all__ = [
    "Admission",
    "BatchResult",
    "Outcome",
    "Pending",
    "QueryScheduler",
    "Session",
    "conflicts",
]
