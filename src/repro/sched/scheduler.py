"""The effect-guided query scheduler behind ``Database.run_many``.

Many clients hand the database a *batch* of query texts; the scheduler
must answer exactly as if it had run them one after another in
admission order, but is allowed to overlap work whose interleaving the
paper proves invisible.  The Figure 3 effect ε of each query is the
static licence for that overlap:

* two queries whose effects do not conflict (see :func:`conflicts`)
  touch provably disjoint state — Theorem 5 bounds every dynamic trace
  by its static effect, and Theorem 8's non-interference argument says
  swapping (or overlapping) them is unobservable, so they may run on
  different threads against the same immutable EE/OE snapshot;
* queries that *do* conflict are ordered by an edge in the batch's
  conflict graph and execute in admission order — in particular every
  pair of writers, so oids are allocated in the same order a
  sequential run would allocate them and the final EE/OE is equal
  (not merely ∼-equivalent) whenever the answer values are.

The conflict predicate is deliberately coarser than bare
``Effect.interferes_with``:

* **writer–writer always conflicts** — a commit installs a whole new
  EE/OE pair; there is no merge, so concurrent writers would lose
  updates even when their effects are disjoint;
* **an update (``U``) conflicts with everything** — attribute reads
  carry no effect atom (the reference-chasing caveat of §5: a query
  whose ``R`` set avoids ``C`` can still observe ``C``-state through a
  chain of object references), so no disjointness argument exists for
  an updater.

Reads are genuinely snapshot-isolated: ``ExtentEnv``/``ObjectEnv`` are
persistent, so a reader keeps answering against the environments it
loaded even while a non-conflicting writer commits new ones.

Everything is observable: the batch runs under a ``sched.batch`` span,
per-query admission passes the ``sched.admit`` fault site, and the
scheduler exports queue-depth, conflict-rate and parallel-speedup
metrics (see ``docs/CONCURRENCY.md``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.effects.algebra import EMPTY, Effect
from repro.errors import ReproError
from repro.lang.ast import Query
from repro.obs import flight as _flight
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span
from repro.resilience.budget import Budget
from repro.resilience.faults import maybe_fault
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database


def conflicts(a: Effect, b: Effect) -> bool:
    """Must these two queries be ordered (admission order) in a batch?

    The base case is Figure 3 interference — one side writes a class
    the other reads, or both update a class.  On top of that the
    scheduler adds the two coarsenings argued in the module docstring:
    writers never overlap each other (commit is wholesale EE/OE
    replacement), and an updater never overlaps anything (reference
    chasing escapes the R-set).
    """
    if a.interferes_with(b):
        return True
    if a.writes() and b.writes():
        return True
    if a.updates() or b.updates():
        return True
    return False


def shard_conflicts(
    a: "Admission", b: "Admission", *, allow_writer_overlap: bool = False
) -> bool:
    """:func:`conflicts`, refined to ``(class, shard)`` granularity.

    An edge :func:`conflicts` demands may be dropped when the static
    shard analyses (:func:`repro.db.shards.static_read_shards` /
    ``static_write_shards``) prove the two queries touch **disjoint
    shards** of every class they share:

    * a reader confined to shards *S* of class *C* cannot observe an
      ``A(C)`` commit into shards disjoint from *S* — the new objects'
      shard-attribute values hash outside *S*, so the confining
      equality predicate rejects them whether or not the scan was
      pruned at run time (pruning changes what is *scanned*, never
      what is *kept*);
    * two ``A``-only writers into disjoint shards commute under the
      per-shard merge-install (fresh oids are globally unique and set
      union is order-insensitive), so they may overlap when the caller
      allows it (``allow_writer_overlap`` is off under ``atomic``
      batches, whose rollback restores extents wholesale).

    Any missing analysis (``None`` dicts: sharding disabled, calls in
    the query, a class the analysis could not confine) or any ``U``
    atom keeps the conservative edge.
    """
    eff_a, eff_b = a.effect, b.effect
    if not conflicts(eff_a, eff_b):
        return False
    if eff_a.updates() or eff_b.updates():
        return True

    def overlap(writer, write_shards, reader, read_shards) -> bool:
        for cname in writer.adds() & reader.reads():
            wrote = write_shards.get(cname) if write_shards else None
            read = read_shards.get(cname) if read_shards else None
            if wrote is None or read is None or (wrote & read):
                return True
        return False

    if overlap(eff_a, a.write_shards, eff_b, b.read_shards):
        return True
    if overlap(eff_b, b.write_shards, eff_a, a.read_shards):
        return True
    if eff_a.writes() and eff_b.writes():
        if (
            not allow_writer_overlap
            or a.write_shards is None
            or b.write_shards is None
        ):
            return True
        for cname in eff_a.adds() & eff_b.adds():
            w1 = a.write_shards.get(cname)
            w2 = b.write_shards.get(cname)
            if w1 is None or w2 is None or (w1 & w2):
                return True
    return False


@dataclass
class Admission:
    """One query's entry into a batch: its slot, AST and static effect.

    A query that fails admission (parse error, Figure 1/3 rejection, or
    an injected ``sched.admit`` fault) carries the failure in ``error``
    and takes no part in the conflict graph — a sequential run would
    have raised at the same point without touching state.
    """

    index: int
    source: str | Query
    query: Query | None = None
    effect: Effect = EMPTY
    error: BaseException | None = None
    #: a replica snapshot this read will answer from (repro.replication
    #: PinnedRead), letting it leave the conflict graph entirely
    pinned: object | None = None
    #: static per-class shard confinement (class → frozenset of shard
    #: ids, or missing = unconfined); ``None`` when the primary is
    #: unsharded or the analysis refused — shard_conflicts degrades to
    #: the class-level rule
    read_shards: dict | None = None
    write_shards: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def kind(self) -> str:
        if self.error is not None:
            return "error"
        return "write" if self.effect.writes() else "read"


@dataclass
class Outcome:
    """What one admitted query did: its value or its failure, timed."""

    index: int
    source: str | Query
    kind: str
    value: Query | None = None
    error: BaseException | None = None
    effect: Effect = EMPTY
    steps: int = 0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def result(self) -> Query:
        """The answer value, re-raising the query's failure if it had one."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass
class BatchResult:
    """Everything ``run_many`` learned about one scheduled batch."""

    outcomes: list[Outcome]
    workers: int
    wall_time: float
    busy_time: float
    conflict_edges: int

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, i: int) -> Outcome:
        return self.outcomes[i]

    @property
    def errors(self) -> list[Outcome]:
        return [o for o in self.outcomes if not o.ok]

    def values(self) -> list[Query]:
        """Every answer in admission order; raises the first failure."""
        return [o.result() for o in self.outcomes]

    @property
    def speedup(self) -> float:
        """Busy-time / wall-time: >1 means the overlap bought something."""
        return self.busy_time / self.wall_time if self.wall_time > 0 else 1.0

    @property
    def conflict_rate(self) -> float:
        """Conflict edges over the maximum possible for the batch size."""
        n = len(self.outcomes)
        possible = n * (n - 1) // 2
        return self.conflict_edges / possible if possible else 0.0


class QueryScheduler:
    """Admit a batch, build its conflict graph, run it on a thread pool.

    One scheduler instance runs one batch (:meth:`run`); the
    :class:`Session` front end accumulates submissions and dispatches
    them through a fresh scheduler.
    """

    def __init__(
        self,
        db: "Database",
        *,
        workers: int = 4,
        budget: Budget | None = None,
        retry: RetryPolicy | None = None,
        atomic: bool = False,
    ):
        if workers < 1:
            raise ReproError("run_many needs at least one worker")
        self.db = db
        self.workers = workers
        self.budget = budget
        self.retry = retry
        self.atomic = atomic
        # deepest ready-queue depth seen while running this batch —
        # always on (plain int compare), read by Database.health()
        self.queue_peak = 0
        # the replica set pinned reads were captured against (admit())
        self._rset = None

    # -- admission -------------------------------------------------------
    def admit(self, sources: Sequence[str | Query]) -> list[Admission]:
        """Parse and effect-check each query, in order, sequentially.

        Admission is the serial prefix of the batch: it touches only
        the (already consistent) current state and the static analyses,
        and it fixes the admission order every later tie-break uses.

        When the database has replicas attached, admission also tries
        to **pin** each read: a read-only query that no earlier batch
        writer can affect — no earlier ``U`` (reference chasing escapes
        the R-set) and no earlier ``A`` on a class it reads — answers
        the same against the pre-batch state, so it captures an
        immutable (EE, OE) snapshot from a covering replica *now* and
        leaves the conflict graph entirely.  Writers stop serialising
        behind reads they happen to touch.
        """
        self._rset = self.db.replicas
        batch_adds: set[str] = set()
        batch_star = False
        admissions: list[Admission] = []
        for i, src in enumerate(sources):
            adm = Admission(i, src)
            try:
                maybe_fault("sched.admit")
                adm.query = self.db.parse(src)
                _, adm.effect = self.db.typecheck_with_effect(adm.query)
            except BaseException as exc:  # noqa: BLE001 - recorded, not lost
                adm.error = exc
            if adm.ok:
                shards = getattr(self.db, "_shards", None)
                if shards is not None and shards.enabled:
                    try:
                        from repro.db.shards import (
                            static_read_shards,
                            static_write_shards,
                        )

                        adm.read_shards = static_read_shards(
                            shards, self.db.schema, adm.query
                        )
                        if adm.effect.writes():
                            adm.write_shards = static_write_shards(
                                shards, self.db.schema, adm.query
                            )
                    except Exception:
                        adm.read_shards = adm.write_shards = None
                if adm.effect.writes():
                    batch_star = batch_star or bool(adm.effect.updates())
                    batch_adds |= adm.effect.adds()
                elif (
                    self._rset is not None
                    and not batch_star
                    and not (batch_adds & adm.effect.reads())
                ):
                    adm.pinned = self._rset.pin(adm.effect, adm.query)
            admissions.append(adm)
            _flight.record(
                "sched-admit",
                index=i,
                kind=adm.kind,
                pinned=adm.pinned is not None,
            )
            if _OBS.enabled:
                _METRICS.counter("sched_queries_total", kind=adm.kind).inc()
        return admissions

    @staticmethod
    def conflict_graph(
        admissions: Sequence[Admission],
        *,
        allow_writer_overlap: bool = False,
    ) -> dict[int, set[int]]:
        """``deps[j] = {i < j : shard_conflicts(εᵢ, εⱼ)}`` over admitted
        queries.

        Only the *earlier* endpoint of each edge appears in a
        dependency set: the graph is a DAG by construction, and running
        every query after all of its dependencies reproduces admission
        order along every conflicting pair.  Edges are
        :func:`conflicts` refined by :func:`shard_conflicts` — pairs
        provably confined to disjoint shards of every shared class
        drop their edge, including (when ``allow_writer_overlap``)
        ``A``-only writer pairs, which the per-shard merge-install
        makes commutative.

        A **pinned** read takes no part in the graph at all: it already
        holds the immutable snapshot it will answer from, so it neither
        waits for anything nor makes any later query wait — in
        particular a writer that touches the classes it reads starts
        immediately instead of serialising behind it.
        """
        deps: dict[int, set[int]] = {}
        earlier: list[Admission] = []
        for a in admissions:
            if not a.ok:
                continue
            if a.pinned is not None:
                deps[a.index] = set()
                continue
            deps[a.index] = {
                b.index
                for b in earlier
                if shard_conflicts(
                    b, a, allow_writer_overlap=allow_writer_overlap
                )
            }
            earlier.append(a)
        return deps

    # -- execution -------------------------------------------------------
    def run(self, sources: Sequence[str | Query]) -> BatchResult:
        started = time.perf_counter()
        with _span("sched.batch", queries=len(sources), workers=self.workers) as sp:
            admissions = self.admit(sources)
            # atomic rollback restores extents wholesale, which two
            # overlapped writers would race — disjoint-shard writer
            # overlap is only sound for plain (merge-install) batches
            deps = self.conflict_graph(
                admissions, allow_writer_overlap=not self.atomic
            )
            edges = sum(len(d) for d in deps.values())
            outcomes = self._execute(admissions, deps)
            wall = time.perf_counter() - started
            busy = sum(o.duration for o in outcomes)
            result = BatchResult(
                outcomes=outcomes,
                workers=self.workers,
                wall_time=wall,
                busy_time=busy,
                conflict_edges=edges,
            )
            if _OBS.enabled:
                _METRICS.counter("sched_batches_total").inc()
                _METRICS.counter("sched_conflict_edges_total").inc(edges)
                _METRICS.gauge("sched_parallel_speedup").set(result.speedup)
                sp.set(
                    conflict_edges=edges,
                    wall=wall,
                    speedup=round(result.speedup, 3),
                )
            n_ok = sum(1 for o in outcomes if o.ok)
            batch_stats = {
                "queries": len(sources),
                "ok": n_ok,
                "errors": len(sources) - n_ok,
                "workers": self.workers,
                "pinned_reads": sum(
                    1 for a in admissions if a.pinned is not None
                ),
                "conflict_edges": edges,
                "conflict_degree_mean": (
                    2.0 * edges / len(sources) if sources else 0.0
                ),
                "queue_depth_peak": self.queue_peak,
                "wall_s": wall,
                "speedup": result.speedup,
            }
            self.db._last_batch = batch_stats
            _flight.record("sched-batch", **batch_stats)
            return result

    def _execute(
        self, admissions: Sequence[Admission], deps: dict[int, set[int]]
    ) -> list[Outcome]:
        outcomes: list[Outcome | None] = [None] * len(admissions)
        for adm in admissions:
            if not adm.ok:
                outcomes[adm.index] = Outcome(
                    adm.index, adm.source, "error", error=adm.error
                )
        runnable = [a for a in admissions if a.ok]
        if not runnable:
            return list(outcomes)
        if self.workers == 1 or len(runnable) == 1:
            # degenerate pool: admission order, no threads to coordinate
            for adm in runnable:
                outcomes[adm.index] = self._run_one(adm)
            return list(outcomes)

        remaining = {a.index: set(deps[a.index]) for a in runnable}
        dependents: dict[int, list[int]] = {a.index: [] for a in runnable}
        for j, ds in remaining.items():
            for i in ds:
                dependents[i].append(j)
        by_index = {a.index: a for a in runnable}
        # admission order within the ready set keeps the schedule stable
        ready = deque(sorted(j for j, ds in remaining.items() if not ds))
        cond = threading.Condition()
        pending = len(runnable)

        def worker() -> None:
            nonlocal pending
            while True:
                with cond:
                    while not ready and pending > 0:
                        cond.wait()
                    if pending <= 0:
                        cond.notify_all()
                        return
                    j = ready.popleft()
                    if len(ready) > self.queue_peak:
                        self.queue_peak = len(ready)
                    if _OBS.enabled:
                        _METRICS.gauge("sched_queue_depth").set(len(ready))
                out = self._run_one(by_index[j])
                with cond:
                    outcomes[j] = out
                    pending -= 1
                    for k in sorted(dependents[j]):
                        remaining[k].discard(j)
                        if not remaining[k]:
                            ready.append(k)
                    cond.notify_all()

        threads = [
            threading.Thread(target=worker, name=f"sched-worker-{i}")
            for i in range(min(self.workers, len(runnable)))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return list(outcomes)

    def _run_one(self, adm: Admission) -> Outcome:
        """Run one admitted query on the calling worker thread.

        Readers never commit — they answer from the snapshot they load;
        writers commit under the database's commit lock, and reach this
        point only after every earlier conflicting query finished, so
        their oid allocations happen in admission order.  The same lock
        orders write-ahead-log appends when a WAL is attached: log
        order = commit order = admission order, so recovery replays the
        batch exactly as a sequential run would have made it durable.
        Each attempt
        gets a fresh copy of the batch budget (per-query fuel, matching
        ``Database.run``'s retry discipline).
        """
        writer = bool(adm.effect.writes())
        budget = self.budget.fresh() if self.budget is not None else None
        t0 = time.perf_counter()
        try:
            if adm.pinned is not None and self._rset is not None:
                # routed batch read: answers from the replica snapshot
                # captured at admission (pre-batch state, which the
                # pinning condition proved equivalent)
                res = self._rset.serve_pinned(
                    adm.pinned, adm.query, budget=budget
                )
            else:
                res = self.db.run(
                    adm.query,
                    typecheck=False,  # Figures 1/3 already ran at admission
                    commit=writer,
                    budget=budget,
                    atomic=self.atomic if writer else False,
                    retry=self.retry,
                )
            return Outcome(
                adm.index,
                adm.source,
                adm.kind,
                value=res.value,
                effect=res.effect,
                steps=res.steps,
                duration=time.perf_counter() - t0,
            )
        except BaseException as exc:  # noqa: BLE001 - recorded, not lost
            return Outcome(
                adm.index,
                adm.source,
                adm.kind,
                error=exc,
                effect=adm.effect,
                duration=time.perf_counter() - t0,
            )


@dataclass
class Pending:
    """A submitted-but-not-yet-dispatched query's handle."""

    index: int
    source: str | Query
    _session: "Session" = field(repr=False, default=None)

    @property
    def outcome(self) -> Outcome:
        if self._session is None or self._session.result is None:
            raise ReproError("session not dispatched yet")
        return self._session.result[self.index]

    def result(self) -> Query:
        """The answer value once dispatched (re-raises query failures)."""
        return self.outcome.result()


class Session:
    """Collect queries from many callers, dispatch them as one batch.

    ::

        with db.session(workers=8) as s:
            totals = s.submit("{ e.salary | e <- Employees }")
            names = s.submit("{ p.name | p <- Persons }")
        print(totals.result(), names.result())

    ``submit`` is thread-safe (clients may race to enqueue); the batch
    order is the arrival order.  ``dispatch`` runs everything submitted
    so far through a :class:`QueryScheduler` and freezes the session.
    The context-manager form dispatches on a clean exit and skips
    dispatch when the block raised.
    """

    def __init__(
        self,
        db: "Database",
        *,
        workers: int = 4,
        budget: Budget | None = None,
        retry: RetryPolicy | None = None,
        atomic: bool = False,
    ):
        self.db = db
        self.workers = workers
        self.budget = budget
        self.retry = retry
        self.atomic = atomic
        self.result: BatchResult | None = None
        self._pending: list[Pending] = []
        self._lock = threading.Lock()

    def submit(self, source: str | Query) -> Pending:
        with self._lock:
            if self.result is not None:
                raise ReproError("session already dispatched")
            p = Pending(len(self._pending), source, self)
            self._pending.append(p)
            return p

    def dispatch(self) -> BatchResult:
        with self._lock:
            if self.result is not None:
                raise ReproError("session already dispatched")
            batch = [p.source for p in self._pending]
            self.result = QueryScheduler(
                self.db,
                workers=self.workers,
                budget=self.budget,
                retry=self.retry,
                atomic=self.atomic,
            ).run(batch)
            return self.result

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self.result is None:
            self.dispatch()
        return False
