"""An interactive IOQL shell.

Run as::

    python -m repro [schema.odl]

Lines starting with ``.`` are commands; ``define …;`` adds a query
definition; anything else is a query — it is type-checked, effect-
checked and evaluated, and the shell prints ``value : type ! effect``.

Commands::

    .help                 this text
    .schema <file>        load an ODL schema file (replaces the database)
    .type <query>         Figure 1: type only
    .effect <query>       Figure 3: inferred effect
    .infer <query>        schema-less requirements inference
    .det <query>          ⊢′ determinism analysis (Theorem 7)
    .explore <query>      enumerate all reduction orders
    .trace <query>        print the step-by-step derivation (Figure 2/4)
    .optimize <query>     effect-gated rewriting with provenance
    .explain <query>      cost estimate, statistics and chosen rewrites
    .extents              extent sizes
    .snapshot / .restore  save / roll back the database state
    .quit                 leave

The shell is a thin veneer over :class:`repro.db.Database`; every line
handler returns the printed text, so the whole surface is unit-testable
without a terminal (see ``tests/test_shell.py``).
"""

from __future__ import annotations

import sys

from repro.db.database import Database, Snapshot
from repro.errors import ReproError
from repro.lang.parser import parse_query
from repro.methods.ast import AccessMode
from repro.typing.inference import infer_requirements

_BANNER = (
    "IOQL shell — Bierman, 'Formal semantics and analysis of object "
    "queries' (SIGMOD 2003), executable.\nType .help for commands."
)

_DEFAULT_ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


class Shell:
    """The command interpreter; one database at a time."""

    def __init__(self, db: Database | None = None):
        self.db = db or Database.from_odl(_DEFAULT_ODL)
        self._snapshot: Snapshot | None = None

    # ------------------------------------------------------------------
    def handle(self, line: str) -> str:
        """Process one input line; returns the text to print."""
        line = line.strip()
        if not line or line.startswith("//"):
            return ""
        try:
            if line.startswith("."):
                return self._command(line)
            if line.startswith("define"):
                if not line.endswith(";"):
                    line += ";"
                ftype = self.db.define(line)
                return f"defined : {ftype}"
            return self._query(line)
        except ReproError as exc:
            return f"error: {exc}"

    # ------------------------------------------------------------------
    def _query(self, src: str) -> str:
        t, eff = self.db.typecheck_with_effect(src)
        result = self.db.run(src)
        eff_str = "" if eff.is_empty() else f" ! {eff}"
        return f"{result.value} : {t}{eff_str}   ({result.steps} steps)"

    def _command(self, line: str) -> str:
        cmd, _, rest = line.partition(" ")
        rest = rest.strip()
        if cmd == ".help":
            return __doc__.split("Commands::", 1)[1].strip()
        if cmd == ".schema":
            with open(rest, encoding="utf-8") as f:
                self.db = Database.from_odl(f.read())
            return f"loaded schema with classes {sorted(self.db.schema.class_names())}"
        if cmd == ".type":
            return str(self.db.typecheck(rest))
        if cmd == ".effect":
            return str(self.db.effect_of(rest))
        if cmd == ".infer":
            return infer_requirements(parse_query(rest)).describe()
        if cmd == ".det":
            witnesses = self.db.determinism_witnesses(rest)
            if not witnesses:
                return "deterministic (⊢′ accepts; Theorem 7 applies)"
            return "\n".join(f"⊢′ rejects: {w}" for w in witnesses)
        if cmd == ".explore":
            ex = self.db.explore(rest)
            lines = [
                f"schedules: {ex.paths}"
                + (" (truncated)" if ex.truncated else ""),
                f"distinct answers: "
                + ", ".join(str(v) for v in ex.distinct_values()),
            ]
            if ex.diverged:
                lines.append("some schedule diverges")
            lines.append(f"deterministic up to ∼: {ex.deterministic()}")
            return "\n".join(lines)
        if cmd == ".trace":
            from repro.semantics.tracing import trace

            q = self.db.parse(rest)
            self.db.typecheck(q)
            t = trace(self.db.machine, self.db.ee, self.db.oe, q)
            return t.render()
        if cmd == ".optimize":
            from repro.optimizer.planner import optimize

            res = optimize(self.db, self.db.parse(rest))
            if not res.changed:
                return f"no rewrites apply\n{res.query}"
            fired = ", ".join(res.rules_fired())
            return f"{res.query}\n(fired: {fired})"
        if cmd == ".explain":
            from repro.optimizer.cost import CostModel, optimize_with_costs

            q = self.db.parse(rest)
            self.db.typecheck(q)
            model = CostModel.from_database(self.db)
            res = optimize_with_costs(self.db, q)
            lines = [
                f"estimated cost : {model.eval_cost(q):.0f} steps",
            ]
            if res.changed:
                lines.append(f"rewritten to   : {res.query}")
                lines.append(f"rules fired    : {', '.join(res.rules_fired())}")
                lines.append(
                    f"estimated cost : {model.eval_cost(res.query):.0f} steps "
                    f"(after rewriting)"
                )
            else:
                lines.append("no rewrites apply")
            lines.append(f"effect         : {self.db.effect_of(q)}")
            det = "yes" if self.db.is_deterministic(q) else "NO (⊢′ rejects)"
            lines.append(f"deterministic  : {det}")
            return "\n".join(lines)
        if cmd == ".extents":
            rows = [
                f"{e}: {len(self.db.extent(e))} object(s)"
                for e in sorted(self.db.schema.extents)
            ]
            return "\n".join(rows) if rows else "(no extents)"
        if cmd == ".snapshot":
            self._snapshot = self.db.snapshot()
            return "snapshot taken"
        if cmd == ".restore":
            if self._snapshot is None:
                return "error: no snapshot to restore"
            self.db.restore(self._snapshot)
            return "restored"
        if cmd == ".quit":
            raise SystemExit(0)
        return f"error: unknown command {cmd!r} (try .help)"


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        with open(argv[0], encoding="utf-8") as f:
            db = Database.from_odl(f.read())
        shell = Shell(db)
    else:
        shell = Shell()
    print(_BANNER)
    while True:
        try:
            line = input("ioql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            out = shell.handle(line)
        except SystemExit:
            return 0
        if out:
            print(out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
