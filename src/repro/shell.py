"""An interactive IOQL shell.

Run as::

    python -m repro [--no-obs] [schema.odl]

Lines starting with ``.`` are commands; ``define …;`` adds a query
definition; anything else is a query — it is type-checked, effect-
checked and evaluated, and the shell prints ``value : type ! effect``.

Commands::

    .help                 this text
    .schema <file>        load an ODL schema file (replaces the database)
    .type <query>         Figure 1: type only
    .effect <query>       Figure 3: inferred effect
    .infer <query>        schema-less requirements inference
    .det <query>          ⊢′ determinism analysis (Theorem 7)
    .explore <query>      enumerate all reduction orders
    .trace [--json] <q>   print the step-by-step derivation (Figure 2/4);
                          --json emits one JSON object per step
    .optimize <query>     effect-gated rewriting with provenance
    .explain <query>      cost estimate, statistics and chosen rewrites
    .explain analyze <q>  run the query instrumented and print the
                          per-operator tree: estimated vs actual rows,
                          misestimate ratio, per-operator time (never
                          commits; falls back to a reduction-rule
                          histogram outside the compiled fragment)
    .explain cost <q>     TD2-style sharded cost report: per-extent
                          shard access counts, estimated selectivities
                          and rows/bytes moved at merge points (never
                          executes the query)
    .analyze              eagerly build optimizer statistics for every
                          (extent, attribute) column and print rows,
                          distinct counts and histogram buckets
    .replan [RATIO|off]   adaptive replanning: ``.replan 4`` aborts and
                          re-optimizes a plan whose observed source
                          cardinality is 4x off the estimate, ``off``
                          disables, bare shows the setting
    .top                  live health board: query/cache counters, WAL
                          lsn + fsync p50/p99, last scheduled batch,
                          optimizer stats, indexes, flight ring
    .stats [on|off|reset] observability: show collected metrics/spans,
                          or toggle instrumentation (off at startup)
    .stats export <file>  write everything collected as JSONL
    .profile <query>      run once with instrumentation and print the
                          per-phase timing tree and rule histogram
    .extents              extent sizes
    .snapshot / .restore  save / roll back the database state
    .budget [...]         resource budget applied to every query:
                          ``.budget steps=N time=SECS objects=K`` sets,
                          ``.budget off`` clears, bare shows
    .workers [N|off]      scheduled batches: ``.workers N`` makes a
                          line of ``;;``-separated queries run as one
                          effect-scheduled batch on N threads
                          (``Database.run_many``); ``off`` = 1; bare
                          shows the setting
    .faults [...]         fault injection: ``.faults inject site=<s>
                          [at=N] [every=K] [p=0.5] [times=M]
                          [delay=SECS] [kind=transient|latency]
                          [seed=N]`` adds a rule, ``.faults off``
                          uninstalls, bare shows the plan and counters
    .transaction <cmd>    begin / commit / rollback an all-or-nothing
                          scope; a failing statement inside rolls the
                          whole transaction back
    .wal [open <dir>|off] durability: ``.wal open <dir>`` recovers the
                          database stored there (or starts journalling
                          the current one into a fresh directory),
                          ``.wal off`` detaches, bare shows status
    .checkpoint           fold the write-ahead log into the checkpoint
    .replicas [N|poll|off] replication: ``.replicas N`` attaches N
                          WAL-shipped read replicas (needs ``.wal``),
                          ``poll`` ships+applies, ``off`` detaches,
                          bare shows each replica's state, lag and
                          watermarks plus routing counters
    .promote <name>       fail over: promote the named replica to
                          primary (the old primary is fenced)
    .shard <Class> [k=N] [by=attr]  hash-partition the class's extent
                          into N shards (default 8); ``by=attr``
                          shards on that attribute's value so equality
                          scans prune to one shard; bare ``.shards``
                          shows the layout
    .shards               sharding health: layout, per-shard sizes and
                          version skew, install/rebuild counters and
                          worker-pool utilization
    .quit                 leave

Instrumentation is **off** when the shell starts (interactive latency
is unchanged); opt in with ``.stats on``.  Launching with ``--no-obs``
locks it off for the whole session.

The shell is a thin veneer over :class:`repro.db.Database`; every line
handler returns the printed text, so the whole surface is unit-testable
without a terminal (see ``tests/test_shell.py``).
"""

from __future__ import annotations

import sys

from repro import obs
from repro.db.database import Database, Snapshot
from repro.errors import ReproError
from repro.lang.parser import parse_query
from repro.methods.ast import AccessMode
from repro.resilience import faults as fault_injection
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.transactions import Transaction
from repro.typing.inference import infer_requirements

_BANNER = (
    "IOQL shell — Bierman, 'Formal semantics and analysis of object "
    "queries' (SIGMOD 2003), executable.\nType .help for commands."
)

_DEFAULT_ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


class Shell:
    """The command interpreter; one database at a time.

    ``obs_locked`` is the ``--no-obs`` escape hatch: instrumentation
    can then not be turned on for the lifetime of the shell.
    """

    def __init__(self, db: Database | None = None, *, obs_locked: bool = False):
        self.db = db or Database.from_odl(_DEFAULT_ODL)
        self._snapshot: Snapshot | None = None
        self._obs_locked = obs_locked
        self._budget: Budget | None = None
        self._txn: Transaction | None = None
        self._workers = 1

    # ------------------------------------------------------------------
    def handle(self, line: str) -> str:
        """Process one input line; returns the text to print."""
        line = line.strip()
        if not line or line.startswith("//"):
            return ""
        try:
            if line.startswith("."):
                return self._command(line)
            if line.startswith("define"):
                if not line.endswith(";"):
                    line += ";"
                ftype = self.db.define(line)
                return f"defined : {ftype}"
            if ";;" in line:
                return self._batch(line)
            return self._query(line)
        except ReproError as exc:
            # all-or-nothing: a failing *statement* aborts the whole
            # open transaction (commands like .type are read-only and
            # leave it open)
            if (
                self._txn is not None
                and self._txn.active
                and not line.startswith(".")
            ):
                self._txn.rollback()
                self._txn = None
                return (
                    f"error: {exc}\n"
                    "transaction rolled back: the database is exactly as "
                    "it was at .transaction begin"
                )
            return f"error: {exc}"

    # ------------------------------------------------------------------
    def _query(self, src: str) -> str:
        t, eff = self.db.typecheck_with_effect(src)
        budget = self._budget.fresh() if self._budget is not None else None
        result = self.db.run(src, budget=budget)
        eff_str = "" if eff.is_empty() else f" ! {eff}"
        if result.engine == "compiled":
            how = f"compiled plan, {result.steps} ops"
        else:
            how = f"{result.steps} steps"
        return f"{result.value} : {t}{eff_str}   ({how})"

    def _batch(self, line: str) -> str:
        """A ``;;``-separated line runs as one effect-scheduled batch."""
        parts = [p.strip() for p in line.split(";;") if p.strip()]
        if not parts:
            return ""
        res = self.db.run_many(
            parts, workers=self._workers, budget=self._budget
        )
        lines = []
        for o in res:
            if o.ok:
                lines.append(f"[{o.index}] {o.value}")
            else:
                lines.append(f"[{o.index}] error: {o.error}")
        lines.append(
            f"({len(res)} queries, {res.conflict_edges} conflict edge(s), "
            f"{res.workers} worker(s), {res.wall_time * 1e3:.1f} ms, "
            f"speedup {res.speedup:.2f}x)"
        )
        return "\n".join(lines)

    def _command(self, line: str) -> str:
        cmd, _, rest = line.partition(" ")
        rest = rest.strip()
        if cmd == ".help":
            return __doc__.split("Commands::", 1)[1].strip()
        if cmd == ".schema":
            if self._txn is not None and self._txn.active:
                return "error: commit or roll back the open transaction first"
            with open(rest, encoding="utf-8") as f:
                source = f.read()
            self.db.close()  # release any attached write-ahead log
            self.db = Database.from_odl(source)
            return f"loaded schema with classes {sorted(self.db.schema.class_names())}"
        if cmd == ".type":
            return str(self.db.typecheck(rest))
        if cmd == ".effect":
            return str(self.db.effect_of(rest))
        if cmd == ".infer":
            return infer_requirements(parse_query(rest)).describe()
        if cmd == ".det":
            witnesses = self.db.determinism_witnesses(rest)
            if not witnesses:
                return "deterministic (⊢′ accepts; Theorem 7 applies)"
            return "\n".join(f"⊢′ rejects: {w}" for w in witnesses)
        if cmd == ".explore":
            budget = self._budget.fresh() if self._budget is not None else None
            return self.db.explore(rest, budget=budget).summary()
        if cmd == ".trace":
            from repro.semantics.tracing import trace

            json_mode = False
            if rest.startswith("--json"):
                json_mode = True
                rest = rest[len("--json"):].strip()
            q = self.db.parse(rest)
            self.db.typecheck(q)
            if json_mode:
                import json

                from repro.obs import events as obs_events
                from repro.obs.export import event_dict

                with obs_events.capture() as evs:
                    trace(self.db.machine, self.db.ee, self.db.oe, q)
                out = "\n".join(
                    json.dumps(event_dict(ev), ensure_ascii=False)
                    for ev in evs
                )
                return out or "(no steps: the query is already a value)"
            t = trace(self.db.machine, self.db.ee, self.db.oe, q)
            return t.render()
        if cmd == ".optimize":
            from repro.optimizer.planner import optimize

            res = optimize(self.db, self.db.parse(rest))
            if not res.changed:
                return f"no rewrites apply\n{res.query}"
            fired = ", ".join(res.rules_fired())
            return f"{res.query}\n(fired: {fired})"
        if cmd == ".explain":
            if rest.startswith("analyze"):
                src = rest[len("analyze"):].strip()
                if not src:
                    return "error: .explain analyze needs a query"
                budget = (
                    self._budget.fresh() if self._budget is not None else None
                )
                return self.db.explain_analyze(src, budget=budget).render()
            if rest.startswith("cost"):
                src = rest[len("cost"):].strip()
                if not src:
                    return "error: .explain cost needs a query"
                return self.db.explain_cost(src).render()
            from repro.optimizer.cost import CostModel, optimize_with_costs

            q = self.db.parse(rest)
            self.db.typecheck(q)
            model = CostModel.from_database(self.db)
            res = optimize_with_costs(self.db, q)
            lines = [
                f"estimated cost : {model.eval_cost(q):.0f} steps",
            ]
            if res.changed:
                lines.append(f"rewritten to   : {res.query}")
                lines.append(f"rules fired    : {', '.join(res.rules_fired())}")
                lines.append(
                    f"estimated cost : {model.eval_cost(res.query):.0f} steps "
                    f"(after rewriting)"
                )
            else:
                lines.append("no rewrites apply")
            lines.append(f"effect         : {self.db.effect_of(q)}")
            det = "yes" if self.db.is_deterministic(q) else "NO (⊢′ rejects)"
            lines.append(f"deterministic  : {det}")
            dec = self.db.plan_decision(q)
            lines.append(f"engine         : {dec.engine} — {dec.reason}")
            if dec.plan is not None:
                for note in dec.plan.notes:
                    lines.append(f"plan note      : {note}")
            return "\n".join(lines)
        if cmd == ".analyze":
            summary = self.db.analyze()
            if not summary:
                return "(no columns)"
            lines = ["column                     rows  distinct  hist"]
            for name, col in summary.items():
                exact = "" if col["exact"] else " (sketch)"
                lines.append(
                    f"{name:<24} {col['rows']:>6} "
                    f"{col['distinct']:>9g}{exact} "
                    f"{col['histogram_buckets']:>5}"
                )
            return "\n".join(lines)
        if cmd == ".replan":
            if rest == "off":
                self.db.replan_ratio = None
                return "adaptive replanning off"
            if rest:
                try:
                    ratio = float(rest)
                    if ratio <= 1.0:
                        raise ValueError
                except ValueError:
                    return "error: .replan needs a ratio > 1, or 'off'"
                self.db.replan_ratio = ratio
                return f"replanning at {ratio:g}x misestimate"
            ratio = self.db.replan_ratio
            done = self.db._qstats.get("replans", 0)
            if ratio is None:
                return f"adaptive replanning off ({done} replans so far)"
            return (
                f"replanning at {ratio:g}x misestimate "
                f"({done} replans so far)"
            )
        if cmd == ".stats":
            return self._stats(rest)
        if cmd == ".top":
            from repro.db import health as db_health

            return db_health.render(self.db.health())
        if cmd == ".profile":
            return self._profile(rest)
        if cmd == ".extents":
            rows = [
                f"{e}: {len(self.db.extent(e))} object(s)"
                for e in sorted(self.db.schema.extents)
            ]
            return "\n".join(rows) if rows else "(no extents)"
        if cmd == ".budget":
            return self._budget_cmd(rest)
        if cmd == ".workers":
            return self._workers_cmd(rest)
        if cmd == ".faults":
            return self._faults_cmd(rest)
        if cmd == ".transaction":
            return self._transaction_cmd(rest)
        if cmd == ".wal":
            return self._wal_cmd(rest)
        if cmd == ".replicas":
            return self._replicas_cmd(rest)
        if cmd == ".promote":
            return self._promote_cmd(rest)
        if cmd == ".shard":
            return self._shard_cmd(rest)
        if cmd == ".shards":
            return self._shards_cmd()
        if cmd == ".checkpoint":
            if self.db.wal is None:
                return "error: no write-ahead log attached (.wal open <dir>)"
            lsn = self.db.checkpoint()
            return f"checkpoint written (folded through lsn {lsn})"
        if cmd == ".snapshot":
            self._snapshot = self.db.snapshot()
            return "snapshot taken"
        if cmd == ".restore":
            if self._snapshot is None:
                return "error: no snapshot to restore"
            self.db.restore(self._snapshot)
            return "restored"
        if cmd == ".quit":
            raise SystemExit(0)
        return f"error: unknown command {cmd!r} (try .help)"

    # -- resilience ------------------------------------------------------
    def _budget_cmd(self, rest: str) -> str:
        if rest == "off":
            self._budget = None
            return "budget cleared"
        if not rest:
            if self._budget is None:
                return "no budget set (queries run unbounded)"
            return f"budget per query: {self._budget.describe()}"
        kw: dict[str, float] = {}
        for part in rest.split():
            key, _, value = part.partition("=")
            try:
                if key == "steps":
                    kw["max_steps"] = int(value)
                elif key == "time":
                    kw["deadline"] = float(value)
                elif key == "objects":
                    kw["max_new_objects"] = int(value)
                else:
                    return (
                        f"error: unknown budget setting {key!r} "
                        "(use steps= time= objects=)"
                    )
            except ValueError:
                return f"error: bad value in {part!r}"
        try:
            self._budget = Budget(**kw)
        except ValueError as exc:
            return f"error: {exc}"
        return f"budget per query: {self._budget.describe()}"

    def _workers_cmd(self, rest: str) -> str:
        if not rest:
            how = "sequential" if self._workers == 1 else "scheduled"
            return (
                f"workers: {self._workers} ({how}; ';;'-separated lines "
                "run as one batch)"
            )
        if rest == "off":
            self._workers = 1
            return "workers: 1 (sequential)"
        try:
            n = int(rest)
        except ValueError:
            return f"error: .workers takes a count or 'off', not {rest!r}"
        if n < 1:
            return "error: workers must be >= 1"
        self._workers = n
        return f"workers: {n}"

    def _faults_cmd(self, rest: str) -> str:
        if rest == "off":
            fault_injection.uninstall()
            return "fault injection off"
        if rest.startswith("inject"):
            args = rest[len("inject"):].split()
            fields: dict[str, object] = {}
            seed = None
            try:
                for part in args:
                    key, _, value = part.partition("=")
                    if key == "site":
                        fields["site"] = value
                    elif key == "at":
                        fields["at"] = int(value)
                    elif key == "every":
                        fields["every"] = int(value)
                    elif key == "p":
                        fields["probability"] = float(value)
                    elif key == "times":
                        fields["times"] = int(value)
                    elif key == "delay":
                        fields["delay"] = float(value)
                    elif key == "kind":
                        fields["kind"] = value
                    elif key == "seed":
                        seed = int(value)
                    else:
                        return f"error: unknown fault setting {key!r}"
            except ValueError:
                return f"error: bad value in {rest!r}"
            if "site" not in fields:
                return "error: .faults inject needs site=<name>"
            rule = FaultRule(**fields)  # may raise ReproError -> handle()
            plan = fault_injection.active()
            if plan is None or seed is not None:
                plan = FaultPlan(seed=seed or 0)
                fault_injection.install(plan)
            plan.add(rule)
            return f"injecting: {rule.describe()}"
        if rest:
            return f"error: unknown .faults subcommand {rest!r}"
        plan = fault_injection.active()
        if plan is None:
            return "fault injection off"
        return plan.describe()

    def _wal_cmd(self, rest: str) -> str:
        if rest == "off":
            if self.db.wal is None:
                return "error: no write-ahead log attached"
            directory = self.db.wal_dir
            self.db.close()
            return f"detached from {directory} (the files stay recoverable)"
        if rest.startswith("open"):
            if self._txn is not None and self._txn.active:
                return "error: commit or roll back the open transaction first"
            directory = rest[len("open"):].strip()
            if not directory:
                return "error: .wal open needs a directory"
            if self.db.wal is not None:
                return (
                    f"error: already journalling into {self.db.wal_dir} "
                    "(.wal off first)"
                )
            import os as _os

            from repro.db import recovery as _recovery

            if _os.path.exists(_recovery.checkpoint_path(directory)):
                result = _recovery.recover(directory)
                self.db = result.db
                return result.summary()
            self.db.attach_wal(directory)
            return (
                f"journalling into {directory} (checkpoint written; every "
                "commit is now durable)"
            )
        if rest:
            return f"error: unknown .wal subcommand {rest!r}"
        if self.db.wal is None:
            return "durability off (.wal open <dir> to start journalling)"
        wal = self.db.wal
        return (
            f"journalling into {self.db.wal_dir}: last lsn {wal.last_lsn}, "
            f"log {wal.size()} byte(s), "
            f"{'fsync per commit' if wal.sync else 'no fsync (flush only)'}"
        )

    def _replicas_cmd(self, rest: str) -> str:
        rset = self.db.replicas
        if rest == "off":
            if rset is None:
                return "error: no replicas attached"
            self.db.detach_replicas()
            return "replicas detached"
        if rest == "poll":
            if rset is None:
                return "error: no replicas attached (.replicas N)"
            applied = rset.poll()
            return f"shipped and applied {applied} record(s)"
        if rest:
            try:
                n = int(rest)
            except ValueError:
                return (
                    f"error: .replicas takes a count, 'poll' or 'off', "
                    f"not {rest!r}"
                )
            if rset is not None:
                return (
                    f"error: {len(rset)} replica(s) already attached "
                    "(.replicas off first)"
                )
            rset = self.db.replicate(n)  # may raise ReproError -> handle()
            return (
                f"{len(rset)} replica(s) attached; effect-proven reads "
                "now route to the freshest covering replica"
            )
        if rset is None:
            return "replication off (.replicas N to attach; needs .wal)"
        snap = rset.snapshot()
        lines = [
            f"{len(rset)} replica(s): routed={snap['routed']} "
            f"pinned={snap['pinned']} degraded={snap['degraded']}"
        ]
        for r in snap["replicas"]:
            marks = ", ".join(
                f"{c}@{l}" for c, l in sorted(r["marks"].items())
            )
            lines.append(
                f"  {r['name']:<12} {r['state']:<12} "
                f"lsn={r['applied_lsn']} lag={r['lag']} "
                f"star={r['star_mark']} served={r['served']} "
                f"resyncs={r['resyncs']}"
                + (f" [{marks}]" if marks else "")
                + (
                    f" — {r['quarantine_reason']}"
                    if r["quarantine_reason"]
                    else ""
                )
            )
        return "\n".join(lines)

    def _promote_cmd(self, rest: str) -> str:
        rset = self.db.replicas
        if rset is None:
            return "error: no replicas attached (.replicas N)"
        if not rest:
            names = ", ".join(r.name for r in rset)
            return f"error: .promote needs a replica name ({names})"
        from repro.replication import promote as _promote

        replica = rset.get(rest)  # may raise ReproError -> handle()
        old_dir = self.db.wal_dir
        self.db = _promote(replica)
        survivors = (
            ", ".join(r.name for r in self.db.replicas)
            if self.db.replicas is not None
            else "none"
        )
        return (
            f"promoted {rest} to primary of {old_dir} (old primary "
            f"fenced; surviving replicas: {survivors})"
        )

    def _shard_cmd(self, rest: str) -> str:
        if not rest:
            return "error: .shard needs a class name (.shard Person k=8 by=region)"
        parts = rest.split()
        cname = parts[0]
        k, by = 8, None
        for tok in parts[1:]:
            key, _, value = tok.partition("=")
            if key == "k" and value:
                try:
                    k = int(value)
                except ValueError:
                    return f"error: k must be an integer, got {value!r}"
            elif key == "by" and value:
                by = value
            else:
                return f"error: unknown .shard option {tok!r} (k=N, by=attr)"
        spec = self.db.shard(cname, k=k, by=by)  # ReproError -> handle()
        return f"sharded: {spec.describe()}"

    def _shards_cmd(self) -> str:
        sh = self.db.health().get("sharding")
        if not sh:
            return "no sharded extents (.shard <Class> [k=N] [by=attr])"
        lines = ["sharding"]
        for name, e in sorted(sh["extents"].items()):
            key = f"by {e['by']}" if e["by"] else "by oid"
            if e["shard_sizes"] is None:
                sizes = "partition not built yet"
            else:
                sizes = (
                    f"sizes={e['shard_sizes']} (skew {e['size_skew']})"
                )
            lines.append(
                f"  {name} ({e['class']}) k={e['k']} {key}: "
                f"{e.get('rows', 0)} rows, {sizes}, version skew "
                f"{e['version_skew']}"
            )
        pool = sh.get("pool") or {}
        util = pool.get("utilization")
        lines.append(
            f"  installs={sh['installs']} rebuilds={sh['rebuilds']} "
            f"epoch={sh['epoch']}"
        )
        lines.append(
            f"  pool workers={pool.get('workers', 0)} "
            f"tasks={pool.get('tasks', 0)} "
            f"batches={pool.get('batches', 0)}"
            + (f" utilization={util:.0%}" if util is not None else "")
        )
        return "\n".join(lines)

    def _transaction_cmd(self, rest: str) -> str:
        if rest == "begin":
            if self._txn is not None and self._txn.active:
                return "error: a transaction is already open"
            self._txn = self.db.transaction().__enter__()
            return "transaction open (statements commit together or not at all)"
        if rest == "commit":
            if self._txn is None or not self._txn.active:
                return "error: no open transaction"
            self._txn.commit()
            self._txn = None
            return "transaction committed"
        if rest == "rollback":
            if self._txn is None or not self._txn.active:
                return "error: no open transaction"
            self._txn.rollback()
            self._txn = None
            return "transaction rolled back"
        if rest:
            return f"error: unknown .transaction subcommand {rest!r}"
        if self._txn is not None and self._txn.active:
            eff = self._txn.effect
            eff_str = "∅" if eff.is_empty() else str(eff)
            return f"transaction open, accumulated effect {eff_str}"
        return "no open transaction"

    # -- observability ---------------------------------------------------
    def _stats(self, rest: str) -> str:
        if rest == "on":
            if self._obs_locked:
                return "error: instrumentation is locked off (--no-obs)"
            obs.enable()
            return "instrumentation on (see .stats / .profile / .stats export)"
        if rest == "off":
            obs.disable()
            return "instrumentation off (collected data kept; .stats reset drops it)"
        if rest == "reset":
            obs.reset()
            return "metrics, spans and events reset"
        if rest.startswith("export"):
            path = rest[len("export"):].strip()
            if not path:
                return "error: .stats export needs a file path"
            try:
                n = obs.export.export_jsonl(path)
            except OSError as exc:
                return f"error: cannot write {path}: {exc}"
            return f"wrote {n} record(s) to {path}"
        if rest:
            return f"error: unknown .stats subcommand {rest!r}"
        state = "on" if obs.enabled() else "off"
        return f"instrumentation: {state}\n{obs.export.summary()}"

    def _profile(self, src: str) -> str:
        if not src:
            return "error: .profile needs a query"
        if self._obs_locked:
            return "error: instrumentation is locked off (--no-obs)"
        prev = obs.enabled()
        if not prev:
            obs.enable()
        mark = len(obs.TRACER.finished)
        try:
            with obs.capture() as events:
                # the rule histogram below only exists on the reduction
                # machine, so profile that engine explicitly
                result = self.db.run(src, engine="reduction")
        finally:
            if not prev:
                obs.disable()
        lines = [f"value : {result.value}", f"steps : {result.steps}"]
        roots = obs.TRACER.finished[mark:]
        if roots:
            lines.append("phases (ms):")

            def walk(sp, indent: int) -> None:
                lines.append(
                    f"  {'  ' * indent}{sp.name:<{18 - 2 * indent}}"
                    f"{sp.duration * 1e3:>10.3f}"
                )
                for child in sp.children:
                    walk(child, indent + 1)

            for root in roots:
                walk(root, 0)
        hist: dict[str, int] = {}
        for ev in events:
            hist[ev.rule] = hist.get(ev.rule, 0) + 1
        if hist:
            lines.append("rules fired:")
            for rule, n in sorted(hist.items(), key=lambda kv: (-kv[1], kv[0])):
                lines.append(f"  {rule:<18}{n:>6}")
        return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = sys.argv[1:] if argv is None else argv
    obs_locked = "--no-obs" in argv
    if obs_locked:
        argv = [a for a in argv if a != "--no-obs"]
        obs.disable()
    if argv:
        with open(argv[0], encoding="utf-8") as f:
            db = Database.from_odl(f.read())
        shell = Shell(db, obs_locked=obs_locked)
    else:
        shell = Shell(obs_locked=obs_locked)
    print(_BANNER)
    while True:
        try:
            line = input("ioql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            out = shell.handle(line)
        except SystemExit:
            return 0
        if out:
            print(out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
