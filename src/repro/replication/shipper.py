"""The WAL shipper: a pull-based tail over a primary's ``wal.log``.

Each replica owns one :class:`WalShipper`.  A poll reads whatever
intact frames lie past the shipper's byte offset (``repro.db.wal.tail``
— tolerant, resumable, never mutating: the primary owns repair) and
hands them to the replica to apply.  The file is the whole protocol,
which is why shipping also works across processes: a replica in
another process tails the same bytes the in-process one does.

The robustness surface is in telling three tail conditions apart:

* **torn append in flight** — the error sits at the shipper's offset
  and the next poll usually sees the frame completed; ship the intact
  prefix and wait;
* **log reset** (a checkpoint folded the log) — the file shrank below
  the offset, or it regrew but is frame-aligned only from the header;
  the shipped stream is gone, so raise :class:`ShipGap` and the
  replica resyncs from the checkpoint;
* **mid-log corruption** — the same frame stays torn while the file
  keeps growing (the writer moved past it): also a :class:`ShipGap`,
  because no later frame can be trusted to be the successor of the
  last shipped one.

Every poll passes the ``replica.ship`` fault site, so all three paths
are drivable from a seeded :class:`~repro.resilience.faults.FaultPlan`.
"""

from __future__ import annotations

from repro.db import wal as _wal
from repro.db.wal import WalError
from repro.errors import ReproError
from repro.resilience.faults import maybe_fault


class ReplicationError(ReproError):
    """Something went wrong in the replication layer."""


class ShipGap(ReplicationError):
    """The ship stream lost continuity; the replica must resync."""


class WalShipper:
    """Tails one ``wal.log`` by byte offset, shipping intact frames."""

    def __init__(self, path: str):
        self.path = path
        self.offset = len(_wal.MAGIC)
        self.last_lsn = 0
        self.polls_total = 0
        self.records_total = 0
        self.gaps_total = 0
        # (offset, size) of the last torn frame seen: the two-poll
        # corruption detector compares against it
        self._pending_error: tuple[int, int] | None = None

    def seek(self, offset: int, lsn: int) -> None:
        """Re-home the stream after a resync: next poll reads from here."""
        self.offset = max(offset, len(_wal.MAGIC))
        self.last_lsn = lsn
        self._pending_error = None

    def poll(self) -> tuple[dict, ...]:
        """Read and return newly shipped records (possibly none).

        Raises :class:`ShipGap` when the stream the offset referred to
        no longer exists (reset/corruption) and
        :class:`~repro.errors.TransientFault` when an injected
        ``replica.ship`` fault fires; both send the replica through its
        backoff-resync path.
        """
        maybe_fault("replica.ship")
        self.polls_total += 1
        t = _wal.tail(self.path, self.offset)
        if t.reset:
            self.gaps_total += 1
            self._pending_error = None
            raise ShipGap(
                f"{self.path}: log shrank below ship offset {self.offset} "
                "(checkpoint fold) — resync from the checkpoint"
            )
        if t.error is not None and not t.records and t.offset == self.offset:
            self._check_stalled_tail(t)
        elif t.error is not None:
            self._pending_error = (t.offset, t.size)
        else:
            self._pending_error = None
        self.offset = t.offset
        records = tuple(r for r in t.records if r["lsn"] > self.last_lsn)
        if records:
            self.last_lsn = records[-1]["lsn"]
            self.records_total += len(records)
        return records

    def _check_stalled_tail(self, t: "_wal.TailResult") -> None:
        """No progress and a torn frame at our offset: reset, corruption,
        or just an append still in flight?"""
        # frame-aligned from the header but not from our offset ⇒ the
        # log was reset (and regrew past the old offset) under us
        _records, full_valid, full_err = _wal.scan(self.path)
        if full_err is None or full_valid > t.offset:
            self.gaps_total += 1
            self._pending_error = None
            raise ShipGap(
                f"{self.path}: ship offset {t.offset} is no longer "
                "frame-aligned (log reset) — resync from the checkpoint"
            )
        prev = self._pending_error
        if prev is not None and prev[0] == t.offset and t.size > prev[1]:
            # the writer appended past a frame that never became intact:
            # that frame will never complete, so the stream is broken
            self.gaps_total += 1
            self._pending_error = None
            raise ShipGap(
                f"{self.path}: persistent corrupt frame at byte "
                f"{t.offset} ({t.error}) — resync from the checkpoint"
            )
        self._pending_error = (t.offset, t.size)

    def snapshot(self) -> dict:
        return {
            "offset": self.offset,
            "last_lsn": self.last_lsn,
            "polls": self.polls_total,
            "records": self.records_total,
            "gaps": self.gaps_total,
        }
