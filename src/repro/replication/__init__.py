"""WAL-shipped read replicas with effect-guided freshness routing.

The replication layer turns the PR 5 write-ahead log into a ship
stream: a primary :class:`~repro.db.database.Database` journals every
commit (delta records for ``A``-only effects, full records for ``U``),
and each :class:`~repro.replication.replica.Replica` tails the same
bytes with a :class:`~repro.replication.shipper.WalShipper` and
replays them through the crash-recovery ``apply_record`` path —
replication *is* recovery that never stops.

Freshness is decided by the Figure 3 effect system, not clocks: the
primary stamps per-extent LSN watermarks from each commit's static
write effect, and a read routes to a replica exactly when the
replica's watermarks cover the read's R-set (with a *star* mark for
``U``/``define`` commits, per the §5 reference-chasing caveat).  A
read that cannot be proven fresh degrades to the primary — counted,
never wrong.

Entry points: ``Database.replicate(n)`` builds a
:class:`~repro.replication.router.ReplicaSet`;
:func:`~repro.replication.failover.promote` turns a survivor into the
new primary and fences the old one.
"""

from repro.replication.failover import promote
from repro.replication.replica import (
    CATCHING_UP,
    LAGGING,
    QUARANTINED,
    SERVING,
    Divergence,
    Replica,
    state_digest,
)
from repro.replication.router import PinnedRead, ReplicaSet
from repro.replication.shipper import ReplicationError, ShipGap, WalShipper

__all__ = [
    "CATCHING_UP",
    "Divergence",
    "LAGGING",
    "PinnedRead",
    "QUARANTINED",
    "Replica",
    "ReplicaSet",
    "ReplicationError",
    "SERVING",
    "ShipGap",
    "WalShipper",
    "promote",
    "state_digest",
]
