"""One in-process read replica: physical replay + freshness watermarks.

A :class:`Replica` holds its own :class:`~repro.db.database.Database`,
seeded from the primary's checkpoint + intact log
(:func:`repro.db.recovery.bootstrap`) and kept current by replaying
shipped WAL records through the *same*
:func:`repro.db.recovery.apply_record` crash recovery uses — replication
is recovery that never stops.

Freshness is effect-guided, not clock-guided.  Each applied record
advances **per-extent LSN watermarks** derived from its static write
effect: a ``delta`` record (an ``A``-only commit, Theorem 5 bounds its
payload) marks exactly the classes its atoms name; ``full`` and
``define`` records advance a *star* mark instead, because an in-place
update or a new definition can be observed by any query through
reference chains the R-set does not name (the §5 caveat).  A replica
may serve a query iff, for every class in the query's R-set, its own
``max(star, mark[C])`` reaches the primary's — the rule
``tests/test_replication_differential.py`` certifies against 200 seeded
mixed batches with zero stale reads.

Health states: ``CATCHING_UP`` (bootstrapping or resyncing) →
``SERVING`` (lag within threshold) ↔ ``LAGGING`` (behind, but still
routable for reads its watermarks cover — stale-but-covered is still
*correct*) → ``QUARANTINED`` (a record refused to apply, or a SHA-256
state-digest audit disagreed with the primary: the replica never
answers again, and the flight recorder dumps a black box named after
it).
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import nullcontext
from typing import TYPE_CHECKING, Iterable

from repro.db import recovery as _recovery
from repro.db.wal import WalError
from repro.errors import TransientFault
from repro.lang.pprint import pretty_definition
from repro.obs import flight as _flight
from repro.replication.shipper import ReplicationError, ShipGap, WalShipper
from repro.resilience.faults import maybe_fault
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.semantics.evaluator import EvalResult

#: Replica health states.
CATCHING_UP = "catching_up"
SERVING = "serving"
LAGGING = "lagging"
QUARANTINED = "quarantined"


class Divergence(ReplicationError):
    """A replica's state provably disagrees with the primary's."""


def state_digest(db: "Database") -> str:
    """SHA-256 over the canonical JSON of a database's EE/OE/DE.

    Reuses the persistence layer's canonical encoding (sorted keys,
    tight separators) so two databases digest equal iff their extents,
    objects and definitions are byte-for-byte the same state.  The oid
    counter is deliberately excluded: the primary burns oids on failed
    attempts that never reach the log, and ∼ makes that unobservable.
    """
    from repro.db.persistence import _canonical, value_to_json

    doc = {
        "extents": {
            name: sorted(db.ee.members(name)) for name in db.ee.names()
        },
        "objects": {
            oid: {
                "class": rec.cname,
                "attrs": {a: value_to_json(v) for a, v in rec.attrs},
            }
            for oid, rec in db.oe.items()
        },
        "definitions": [
            pretty_definition(d) for d in db.definitions.values()
        ],
    }
    return hashlib.sha256(_canonical(doc)).hexdigest()


class Replica:
    """One WAL-shipped read replica of a primary database."""

    def __init__(
        self,
        name: str,
        primary: "Database | None" = None,
        *,
        directory: str | None = None,
        lag_threshold: int = 8,
        audit_every: int = 32,
        retry: RetryPolicy | None = None,
    ):
        if primary is None and directory is None:
            raise ReplicationError(
                "a replica needs a primary database or its directory"
            )
        self.name = name
        self._primary = primary
        self.directory = directory or primary.wal_dir
        if self.directory is None:
            raise ReplicationError(
                "the primary has no WAL directory to ship from"
            )
        self.lag_threshold = lag_threshold
        self.audit_every = audit_every
        self.retry = retry or RetryPolicy.seeded(
            abs(hash(name)) % 2**16, base_delay=0.005, max_delay=0.25
        )
        self.db: "Database | None" = None
        self.state = CATCHING_UP
        self.quarantine_reason: str | None = None
        self.applied_lsn = 0
        self.marks: dict[str, int] = {}
        self.star = 0
        self.shipper = WalShipper(_recovery.wal_path(self.directory))
        self.inflight = 0
        self.served_total = 0
        self.applied_total = 0
        self.resyncs_total = 0
        self.audits_total = 0
        self.ship_failures_total = 0
        self._since_audit = 0
        self._fail_streak = 0
        self._lock = threading.RLock()
        self.resync(backoff=False)

    # -- synchronisation -------------------------------------------------
    def _primary_lock(self):
        # holding the primary's commit lock freezes log + marks, so the
        # bootstrapped state is exactly the primary's committed state
        return (
            self._primary._commit_lock
            if self._primary is not None
            else nullcontext()
        )

    def resync(self, *, backoff: bool = True) -> None:
        """Rebuild from the checkpoint + intact log prefix (seeded
        exponential backoff between consecutive failures)."""
        if self.state == QUARANTINED:
            raise ReplicationError(
                f"replica {self.name} is quarantined: "
                f"{self.quarantine_reason}"
            )
        with self._lock:
            if backoff and self._fail_streak:
                self.retry.sleep(
                    self.retry.delay_for(min(self._fail_streak, 10))
                )
            self.state = CATCHING_UP
            with self._primary_lock():
                db, last_lsn, valid_bytes = _recovery.bootstrap(
                    self.directory
                )
                self.db = db
                self.applied_lsn = last_lsn
                self.marks = {}
                # the bootstrapped state equals the primary's prefix at
                # last_lsn exactly, so every per-class mark is last_lsn
                self.star = last_lsn
                self.shipper.seek(valid_bytes, last_lsn)
            self.resyncs_total += 1
            self._since_audit = 0
            self._update_state()
        _flight.record(
            "replica-resync",
            replica=self.name,
            applied_lsn=self.applied_lsn,
            resyncs=self.resyncs_total,
        )

    def poll(self) -> int:
        """Ship and apply whatever new records the log holds.

        Returns the number of records applied.  Ship gaps and injected
        transient faults are absorbed (counted, backoff, resync);
        semantic refusals and digest divergence quarantine the replica.
        """
        with self._lock:
            if self.state == QUARANTINED or self.db is None:
                return 0
            try:
                records = self.shipper.poll()
            except (TransientFault, ShipGap, WalError) as exc:
                self._note_ship_failure(exc)
                return 0
            applied = 0
            for rec in records:
                try:
                    self._apply(rec)
                except (TransientFault, ShipGap) as exc:
                    self._note_ship_failure(exc)
                    return applied
                except WalError as exc:
                    self._quarantine(
                        f"record lsn {rec.get('lsn')} refused to apply: "
                        f"{exc}",
                        exc,
                    )
                    return applied
                applied += 1
            self._fail_streak = 0
            self._update_state()
            if (
                self.audit_every
                and self._since_audit >= self.audit_every
            ):
                self.audit()
            return applied

    def _note_ship_failure(self, exc: BaseException) -> None:
        self._fail_streak += 1
        self.ship_failures_total += 1
        self.state = CATCHING_UP
        _flight.record(
            "replica-ship-gap",
            replica=self.name,
            error=f"{type(exc).__name__}: {exc}",
            streak=self._fail_streak,
        )
        try:
            self.resync()
        except ReplicationError:
            raise
        except Exception as resync_exc:  # stay catching up; next poll retries
            _flight.record(
                "replica-resync-failed",
                replica=self.name,
                error=f"{type(resync_exc).__name__}: {resync_exc}",
            )

    def _apply(self, rec: dict) -> None:
        maybe_fault("replica.apply")
        lsn = rec["lsn"]
        if lsn <= self.applied_lsn:
            return  # idempotent: already applied (e.g. re-shipped after seek)
        if lsn != self.applied_lsn + 1:
            raise ShipGap(
                f"replica {self.name}: record lsn {lsn} after "
                f"{self.applied_lsn} — stream lost records"
            )
        _recovery.apply_record(self.db, rec)
        self.applied_lsn = lsn
        kind = rec.get("kind")
        if kind == "delta":
            for extent in rec.get("extents", {}):
                try:
                    cname = self.db.schema.extent_class(extent)
                except Exception:
                    continue
                self.marks[cname] = lsn
        elif kind == "shard-delta":
            # per-shard marks mirror the primary's _mark_written exactly:
            # a sharded extent advances only its touched shards' keys, so
            # a reader confined to other shards stays served; extents the
            # commit touched without a shard stanza advance the class mark
            shard_map = rec.get("shards", {})
            for extent in rec.get("adds", {}):
                try:
                    cname = self.db.schema.extent_class(extent)
                except Exception:
                    continue
                if extent in shard_map:
                    for s in shard_map[extent]:
                        self.marks[f"{cname}#{s}"] = lsn
                else:
                    self.marks[cname] = lsn
        else:
            # full (U commit, rollback, restore) and define records may
            # be observed by any query (§5): star mark
            self.star = lsn
        self.applied_total += 1
        self._since_audit += 1
        _flight.record(
            "replica-apply",
            replica=self.name,
            lsn=lsn,
            kind=rec.get("kind", "?"),
        )

    # -- health ----------------------------------------------------------
    def lag(self) -> int:
        """Records behind the primary's log head (0 when detached)."""
        if self._primary is None:
            return 0
        wal = self._primary.wal
        if wal is None:
            return 0
        return max(0, wal.last_lsn - self.applied_lsn)

    def _update_state(self) -> None:
        if self.state == QUARANTINED:
            return
        self.state = SERVING if self.lag() <= self.lag_threshold else LAGGING

    def audit(self) -> bool:
        """Compare state digests with the primary when fully caught up.

        Returns ``False`` (and quarantines) on divergence.  A replica
        that is behind is not auditable — being behind is lag, not
        divergence — so the comparison runs under the primary's commit
        lock and only when ``applied_lsn`` equals the log head.
        """
        if self._primary is None or self.db is None:
            return True
        if self.state == QUARANTINED:
            return False
        with self._primary_lock():
            wal = self._primary.wal
            if wal is None or self.applied_lsn != wal.last_lsn:
                return True
            want = state_digest(self._primary)
            have = state_digest(self.db)
        self.audits_total += 1
        self._since_audit = 0
        if want != have:
            self._quarantine(
                f"state digest divergence at lsn {self.applied_lsn}: "
                f"primary {want[:12]}… != replica {have[:12]}…",
                Divergence("state digest mismatch"),
            )
            return False
        return True

    def _quarantine(self, reason: str, error: BaseException | None) -> None:
        self.state = QUARANTINED
        self.quarantine_reason = reason
        _flight.record(
            "replica-quarantine",
            replica=self.name,
            reason=reason,
            applied_lsn=self.applied_lsn,
        )
        # the black box gets the replica's name so a later generic dump
        # into the same directory cannot erase the evidence
        _flight.crash_dump(
            "replica-divergence",
            error=error,
            directory=self.directory,
            filename=f"flight-{self.name}.jsonl",
        )

    # -- serving ---------------------------------------------------------
    def covers(
        self,
        required: dict[str, int],
        classes: Iterable[str],
        shard_reads: dict | None = None,
    ) -> bool:
        """Do this replica's watermarks reach ``required`` on ``classes``?

        ``required`` is :meth:`Database.write_marks` — class → LSN plus
        the ``"*"`` star mark every query must respect (U/define
        commits are observable through reference chains regardless of
        the R-set).  Sharded extents also carry ``"Class#shard"`` keys;
        ``shard_reads`` (class → frozenset of shard ids the query is
        statically confined to, from
        :func:`repro.db.shards.static_read_shards`) lets a pruned
        reader be served while *other* shards of the same class are
        still catching up.  A class with no (or ``None``) entry needs
        every one of its shard marks.
        """
        star_need = required.get("*", 0)
        if self.star < star_need:
            return False
        for cname in classes:
            class_need = max(star_need, required.get(cname, 0))
            have_class = max(self.star, self.marks.get(cname, 0))
            confined = (
                shard_reads.get(cname) if shard_reads is not None else None
            )
            if confined is not None:
                for s in confined:
                    key = f"{cname}#{s}"
                    need = max(class_need, required.get(key, 0))
                    if max(have_class, self.marks.get(key, 0)) < need:
                        return False
                continue
            if have_class < class_need:
                return False
            prefix = cname + "#"
            for key, need in required.items():
                if key.startswith(prefix):
                    if max(have_class, self.marks.get(key, 0)) < max(
                        class_need, need
                    ):
                        return False
        return True

    def serve(self, q, **run_kw) -> "EvalResult":
        """Answer one routed read against this replica's live state."""
        with self._lock:
            self.inflight += 1
        try:
            return self.db.run(q, commit=False, typecheck=False, **run_kw)
        finally:
            with self._lock:
                self.inflight -= 1
                self.served_total += 1

    def snapshot_envs(self):
        """A consistent (ee, oe) pair for a pinned read.

        Capture order matters: apply installs ``oe`` before ``ee``, so
        reading ``ee`` first can never pair a new extent set with an
        object env missing its members (the same discipline as the
        primary's commit).
        """
        ee = self.db.ee
        oe = self.db.oe
        return ee, oe

    def serve_snapshot(self, q, ee, oe, **run_kw) -> "EvalResult":
        """Answer a pinned read against a captured (ee, oe) pair."""
        with self._lock:
            self.inflight += 1
        try:
            return self.db._run_snapshot(q, ee, oe, **run_kw)
        finally:
            with self._lock:
                self.inflight -= 1
                self.served_total += 1

    def health(self) -> dict:
        """JSON-safe health snapshot for ``Database.health()``."""
        return {
            "name": self.name,
            "state": self.state,
            "applied_lsn": self.applied_lsn,
            "lag": self.lag(),
            "star_mark": self.star,
            "marks": dict(self.marks),
            "inflight": self.inflight,
            "served": self.served_total,
            "applied": self.applied_total,
            "resyncs": self.resyncs_total,
            "audits": self.audits_total,
            "ship_failures": self.ship_failures_total,
            "quarantine_reason": self.quarantine_reason,
            "shipper": self.shipper.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Replica {self.name} {self.state} lsn={self.applied_lsn} "
            f"lag={self.lag()}>"
        )
