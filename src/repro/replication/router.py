"""The replica set: freshness-aware routing over N read replicas.

:class:`ReplicaSet` owns the replicas a primary created with
``Database.replicate(n)`` and answers two questions:

* **live routing** (``try_serve``): ``Database.run(engine="auto")``
  asks it to serve an effect-proven read-only query.  The set picks the
  least-loaded replica whose per-extent watermarks cover the query's
  R-set against the primary's current write marks; if none qualifies
  it polls once (ship + apply is cheap) and re-picks, and if the set
  still cannot prove freshness it returns ``None`` — the primary
  answers, the degrade is counted, and the answer is never wrong.

* **pinned routing** (``pin`` / ``serve_pinned``): the scheduler asks
  at admission time for an immutable ``(ee, oe)`` snapshot from a
  covering replica.  A pinned read leaves the batch's conflict graph
  entirely — writers stop serialising behind it — which is where the
  replica read-throughput win comes from (``benchmarks/
  replica_workloads.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.effects.algebra import Effect
from repro.obs import flight as _flight
from repro.replication.replica import (
    LAGGING,
    QUARANTINED,
    SERVING,
    Replica,
)
from repro.replication.shipper import ReplicationError
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.semantics.evaluator import EvalResult

#: Preference order when several replicas cover a read.
_STATE_RANK = {SERVING: 0, LAGGING: 1}


@dataclass(frozen=True)
class PinnedRead:
    """An immutable snapshot a scheduler-admitted read will run against."""

    replica: Replica
    ee: object
    oe: object


class ReplicaSet:
    """N replicas of one primary, plus the routing policy over them."""

    def __init__(
        self,
        db: "Database",
        n: int = 2,
        *,
        names: Sequence[str] | None = None,
        lag_threshold: int = 8,
        audit_every: int = 32,
        auto_poll: bool = True,
        retry: RetryPolicy | None = None,
        replicas: Sequence[Replica] | None = None,
    ):
        if replicas is None and n < 1:
            raise ReplicationError("a replica set needs at least one replica")
        self.db = db
        self.auto_poll = auto_poll
        self._closed = False
        self._lock = threading.Lock()
        self.routed_total = 0
        self.pinned_total = 0
        self.degraded_total = 0
        self.degraded_reasons: dict[str, int] = {}
        if replicas is not None:
            # failover re-homes survivors under a fresh set
            self.replicas = list(replicas)
        else:
            self.replicas = [
                Replica(
                    (names[i] if names else f"replica-{i + 1}"),
                    db,
                    lag_threshold=lag_threshold,
                    audit_every=audit_every,
                    retry=retry
                    or RetryPolicy.seeded(
                        i, base_delay=0.005, max_delay=0.25
                    ),
                )
                for i in range(n)
            ]

    # -- maintenance -----------------------------------------------------
    def poll(self) -> int:
        """Ship-and-apply on every replica; returns records applied."""
        return sum(
            r.poll() for r in self.replicas if r.state != QUARANTINED
        )

    def audit_all(self) -> bool:
        """Digest-audit every caught-up replica; ``False`` on divergence."""
        return all(
            r.audit() for r in self.replicas if r.state != QUARANTINED
        )

    def close(self) -> None:
        self._closed = True

    def __iter__(self):
        return iter(self.replicas)

    def __len__(self) -> int:
        return len(self.replicas)

    def get(self, name: str) -> Replica:
        for r in self.replicas:
            if r.name == name:
                return r
        raise ReplicationError(f"no replica named {name!r}")

    # -- routing ---------------------------------------------------------
    def _shard_reads(self, q) -> dict | None:
        """The query's static per-class shard confinement (or ``None``).

        Computed against the *primary's* live layout — marks were
        written under the same layout, so shard ids line up.  ``None``
        (unsharded primary, or analysis refused) keeps the class-level
        rule, which is always sufficient.
        """
        if q is None:
            return None
        shards = getattr(self.db, "_shards", None)
        if shards is None or not shards.enabled:
            return None
        try:
            from repro.db.shards import static_read_shards

            return static_read_shards(shards, self.db.schema, q)
        except Exception:
            return None

    def _pick(
        self,
        required: dict[str, int],
        classes: frozenset[str],
        shard_reads: dict | None = None,
    ) -> Replica | None:
        candidates = [
            r
            for r in self.replicas
            if r.state in _STATE_RANK
            and r.covers(required, classes, shard_reads)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (
                _STATE_RANK[r.state],
                r.inflight,
                r.served_total,
                r.name,
            ),
        )

    def _degrade(self, reason: str) -> None:
        with self._lock:
            self.degraded_total += 1
            self.degraded_reasons[reason] = (
                self.degraded_reasons.get(reason, 0) + 1
            )
        _flight.record("replica-degrade", reason=reason)

    def try_serve(
        self, q, eff: Effect, **run_kw
    ) -> "EvalResult | None":
        """Serve one live routed read, or ``None`` to degrade."""
        if self._closed:
            return None
        required = self.db.write_marks()
        classes = eff.reads()
        shard_reads = self._shard_reads(q)
        pick = self._pick(required, classes, shard_reads)
        if pick is None and self.auto_poll:
            # one cheap catch-up attempt before giving the read back:
            # most misses are just records not yet shipped
            self.poll()
            pick = self._pick(required, classes, shard_reads)
        if pick is None:
            self._degrade("no-fresh-replica")
            return None
        try:
            result = pick.serve(q, **run_kw)
        except ReplicationError:
            self._degrade("replica-error")
            return None
        with self._lock:
            self.routed_total += 1
        return result

    # -- pinned routing (scheduler) --------------------------------------
    def pin(self, eff: Effect, q=None) -> PinnedRead | None:
        """Pin a covering replica's current snapshot for a batch read.

        ``q`` (optional) enables shard-confined coverage: a read the
        static analysis proves touches only certain shards can pin a
        replica that is behind on the *other* shards of those classes.
        """
        if self._closed:
            return None
        required = self.db.write_marks()
        classes = eff.reads()
        shard_reads = self._shard_reads(q)
        pick = self._pick(required, classes, shard_reads)
        if pick is None and self.auto_poll:
            self.poll()
            pick = self._pick(required, classes, shard_reads)
        if pick is None:
            self._degrade("no-pinnable-replica")
            return None
        ee, oe = pick.snapshot_envs()
        return PinnedRead(pick, ee, oe)

    def serve_pinned(self, pin: PinnedRead, q, **run_kw) -> "EvalResult":
        """Run a scheduler-admitted read against its pinned snapshot."""
        result = pin.replica.serve_snapshot(q, pin.ee, pin.oe, **run_kw)
        with self._lock:
            self.routed_total += 1
            self.pinned_total += 1
        return result

    # -- health ----------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            out = {
                "count": len(self.replicas),
                "routed": self.routed_total,
                "pinned": self.pinned_total,
                "degraded": self.degraded_total,
                "degraded_reasons": dict(self.degraded_reasons),
            }
        out["replicas"] = [r.health() for r in self.replicas]
        return out
