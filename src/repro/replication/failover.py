"""Primary failover: promote a replica, fence the old primary.

Promotion is recovery with a survivor's head start.  The replica
already holds a prefix of the primary's committed history; ``promote``
replays whatever intact records the log holds past the replica's
``applied_lsn`` (the same :func:`~repro.db.recovery.apply_record`
path), adopts the log for writing with ``next_lsn`` past the last
durable record, and checkpoints — so the promoted database *is* a
sequential prefix of the old primary's history, equal up to the oid
bijection ∼ (:func:`repro.db.recovery.apply_record` advances the
:class:`~repro.model.oids.OidSupply` past every logged ``next_oid``,
so no promoted commit can ever reuse a pre-failover oid).

The old primary, if still reachable in-process, is **fenced**: its WAL
handle is closed and every state-changing entry point
(``run``/``insert``/``define``/``checkpoint``/``replicate``) raises —
a split brain needs two writers, and fencing leaves exactly one.

Surviving, non-quarantined replicas are re-homed onto the promoted
primary (same directory, same ship protocol) and resynced from its
post-promotion checkpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db import recovery as _recovery
from repro.db import wal as _wal
from repro.db.wal import WalError
from repro.obs import flight as _flight
from repro.replication.replica import QUARANTINED, Replica
from repro.replication.shipper import ReplicationError
from repro.resilience.faults import maybe_fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database


def promote(
    replica: Replica, *, directory: str | None = None, sync: bool = True
) -> "Database":
    """Promote ``replica`` to primary; returns the promoted database.

    ``directory`` defaults to the replica's ship directory (always the
    old primary's).  Works both in-process (the old primary is fenced
    and its surviving replicas re-homed) and cross-process (the old
    primary is simply gone — e.g. ``examples/replica_failover.py``'s
    ``kill -9`` smoke — in which case there is nothing to fence and the
    log on disk is the whole estate).
    """
    maybe_fault("failover.promote")
    if replica.state == QUARANTINED:
        raise ReplicationError(
            f"cannot promote quarantined replica {replica.name}: "
            f"{replica.quarantine_reason}"
        )
    directory = directory or replica.directory
    old = replica._primary

    # 1. fence the old primary first: no new record may land after the
    #    prefix we are about to declare authoritative
    old_set = None
    if old is not None:
        with old._commit_lock:
            old._fenced = True
            wal, old._wal = old._wal, None
        if wal is not None:
            wal.close()
        old_set, old._replicas = old._replicas, None
        if old_set is not None:
            old_set.close()

    # 2. replay the intact tail of the fenced log into the survivor
    records, valid_bytes, _scan_error = _wal.scan(
        _recovery.wal_path(directory)
    )
    last_lsn = replica.applied_lsn
    for rec in records:
        lsn = rec["lsn"]
        if lsn <= last_lsn:
            continue
        try:
            _recovery.apply_record(replica.db, rec)
        except WalError as exc:
            replica._quarantine(
                f"promotion replay refused record lsn {lsn}: {exc}", exc
            )
            raise ReplicationError(
                f"replica {replica.name} cannot be promoted: {exc}"
            ) from exc
        last_lsn = lsn

    # 3. the survivor becomes the writer: adopt the log past the last
    #    durable record, then checkpoint so the estate is self-contained
    newdb = replica.db
    replica._primary = None
    newdb._adopt_wal(directory, next_lsn=last_lsn + 1, sync=sync)
    newdb.checkpoint()

    # 4. re-home the other survivors onto the promoted primary
    survivors = []
    if old_set is not None:
        from repro.replication.router import ReplicaSet

        for r in old_set.replicas:
            if r is replica or r.state == QUARANTINED:
                continue
            r._primary = newdb
            r.resync(backoff=False)
            survivors.append(r)
        if survivors:
            newdb._replicas = ReplicaSet(
                newdb, replicas=survivors, auto_poll=old_set.auto_poll
            )
    _flight.record(
        "failover-promote",
        promoted=replica.name,
        directory=directory,
        last_lsn=last_lsn,
        survivors=[r.name for r in survivors],
    )
    return newdb
