"""The single-step reduction machine: Figures 2 and 4 in executable form.

A step is the paper's judgement::

    DE ⊢ EE, OE, q  ─ε→  EE′, OE′, q′

:class:`Machine.step` performs one reduction: decompose the query into
ℰ[redex] (:mod:`repro.semantics.contexts`), apply the unique matching
rule to the redex, and plug the result back ((Context) rule).  The
effect label ε implements the *instrumented* semantics of Figure 4; a
caller that ignores it has exactly Figure 2.

The only non-deterministic rule is (ND comp); the pick is delegated to
a :class:`~repro.semantics.strategy.Strategy`.
:meth:`Machine.possible_steps` instead returns *every* outcome — one
per choosable element — which is what the exhaustive explorer and the
metatheory theorems quantify over.

Rule-by-rule correspondence (names match Figure 4):

=================  ====================================================
(Definition)       ``d(v⃗) → q[x⃗ := v⃗]``, ε = ∅
(Extent)           ``e → v`` where EE(e) = (C, v), ε = R(C)
(Size)             ``size({v₀,…,vₖ}) → k``
(Union)/(…)        ``v₁ sop v₂ → v₃``
(Addition)/(…)     ``i₁ iop i₂ → i₃``
(Int eq)           ``i₁ = i₂ → b`` (extended to bool/string literals)
(Object eq)        ``o₁ == o₂ → b``   (both oids must be live in OE)
(Cond1)/(Cond2)    ``if b then q₁ else q₂ → q₁/q₂``
(Record)           ``⟨…⟩.lᵢ → vᵢ``
(Attribute)        ``o.aᵢ → vᵢ`` where OE(o) = ⟪C, …⟫
(Upcast)           ``(C′)o → o`` where class(o) ≤ C′
(New)              fresh o; OE′ = OE[o ↦ ⟪C, a⃗:v⃗⟫]; EE′ adds o to C's
                   extent; ε = A(C)
(Method)           ``o.m(v⃗) → v`` via the big-step ⇓ of
                   :mod:`repro.methods.interp`; in §5 mode the body may
                   change EE/OE and ε is the body's traced effect
(Empty comp)       ``{v | } → {v}``
(True comp)        ``{q | true, c⃗q} → {q | c⃗q}``
(False comp)       ``{q | false, c⃗q} → {}``
(Triv comp)        ``{q | x ← {}, c⃗q} → {}``
(ND comp)          ``{q | x ← {v₁,…,vₖ}, c⃗q} →
                   ({q | c⃗q}[x := vᵢ]) ∪ {q | x ← v_rest, c⃗q}``
(Set canon)        administrative: an all-value, non-canonical set
                   literal normalises to the canonical set value
                   (see :mod:`repro.semantics.contexts`)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.effects.algebra import EMPTY, Effect, add as add_effect, read as read_effect
from repro.errors import StuckError
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    Definition,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
)
from repro.lang.traversal import subst, subst_many
from repro.lang.values import (
    bag_except,
    bag_intersect,
    bag_remove_one,
    bag_union,
    collection_to_set,
    list_concat,
    make_bag_value,
    make_set_value,
    set_except,
    set_intersect,
    set_remove,
    set_union,
)
from repro.methods.ast import AccessMode
from repro.methods.interp import Fuel, MethodInterpreter
from repro.model.schema import Schema
from repro.obs import events as obs_events
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord, OidSupply
from repro.resilience.faults import maybe_fault
from repro.semantics.contexts import Decomposition, decompose
from repro.semantics.strategy import FIRST, Strategy
from repro.semantics.traverse import chase


@dataclass(frozen=True)
class Config:
    """One machine configuration (EE, OE, q) — hashable, explorable."""

    ee: ExtentEnv
    oe: ObjectEnv
    query: Query


@dataclass(frozen=True)
class StepResult:
    """One reduction: the new configuration, its effect ε, and the rule."""

    config: Config
    effect: Effect
    rule: str


class Machine:
    """The reduction relation for one database (schema + definitions).

    ``DE`` is the definition environment: name → :class:`Definition`
    (λ-notation in the paper).  The machine owns an oid supply and the
    method-invocation settings (access mode, fuel per invocation).
    """

    def __init__(
        self,
        schema: Schema,
        definitions: Mapping[str, Definition] | None = None,
        *,
        method_mode: AccessMode = AccessMode.READ_ONLY,
        method_fuel: int = 10_000,
        oid_supply: OidSupply | None = None,
    ):
        self.schema = schema
        self.defs: dict[str, Definition] = dict(definitions or {})
        self.method_mode = method_mode
        self.method_fuel = method_fuel
        self.supply = oid_supply or OidSupply()

    # ------------------------------------------------------------------
    def step(self, config: Config, strategy: Strategy = FIRST) -> StepResult:
        """One reduction step; raises :class:`StuckError` on stuck redexes.

        A value configuration raises StuckError too — callers check
        :func:`repro.lang.values.is_value` first (the evaluator does).
        """
        maybe_fault("machine.step")
        decomp = decompose(config.query)
        if decomp is None:
            raise StuckError("cannot step: the query is already a value")
        outcomes = self._apply(config, decomp, strategy=strategy)
        assert len(outcomes) == 1
        result = outcomes[0]
        if _OBS.enabled:
            _METRICS.counter("rule_fired_total", rule=result.rule).inc()
        if obs_events.active():
            obs_events.emit_step(
                result.rule, result.effect, decomp.depth, result.config.ee
            )
        return result

    def possible_steps(self, config: Config) -> list[StepResult]:
        """All single-step successors — one per (ND comp) choice.

        Deterministic redexes yield exactly one successor; an (ND comp)
        redex over a k-element set yields k.  Values yield the empty
        list.
        """
        decomp = decompose(config.query)
        if decomp is None:
            return []
        return self._apply(config, decomp, strategy=None)

    # ------------------------------------------------------------------
    def _apply(
        self,
        config: Config,
        decomp: Decomposition,
        *,
        strategy: Strategy | None,
    ) -> list[StepResult]:
        """Apply the rule matching ``decomp.redex``; plug via (Context).

        ``strategy=None`` requests *all* outcomes of (ND comp);
        otherwise the strategy picks one.
        """
        ee, oe = config.ee, config.oe
        r = decomp.redex
        plug = decomp.plug

        def out(
            q: Query,
            rule: str,
            effect: Effect = EMPTY,
            new_ee: ExtentEnv | None = None,
            new_oe: ObjectEnv | None = None,
        ) -> list[StepResult]:
            cfg = Config(new_ee or ee, new_oe or oe, plug(q))
            return [StepResult(cfg, effect, rule)]

        # (Definition)
        if isinstance(r, DefCall):
            d = self.defs.get(r.name)
            if d is None:
                raise StuckError(f"unknown definition {r.name!r}")
            if len(r.args) != len(d.params):
                raise StuckError(f"definition {r.name!r}: arity mismatch")
            body = subst_many(d.body, dict(zip(d.param_names(), r.args)))
            return out(body, "Definition")

        # (Extent)
        if isinstance(r, ExtentRef):
            maybe_fault("store.read")
            cname, members = ee.get(r.name)
            v = make_set_value(OidRef(o) for o in members)
            return out(v, "Extent", Effect.of(read_effect(cname)))

        # (Size) — with multiplicity for bags, length for lists
        if isinstance(r, Size):
            if not isinstance(r.arg, (SetLit, BagLit, ListLit)):
                raise StuckError(f"size of a non-collection {r.arg}")
            return out(IntLit(len(r.arg.items)), "Size")

        # (Sum) — total integer aggregate (extension)
        if isinstance(r, Sum):
            if not isinstance(r.arg, (SetLit, BagLit, ListLit)):
                raise StuckError(f"sum of a non-collection {r.arg}")
            total = 0
            for item in r.arg.items:
                if not isinstance(item, IntLit):
                    raise StuckError(f"sum over non-integers in {r}")
                total += item.value
            return out(IntLit(total), "Sum")

        # (ToSet) — the bag/list → set coercion (extension)
        if isinstance(r, ToSet):
            if not isinstance(r.arg, (SetLit, BagLit, ListLit)):
                raise StuckError(f"toset of a non-collection {r.arg}")
            return out(collection_to_set(r.arg), "ToSet")

        # (Union) and friends — dispatch on the collection kind
        if isinstance(r, SetOp):
            if isinstance(r.left, SetLit) and isinstance(r.right, SetLit):
                fn = {
                    SetOpKind.UNION: set_union,
                    SetOpKind.INTERSECT: set_intersect,
                    SetOpKind.EXCEPT: set_except,
                }[r.op]
                return out(fn(r.left, r.right), r.op.value.capitalize())
            if isinstance(r.left, BagLit) and isinstance(r.right, BagLit):
                fn = {
                    SetOpKind.UNION: bag_union,
                    SetOpKind.INTERSECT: bag_intersect,
                    SetOpKind.EXCEPT: bag_except,
                }[r.op]
                return out(fn(r.left, r.right), "Bag " + r.op.value)
            if isinstance(r.left, ListLit) and isinstance(r.right, ListLit):
                if r.op is not SetOpKind.UNION:
                    raise StuckError(f"lists support only union in {r}")
                return out(list_concat(r.left, r.right), "List concat")
            raise StuckError(f"set operator on mismatched collections in {r}")

        # (Addition) and friends
        if isinstance(r, IntOp):
            if not isinstance(r.left, IntLit) or not isinstance(r.right, IntLit):
                raise StuckError(f"integer operator on non-ints in {r}")
            fn = {
                IntOpKind.ADD: lambda a, b: a + b,
                IntOpKind.SUB: lambda a, b: a - b,
                IntOpKind.MUL: lambda a, b: a * b,
            }[r.op]
            return out(IntLit(fn(r.left.value, r.right.value)), "Addition")

        # (Int eq) — extended pointwise to bool/string literals
        if isinstance(r, PrimEq):
            lk, rk = type(r.left), type(r.right)
            if lk is not rk or lk not in (IntLit, BoolLit, StrLit):
                raise StuckError(f"'=' on non-primitive operands in {r}")
            return out(BoolLit(r.left == r.right), "Int eq")

        # (Object eq)
        if isinstance(r, ObjEq):
            if not isinstance(r.left, OidRef) or not isinstance(r.right, OidRef):
                raise StuckError(f"'==' on non-oids in {r}")
            # the paper's side condition: both objects are live
            oe.get(r.left.name)
            oe.get(r.right.name)
            return out(BoolLit(r.left.name == r.right.name), "Object eq")

        # comparisons (extension)
        if isinstance(r, Cmp):
            if not isinstance(r.left, IntLit) or not isinstance(r.right, IntLit):
                raise StuckError(f"comparison on non-ints in {r}")
            l, rr = r.left.value, r.right.value
            res = {
                CmpKind.LT: l < rr,
                CmpKind.LE: l <= rr,
                CmpKind.GT: l > rr,
                CmpKind.GE: l >= rr,
            }[r.op]
            return out(BoolLit(res), "Comparison")

        # (Cond1) / (Cond2)
        if isinstance(r, If):
            if not isinstance(r.cond, BoolLit):
                raise StuckError(f"conditional guard is not a boolean in {r}")
            return (
                out(r.then, "Cond1") if r.cond.value else out(r.els, "Cond2")
            )

        # (Record) / (Attribute)
        if isinstance(r, Field):
            if isinstance(r.target, RecordLit):
                v = r.target.field(r.name)
                if v is None:
                    raise StuckError(f"record has no label {r.name!r}")
                return out(v, "Record")
            if isinstance(r.target, OidRef):
                rec = oe.get(r.target.name)
                return out(rec.attr(r.name), "Attribute")
            raise StuckError(f"projection from non-record/object in {r}")

        # (Upcast)
        if isinstance(r, Cast):
            if not isinstance(r.arg, OidRef):
                raise StuckError(f"cast of a non-object in {r}")
            cname = oe.get(r.arg.name).cname
            if not self.schema.hierarchy.is_subclass(cname, r.cname):
                raise StuckError(
                    f"failed upcast: {cname} is not a subclass of {r.cname}"
                )
            return out(r.arg, "Upcast")

        # (New)
        if isinstance(r, New):
            oid = self.supply.fresh(r.cname, oe)
            rec = ObjectRecord(r.cname, r.fields)
            new_oe = oe.with_object(oid, rec)
            extent = self.schema.class_extent(r.cname)
            new_ee = ee.with_member(extent, oid)
            return out(
                OidRef(oid),
                "New",
                Effect.of(add_effect(r.cname)),
                new_ee=new_ee,
                new_oe=new_oe,
            )

        # (Method)
        if isinstance(r, MethodCall):
            if not isinstance(r.target, OidRef):
                raise StuckError(f"method call on a non-object in {r}")
            maybe_fault("method.call")
            interp = MethodInterpreter(
                self.schema,
                ee,
                oe,
                mode=self.method_mode,
                fuel=Fuel(self.method_fuel),
                oid_supply=self.supply,
            )
            outcome = interp.invoke(r.target.name, r.mname, r.args)
            return out(
                outcome.value,
                "Method",
                outcome.effect,
                new_ee=outcome.ee,
                new_oe=outcome.oe,
            )

        # (Traverse): the whole closure fires as one reduction — the
        # chase over a finite OE always terminates (semi-naive frontier
        # drains), so a single step keeps the machine's unique-
        # decomposition story intact while agreeing with the big-step
        # fixpoint on the value and the visited-class effect
        if isinstance(r, Traverse):
            if not isinstance(r.source, SetLit):
                raise StuckError(f"traverse over non-set in {r}")
            start = []
            for item in r.source.items:
                if not isinstance(item, OidRef):
                    raise StuckError(f"traverse over non-object in {r}")
                start.append(item.name)
            oids, classes = chase(oe, start, r.attr, r.depth)
            v = make_set_value(OidRef(o) for o in sorted(oids))
            eff = Effect.of(*(read_effect(c) for c in sorted(classes)))
            return out(v, "Traverse", eff)

        # comprehension rules
        if isinstance(r, Comp):
            if not r.qualifiers:
                # (Empty comp): {v | } → {v}
                return out(make_set_value([r.head]), "Empty comp")
            first, rest = r.qualifiers[0], r.qualifiers[1:]
            if isinstance(first, Pred):
                if not isinstance(first.cond, BoolLit):
                    raise StuckError(f"non-boolean predicate in {r}")
                if first.cond.value:
                    return out(Comp(r.head, rest), "True comp")
                return out(SetLit(()), "False comp")
            assert isinstance(first, Gen)
            src = first.source
            if not isinstance(src, (SetLit, BagLit, ListLit)):
                raise StuckError(f"generator over a non-collection in {r}")
            if not src.items:
                return out(SetLit(()), "Triv comp")
            if isinstance(src, ListLit):
                # (List comp): ordered, hence *deterministic* — take the
                # head (the §6.2/XQuery observation)
                v0 = src.items[0]
                rest_list = ListLit(src.items[1:])
                taken = subst(Comp(r.head, rest), first.var, v0)
                residual = Comp(r.head, (Gen(first.var, rest_list), *rest))
                split = SetOp(SetOpKind.UNION, taken, residual)
                return out(split, "List comp")
            # (ND comp) — sets and bags iterate in arbitrary order
            results: list[StepResult] = []
            if strategy is None:
                # one successor per *distinct* element (choosing another
                # occurrence of an equal bag element is the same step)
                indices = []
                seen = set()
                for i, v in enumerate(src.items):
                    if v not in seen:
                        seen.add(v)
                        indices.append(i)
            else:
                indices = [strategy.choose(src.items)]
            rule = "ND comp"
            for i in indices:
                vi = src.items[i]
                if isinstance(src, SetLit):
                    rest_coll: Query = set_remove(src, vi)
                else:
                    rest_coll = bag_remove_one(src, vi)
                taken = subst(Comp(r.head, rest), first.var, vi)
                residual = Comp(r.head, (Gen(first.var, rest_coll), *rest))
                split = SetOp(SetOpKind.UNION, taken, residual)
                cfg = Config(ee, oe, plug(split))
                results.append(StepResult(cfg, EMPTY, rule))
            return results

        # (Set canon) — administrative normalisation of value-shaped
        # sets and bags (lists need no canonical step)
        if isinstance(r, SetLit):
            return out(make_set_value(r.items), "Set canon")
        if isinstance(r, BagLit):
            return out(make_bag_value(r.items), "Bag canon")

        raise StuckError(f"no reduction rule applies to {r}")
