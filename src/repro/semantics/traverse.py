"""The runtime semantics of ``traverse``: a semi-naive reference chase.

One function, :func:`chase`, is shared by every engine — the big-step
evaluator, the reduction machine's (Traverse) rule, and the compiled
pipelines' YELLOW route all call it (the GREEN unrolled route and the
RED interval-index route are separate implementations certified equal
by the differential suite).  Sharing the frontier loop keeps the
engines' observable behaviour — the reachable oid set, the classes
visited (hence the instrumented effect), and the error/bounding
discipline — identical by construction.

Semantics, matching the typing/effect rules:

* the start set is included at depth 0; ``depth <= k`` admits oids at
  most ``k`` links away; ``depth=None`` chases to saturation;
* the chase is *semi-naive*: only the newly-discovered frontier is
  expanded each round, so a cyclic store converges once the frontier
  drains rather than looping (reachability over a finite OE is always
  finite);
* an object whose class lacks the attribute, or whose attribute holds
  a non-reference value, is a *leaf* — the chain stops there, it does
  not get stuck (a traversal is a reachability query, not a chain of
  projections);
* a reference to an oid absent from OE is a genuine error (dangling
  pointer) and raises through ``oe.get``;
* ``tick`` is invoked once per visited node so callers can charge
  fuel/budget — exhaustion mid-fixpoint raises out of the chase with
  the store untouched (the chase never writes).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.db.store import ObjectEnv, ObjectRecord
from repro.lang.ast import OidRef, Query


def _noop() -> None:
    return None


def attr_value(rec: ObjectRecord, attr: str) -> Query | None:
    """``rec``'s value for ``attr``, or None when undeclared (a leaf)."""
    for a, v in rec.attrs:
        if a == attr:
            return v
    return None


def chase(
    oe: ObjectEnv,
    start: Iterable[str],
    attr: str,
    depth: int | None,
    *,
    tick: Callable[[], None] = _noop,
) -> tuple[frozenset[str], frozenset[str]]:
    """``(reachable oids, classes visited)`` for the closure over ``attr``.

    ``classes visited`` drives the instrumented effect — one ``R(C)``
    per class whose objects the chase touched, always a subeffect of
    the static closure (Figure 3 discipline).
    """
    result: set[str] = set()
    classes: set[str] = set()
    frontier: list[str] = []
    for o in start:
        if o in result:
            continue
        tick()
        classes.add(oe.get(o).cname)
        result.add(o)
        frontier.append(o)

    hops = 0
    while frontier and (depth is None or hops < depth):
        hops += 1
        nxt: list[str] = []
        for o in frontier:
            tick()
            val = attr_value(oe.get(o), attr)
            if not isinstance(val, OidRef) or val.name in result:
                continue
            target = val.name
            classes.add(oe.get(target).cname)
            result.add(target)
            nxt.append(target)
        frontier = nxt
    return frozenset(result), frozenset(classes)
