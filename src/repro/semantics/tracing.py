"""Human-readable reduction traces.

Renders a →→ derivation the way the paper writes it::

    DE ⊢ EE, OE, q  ─ε→  EE′, OE′, q′        (Rule)

one line per step, with the extent environment summarised (sizes only —
full OE dumps drown the signal) and the effect label shown when non-∅.
Used by the ``.trace`` shell command, the examples, and anyone
debugging a reduction sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.effects.algebra import EMPTY, Effect
from repro.errors import FuelExhausted, StuckError
from repro.lang.ast import Query
from repro.db.store import ExtentEnv, ObjectEnv
from repro.obs import events as obs_events
from repro.semantics.evaluator import trace_steps
from repro.semantics.machine import Config, Machine
from repro.semantics.strategy import FIRST, Strategy


def _clip(text: str, max_width: int) -> str:
    return text if len(text) <= max_width else text[: max_width - 1] + "…"


@dataclass
class TraceLine:
    """One rendered step."""

    index: int
    rule: str
    effect: Effect
    query_after: Query
    extents_after: dict[str, int]

    def render(self, *, max_width: int = 100) -> str:
        eff = "" if self.effect == EMPTY else f"  ─{self.effect}→"
        q = _clip(str(self.query_after), max_width)
        return f"{self.index:>4}  ({self.rule}){eff}\n      {q}"


@dataclass
class Trace:
    """A complete (or truncated) derivation."""

    initial: Query
    lines: list[TraceLine] = field(default_factory=list)
    outcome: str = "value"  # value | diverged | stuck
    final: Query | None = None

    @property
    def steps(self) -> int:
        return len(self.lines)

    def effect(self) -> Effect:
        """The accumulated ε₁ ∪ … ∪ εₙ of the derivation."""
        out = EMPTY
        for line in self.lines:
            out |= line.effect
        return out

    def rules_used(self) -> dict[str, int]:
        """Histogram of rule applications — which Figure 2/4 rules fired."""
        hist: dict[str, int] = {}
        for line in self.lines:
            hist[line.rule] = hist.get(line.rule, 0) + 1
        return hist

    def render(self, *, max_lines: int = 50, max_width: int = 100) -> str:
        header = f"      {_clip(str(self.initial), max_width)}"
        body = [
            line.render(max_width=max_width)
            for line in self.lines[:max_lines]
        ]
        if len(self.lines) > max_lines:
            body.append(f"      … {len(self.lines) - max_lines} more steps …")
        tail = {
            "value": f"value after {self.steps} step(s); trace effect {self.effect()}",
            "diverged": f"no value after {self.steps} step(s) (diverged/fuel)",
            "stuck": f"STUCK after {self.steps} step(s)",
        }[self.outcome]
        return "\n".join([header, *body, tail])


def trace(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    query: Query,
    *,
    strategy: Strategy = FIRST,
    max_steps: int = 1_000,
) -> Trace:
    """Run and record a derivation under one strategy.

    Never raises for divergence or stuckness — both are recorded as the
    trace outcome, which is what a debugging tool wants.

    The per-step facts (rule, ε, extent sizes) come from the
    observability event stream: the run is wrapped in
    :func:`repro.obs.events.capture`, the machine emits one
    :class:`~repro.obs.events.ReductionEvent` per step, and the trace
    lines are rendered from those events — the same records ``.trace
    --json`` and the JSONL exporter see.
    """
    t = Trace(initial=query)
    config = Config(ee, oe, query)
    configs: list[Config] = []
    with obs_events.capture() as events:
        try:
            for step in trace_steps(machine, config, strategy, max_steps):
                configs.append(step.config)
            t.outcome = "value"
        except FuelExhausted:
            t.outcome = "diverged"
        except StuckError:
            t.outcome = "stuck"
    # The machine emits exactly one event per committed step, so the
    # event stream and the configuration history line up 1:1.
    for i, (ev, cfg) in enumerate(zip(events, configs), start=1):
        t.lines.append(
            TraceLine(
                index=i,
                rule=ev.rule,
                effect=ev.effect,
                query_after=cfg.query,
                extents_after=dict(ev.extents),
            )
        )
    if t.outcome == "value":
        t.final = configs[-1].query if configs else query
    return t
