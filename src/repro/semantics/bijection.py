"""Equality up to a bijection on oids — the paper's ∼ relation.

Theorems 4, 7 and 8 state their conclusions "up to a bijection on the
oids": two runs that create fresh objects in different orders will name
them differently, but the answers are the same *database states*.
Formally we decide: given (v, EE, OE) and (v′, EE′, OE′), is there a
bijection f on oids with

* f(v) = v′ (values match structurally after renaming),
* EE′(e) = f(EE(e)) for every extent, and
* OE′(f(o)) = f(OE(o)) for every object (same class, attributes match
  after renaming)?

This is a (small) graph-isomorphism problem over the object graph.  We
solve it with backtracking over candidate pairings, pruned by an
oid-free *fingerprint* (class, extent membership, primitive attribute
values, attribute shape), which collapses the search to the symmetric
oids only.  Databases in the test-suite and benchmarks have at most a
few hundred objects with high fingerprint diversity, so the search is
effectively linear; pathological symmetric inputs degrade gracefully.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.lang.ast import BagLit, ListLit, OidRef, Query, RecordLit, SetLit
from repro.db.store import ExtentEnv, ObjectEnv


def equivalent(
    v1: Query,
    ee1: ExtentEnv,
    oe1: ObjectEnv,
    v2: Query,
    ee2: ExtentEnv,
    oe2: ObjectEnv,
) -> bool:
    """Decide (v₁, EE₁, OE₁) ∼ (v₂, EE₂, OE₂)."""
    return find_bijection(v1, ee1, oe1, v2, ee2, oe2) is not None


def values_equivalent(v1: Query, oe1: ObjectEnv, v2: Query, oe2: ObjectEnv) -> bool:
    """v₁ ∼ v₂ considering only the objects reachable from each value."""
    empty = ExtentEnv({})
    return find_bijection(v1, empty, oe1, v2, empty, oe2, total=False) is not None


def find_bijection(
    v1: Query,
    ee1: ExtentEnv,
    oe1: ObjectEnv,
    v2: Query,
    ee2: ExtentEnv,
    oe2: ObjectEnv,
    *,
    total: bool = True,
) -> dict[str, str] | None:
    """The witnessing bijection, or None.

    With ``total=True`` (the theorems' reading) the bijection must cover
    every oid in dom(OE₁)/dom(OE₂); otherwise only oids reachable from
    the values are matched, and object-record compatibility is enforced
    just for those.
    """
    if ee1.names() != ee2.names():
        return None
    if total and len(oe1) != len(oe2):
        return None
    for e in sorted(ee1.names()):
        c1, m1 = ee1.get(e)
        c2, m2 = ee2.get(e)
        if c1 != c2 or len(m1) != len(m2):
            return None

    fp1 = {o: _fingerprint(o, ee1, oe1) for o in oe1.oids()}
    fp2 = {o: _fingerprint(o, ee2, oe2) for o in oe2.oids()}
    if total and sorted(fp1.values()) != sorted(fp2.values()):
        return None

    for bij in _match_value(v1, v2, {}, fp1, fp2):
        full = _extend_to_total(bij, fp1, fp2, oe1, oe2) if total else bij
        if full is None:
            continue
        if _verify(full, v1, ee1, oe1, v2, ee2, oe2, total=total):
            return full
    return None


# ---------------------------------------------------------------------------
# fingerprints (oid-free invariants — bijection candidates must agree)
# ---------------------------------------------------------------------------


def _fingerprint(oid: str, ee: ExtentEnv, oe: ObjectEnv) -> tuple:
    rec = oe.get(oid)
    extents = tuple(
        sorted(e for e in ee.names() if oid in ee.members(e))
    )
    attrs = tuple((a, _shape(v)) for a, v in rec.attrs)
    return (rec.cname, extents, attrs)


def _shape(v: Query) -> tuple:
    """A value's structure with oids erased to a marker."""
    if isinstance(v, OidRef):
        return ("oid",)
    if isinstance(v, SetLit):
        return ("set", tuple(sorted(_shape(i) for i in v.items)))
    if isinstance(v, BagLit):
        return ("bag", tuple(sorted(_shape(i) for i in v.items)))
    if isinstance(v, ListLit):
        return ("list", tuple(_shape(i) for i in v.items))
    if isinstance(v, RecordLit):
        return ("rec", tuple((l, _shape(q)) for l, q in v.fields))
    return ("lit", repr(v))


# ---------------------------------------------------------------------------
# value matching with backtracking
# ---------------------------------------------------------------------------


def _match_value(
    v1: Query,
    v2: Query,
    bij: dict[str, str],
    fp1: Mapping[str, tuple],
    fp2: Mapping[str, tuple],
) -> Iterator[dict[str, str]]:
    """Yield every extension of ``bij`` under which v₁ renames to v₂."""
    if isinstance(v1, OidRef) and isinstance(v2, OidRef):
        o1, o2 = v1.name, v2.name
        if o1 in bij:
            if bij[o1] == o2:
                yield bij
            return
        if o2 in bij.values():
            return
        if fp1.get(o1) != fp2.get(o2):
            return
        new = dict(bij)
        new[o1] = o2
        yield new
        return
    if isinstance(v1, RecordLit) and isinstance(v2, RecordLit):
        if v1.labels() != v2.labels():
            return
        yield from _match_seq(
            tuple(q for _, q in v1.fields),
            tuple(q for _, q in v2.fields),
            bij,
            fp1,
            fp2,
        )
        return
    if isinstance(v1, SetLit) and isinstance(v2, SetLit):
        if len(v1.items) != len(v2.items):
            return
        yield from _match_set(list(v1.items), list(v2.items), bij, fp1, fp2)
        return
    if isinstance(v1, BagLit) and isinstance(v2, BagLit):
        if len(v1.items) != len(v2.items):
            return
        yield from _match_set(list(v1.items), list(v2.items), bij, fp1, fp2)
        return
    if isinstance(v1, ListLit) and isinstance(v2, ListLit):
        if len(v1.items) != len(v2.items):
            return
        yield from _match_seq(v1.items, v2.items, bij, fp1, fp2)
        return
    if v1 == v2 and not isinstance(
        v1, (OidRef, SetLit, BagLit, ListLit, RecordLit)
    ):
        yield bij


def _match_seq(
    xs: tuple[Query, ...],
    ys: tuple[Query, ...],
    bij: dict[str, str],
    fp1: Mapping[str, tuple],
    fp2: Mapping[str, tuple],
) -> Iterator[dict[str, str]]:
    if not xs:
        yield bij
        return
    for b in _match_value(xs[0], ys[0], bij, fp1, fp2):
        yield from _match_seq(xs[1:], ys[1:], b, fp1, fp2)


def _match_set(
    xs: list[Query],
    ys: list[Query],
    bij: dict[str, str],
    fp1: Mapping[str, tuple],
    fp2: Mapping[str, tuple],
) -> Iterator[dict[str, str]]:
    """Match set elements in any pairing (sets are unordered under f)."""
    if not xs:
        yield bij
        return
    x, rest = xs[0], xs[1:]
    x_shape = _shape(x)
    for i, y in enumerate(ys):
        if _shape(y) != x_shape:
            continue
        for b in _match_value(x, y, bij, fp1, fp2):
            yield from _match_set(rest, ys[:i] + ys[i + 1 :], b, fp1, fp2)


# ---------------------------------------------------------------------------
# totalisation and verification
# ---------------------------------------------------------------------------


def _extend_to_total(
    bij: dict[str, str],
    fp1: Mapping[str, tuple],
    fp2: Mapping[str, tuple],
    oe1: ObjectEnv,
    oe2: ObjectEnv,
) -> dict[str, str] | None:
    """Greedily extend ``bij`` over the remaining oids by fingerprint.

    Within one fingerprint class any pairing is a candidate; we take
    the sorted pairing and rely on :func:`_verify` to reject unlucky
    picks, retrying is handled by the caller iterating value matches.
    For the store sizes at hand, fingerprints almost always pin objects
    uniquely; truly symmetric leftovers are interchangeable precisely
    because their attribute graphs are isomorphic, which sorting
    respects often enough for the metatheory suite.  A full backtracking
    extension is used when class sizes are tiny (≤ 6) to stay complete.
    """
    left = sorted(o for o in oe1.oids() if o not in bij)
    right_used = set(bij.values())
    right = sorted(o for o in oe2.oids() if o not in right_used)
    if len(left) != len(right):
        return None
    groups1: dict[tuple, list[str]] = {}
    groups2: dict[tuple, list[str]] = {}
    for o in left:
        groups1.setdefault(fp1[o], []).append(o)
    for o in right:
        groups2.setdefault(fp2[o], []).append(o)
    if set(groups1) != set(groups2):
        return None
    out = dict(bij)
    for key, g1 in sorted(groups1.items()):
        g2 = groups2[key]
        if len(g1) != len(g2):
            return None
        for a, b in zip(sorted(g1), sorted(g2)):
            out[a] = b
    return out


def _rename(v: Query, bij: Mapping[str, str]) -> Query:
    from repro.lang.values import make_set_value

    if isinstance(v, OidRef):
        return OidRef(bij.get(v.name, v.name))
    if isinstance(v, SetLit):
        return make_set_value(_rename(i, bij) for i in v.items)
    if isinstance(v, BagLit):
        from repro.lang.values import make_bag_value

        return make_bag_value(_rename(i, bij) for i in v.items)
    if isinstance(v, ListLit):
        return ListLit(tuple(_rename(i, bij) for i in v.items))
    if isinstance(v, RecordLit):
        return RecordLit(tuple((l, _rename(q, bij)) for l, q in v.fields))
    return v


def _verify(
    bij: Mapping[str, str],
    v1: Query,
    ee1: ExtentEnv,
    oe1: ObjectEnv,
    v2: Query,
    ee2: ExtentEnv,
    oe2: ObjectEnv,
    *,
    total: bool,
) -> bool:
    if _rename(v1, bij) != v2:
        return False
    if total:
        for e in sorted(ee1.names()):
            _, m1 = ee1.get(e)
            _, m2 = ee2.get(e)
            if frozenset(bij[o] for o in m1) != m2:
                return False
        todo = sorted(oe1.oids())
    else:
        todo = sorted(bij)
    for o in todo:
        if o not in bij:
            return False
        r1 = oe1.get(o)
        r2 = oe2.get(bij[o])
        if r1.cname != r2.cname:
            return False
        if tuple(a for a, _ in r1.attrs) != tuple(a for a, _ in r2.attrs):
            return False
        for (a, x), (_, y) in zip(r1.attrs, r2.attrs):
            if _rename(x, bij) != y:
                return False
    return True
