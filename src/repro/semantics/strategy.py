"""Choice strategies for the non-deterministic (ND comp) rule.

The paper's rule reads "for some i ∈ 1..k" — mathematically, an
arbitrary pick.  Executable semantics must *realise* the pick; a
:class:`Strategy` is that realisation, injected into the machine.  The
metatheory quantifies over all strategies (Theorems 4, 7, 8), which the
exhaustive explorer (:mod:`repro.semantics.explorer`) implements by
forking on every possible index.

Strategies see the candidate elements (a canonical, sorted tuple of
values) and return the index of the element the generator takes first.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import EvalError
from repro.lang.ast import Query


class Strategy:
    """Base class: picks which set element the (ND comp) rule takes."""

    def choose(self, items: Sequence[Query]) -> int:
        """Return an index into ``items`` (which is non-empty)."""
        raise NotImplementedError

    def fork(self) -> "Strategy":
        """An independent copy (explorer/fairness helpers)."""
        return self


class FirstStrategy(Strategy):
    """Always take the least element in the canonical value order.

    This is the deterministic "textbook" schedule; with it the machine
    is a function.
    """

    def choose(self, items: Sequence[Query]) -> int:
        return 0


class LastStrategy(Strategy):
    """Always take the greatest element — the mirror schedule.

    Comparing :class:`FirstStrategy` and :class:`LastStrategy` runs is
    the cheapest witness of observable non-determinism (it is exactly
    the "Jack first" vs "Jill first" contrast of the §1 example).
    """

    def choose(self, items: Sequence[Query]) -> int:
        return len(items) - 1


class RandomStrategy(Strategy):
    """A seeded uniformly-random schedule.

    Distinct seeds simulate distinct physical iteration orders; the
    metatheory harness samples several seeds per query.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, items: Sequence[Query]) -> int:
        return self._rng.randrange(len(items))

    def fork(self) -> "RandomStrategy":
        return RandomStrategy(self._rng.randrange(2**31))


class ScriptedStrategy(Strategy):
    """Replays a fixed list of indices — the explorer's oracle.

    Each (ND comp) step consumes one index from the script; running
    past the end raises, so scripts must be exactly as long as the
    number of non-deterministic choices on the path being replayed.
    """

    def __init__(self, script: Sequence[int]):
        self.script = list(script)
        self._pos = 0

    def choose(self, items: Sequence[Query]) -> int:
        if self._pos >= len(self.script):
            raise EvalError("scripted strategy exhausted")
        idx = self.script[self._pos]
        self._pos += 1
        if not 0 <= idx < len(items):
            raise EvalError(
                f"scripted choice {idx} out of range for {len(items)} items"
            )
        return idx

    def fork(self) -> "ScriptedStrategy":
        s = ScriptedStrategy(self.script)
        s._pos = self._pos
        return s


FIRST = FirstStrategy()
LAST = LastStrategy()
