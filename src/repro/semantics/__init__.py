"""Operational semantics: contexts, the machine, strategies, explorer, ∼."""

from repro.semantics.bijection import equivalent, find_bijection
from repro.semantics.contexts import Decomposition, decompose
from repro.semantics.evaluator import EvalResult, evaluate, trace_steps
from repro.semantics.explorer import Exploration, explore
from repro.semantics.machine import Config, Machine, StepResult
from repro.semantics.bigstep import BigStepEvaluator, evaluate_bigstep
from repro.semantics.tracing import Trace, trace
from repro.semantics.strategy import (
    FIRST, LAST, FirstStrategy, LastStrategy, RandomStrategy,
    ScriptedStrategy, Strategy,
)

__all__ = [
    "Config", "Decomposition", "EvalResult", "Exploration", "FIRST",
    "FirstStrategy", "LAST", "LastStrategy", "Machine", "RandomStrategy",
    "BigStepEvaluator", "ScriptedStrategy", "StepResult", "Strategy",
    "Trace", "decompose", "evaluate_bigstep",
    "equivalent", "trace",
    "evaluate", "explore", "find_bijection", "trace_steps",
]
