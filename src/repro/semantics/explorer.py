"""Exhaustive exploration of all reduction orders.

The theorems quantify over every derivation of →→; the explorer makes
that quantification executable.  Starting from a configuration it
forks on every (ND comp) choice (via
:meth:`~repro.semantics.machine.Machine.possible_steps`) and collects:

* ``outcomes`` — the distinct final configurations, deduplicated
  structurally and (optionally) up to the oid bijection ∼;
* ``diverged`` — whether some path exceeded the step budget (the §1
  ``loop`` example terminates on one schedule and not another: both
  facts are reported);
* ``stuck`` — stuck non-value configurations (none, for well-typed
  queries — Theorem 3);
* counters (paths, configurations) for the benchmarks.

The state space is exponential in the number of generator elements, so
the explorer is meant for the small, sharply-designed databases of the
examples and the metatheory harness; ``max_paths`` bounds the walk
defensively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceeded, EvalError, FuelExhausted, StuckError
from repro.lang.ast import Query
from repro.lang.values import is_value
from repro.db.store import ExtentEnv, ObjectEnv
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span
from repro.resilience.budget import Budget
from repro.semantics.bijection import equivalent
from repro.semantics.machine import Config, Machine


@dataclass(frozen=True)
class Outcome:
    """One distinct terminal result (value + final environments)."""

    value: Query
    ee: ExtentEnv
    oe: ObjectEnv


@dataclass
class Exploration:
    """Everything observed while enumerating reduction orders."""

    outcomes: list[Outcome] = field(default_factory=list)
    diverged: bool = False
    stuck: list[Config] = field(default_factory=list)
    paths: int = 0
    truncated: bool = False

    def distinct_values(self) -> list[Query]:
        """The distinct *answers* (ignoring final environments)."""
        seen: list[Query] = []
        for o in self.outcomes:
            if o.value not in seen:
                seen.append(o.value)
        return seen

    def deterministic(self, *, up_to_bijection: bool = True) -> bool:
        """Did every schedule agree (Theorem 7's conclusion)?

        With ``up_to_bijection`` the comparison is the paper's ∼;
        without it, strict structural equality of (v, EE, OE).
        A diverging or stuck path counts as disagreement.
        """
        if self.diverged or self.stuck or self.truncated:
            return False
        if len(self.outcomes) <= 1:
            return True
        if not up_to_bijection:
            return False  # outcomes list is already structurally deduped
        first = self.outcomes[0]
        return all(
            equivalent(first.value, first.ee, first.oe, o.value, o.ee, o.oe)
            for o in self.outcomes[1:]
        )

    def summary(self) -> str:
        """A human-readable report (the shell's ``.explore`` output).

        Truncated explorations carry an explicit warning: their results
        are a sample of the schedule space, not a proof over it.
        """
        lines = [
            f"schedules: {self.paths}"
            + (" (truncated)" if self.truncated else ""),
            "distinct answers: "
            + (", ".join(str(v) for v in self.distinct_values()) or "(none)"),
        ]
        if self.diverged:
            lines.append("some schedule diverges")
        if self.stuck:
            lines.append(f"stuck configurations: {len(self.stuck)}")
        if self.truncated:
            lines.append(
                "warning: exploration truncated (path/budget bound hit) — "
                "results are a sample, not a proof"
            )
        lines.append(f"deterministic up to ∼: {self.deterministic()}")
        return "\n".join(lines)


def explore(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    query: Query,
    *,
    max_steps: int = 10_000,
    max_paths: int = 100_000,
    budget: Budget | None = None,
) -> Exploration:
    """Enumerate all reduction orders of ``query`` (depth-first).

    ``max_steps`` bounds each *path*; exceeding it marks the exploration
    ``diverged`` (observable non-termination on that schedule).
    ``max_paths`` bounds the total number of explored paths; exceeding
    it sets ``truncated`` — results are then a sample, not a proof.
    A :class:`~repro.resilience.budget.Budget` bounds the whole walk
    (steps = configurations popped, plus the wall-clock deadline);
    exhaustion *degrades* to ``truncated`` rather than raising, so an
    interactive caller always gets the partial exploration back.
    """
    result = Exploration()
    seen_outcomes: set[tuple[Query, ExtentEnv, ObjectEnv]] = set()
    expansions = 0
    if budget is not None:
        budget.start()
    # stack of (config, depth)
    stack: list[tuple[Config, int]] = [(Config(ee, oe, query), 0)]
    with span("explore") as sp:
        while stack:
            config, depth = stack.pop()
            if result.paths >= max_paths:
                result.truncated = True
                break
            if budget is not None:
                try:
                    budget.charge_steps(1)
                except BudgetExceeded:
                    result.truncated = True
                    if _OBS.enabled:
                        _METRICS.counter("explore_budget_truncations_total").inc()
                    break
            if is_value(config.query):
                result.paths += 1
                key = (config.query, config.ee, config.oe)
                if key not in seen_outcomes:
                    seen_outcomes.add(key)
                    result.outcomes.append(
                        Outcome(config.query, config.ee, config.oe)
                    )
                continue
            if depth >= max_steps:
                result.paths += 1
                result.diverged = True
                continue
            try:
                successors = machine.possible_steps(config)
            except (StuckError, EvalError) as exc:
                if isinstance(exc, FuelExhausted):
                    result.paths += 1
                    result.diverged = True
                    continue
                result.paths += 1
                result.stuck.append(config)
                continue
            if not successors:  # non-value with no successors: stuck
                result.paths += 1
                result.stuck.append(config)
                continue
            expansions += 1
            if _OBS.enabled:
                _METRICS.histogram(
                    "explore_branching_factor", bounds=(1, 2, 4, 8, 16, 32)
                ).observe(len(successors))
            for s in successors:
                stack.append((s.config, depth + 1))
        if _OBS.enabled:
            _METRICS.counter("explore_total").inc()
            _METRICS.counter("explore_paths_total").inc(result.paths)
            _METRICS.counter("explore_expansions_total").inc(expansions)
            sp.set(
                paths=result.paths,
                expansions=expansions,
                outcomes=len(result.outcomes),
                truncated=result.truncated,
                diverged=result.diverged,
            )
    return result


def count_schedules(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    query: Query,
    *,
    max_steps: int = 10_000,
) -> int:
    """Number of complete reduction paths (distinct schedules)."""
    return explore(machine, ee, oe, query, max_steps=max_steps).paths
