"""A big-step ("normalization") presentation of the IOQL semantics.

§3.3: "One presentation of an operational semantics is based on
normalization ('big-step'), but we shall follow the approach of [25]
and use an operational semantics based on reduction ('single-step')."
The paper picks small-step because it makes proofs simpler and the
non-determinism explicit.  This module supplies the presentation the
paper *didn't* choose, for two reasons:

* **fidelity** — the two presentations must agree, and the test-suite
  checks they compute identical (EE′, OE′, v) under identical
  strategies (``FIRST``/``LAST``) and agreeing outcomes elsewhere;
* **engineering** — big-step evaluation avoids the re-decomposition and
  context-plugging the reduction machine pays per step, so it is the
  practical engine (the ``bench_b1_bigstep`` benchmark quantifies the
  gap).

Design notes:

* variables are handled with an *environment*, not substitution —
  semantically equivalent for the CBV language (arguments are values);
* the (ND comp) choice points are preserved: a generator over a
  set/bag value repeatedly asks the strategy to pick among the
  remaining elements, in exactly the order the reduction machine would
  ask, so a deterministic strategy drives both machines through the
  same schedule; lists iterate in order ((List comp));
* effects are traced per the instrumented semantics (Figure 4);
* fuel bounds the node count, making divergence an exception rather
  than a hang, as everywhere else in the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.effects.algebra import EMPTY, Effect, add as add_effect, read as read_effect
from repro.errors import FuelExhausted, StuckError
from repro.lang.ast import (
    BagLit,
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    Definition,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    OidRef,
    Pred,
    PrimEq,
    Qualifier,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Sum,
    ToSet,
    Traverse,
    Var,
)
from repro.lang.values import (
    bag_except,
    bag_intersect,
    bag_remove_one,
    bag_union,
    collection_to_set,
    list_concat,
    make_bag_value,
    make_set_value,
    set_except,
    set_intersect,
    set_remove,
    set_union,
)
from repro.methods.ast import AccessMode
from repro.methods.interp import Fuel, MethodInterpreter
from repro.model.schema import Schema
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord, OidSupply
from repro.resilience.budget import Budget
from repro.resilience.faults import maybe_fault
from repro.semantics.strategy import FIRST, Strategy
from repro.semantics.traverse import chase
from typing import Mapping


@dataclass
class BigStepResult:
    """The ⇓ outcome: final environments, value, accumulated effect."""

    ee: ExtentEnv
    oe: ObjectEnv
    value: Query
    effect: Effect

    def python(self):
        from repro.lang.values import from_value

        return from_value(self.value)


class BigStepEvaluator:
    """One evaluation run; mirrors :class:`~repro.semantics.machine.Machine`
    configuration (schema, DE, method mode/fuel, oid supply)."""

    def __init__(
        self,
        schema: Schema,
        definitions: Mapping[str, Definition] | None = None,
        *,
        method_mode: AccessMode = AccessMode.READ_ONLY,
        method_fuel: int = 10_000,
        oid_supply: OidSupply | None = None,
        fuel: int = 1_000_000,
    ):
        self.schema = schema
        self.defs: dict[str, Definition] = dict(definitions or {})
        self.method_mode = method_mode
        self.method_fuel = method_fuel
        self.supply = oid_supply or OidSupply()
        self._fuel = fuel
        self._resource_budget: Budget | None = None

    # -- public ----------------------------------------------------------
    def evaluate(
        self,
        ee: ExtentEnv,
        oe: ObjectEnv,
        q: Query,
        *,
        strategy: Strategy = FIRST,
        budget: Budget | None = None,
    ) -> BigStepResult:
        self.ee = ee
        self.oe = oe
        self.effect = EMPTY
        self.strategy = strategy
        self._budget = self._fuel
        self._resource_budget = budget.start() if budget is not None else None
        value = self._eval({}, q)
        return BigStepResult(self.ee, self.oe, value, self.effect)

    # -- machinery ---------------------------------------------------------
    def _tick(self) -> None:
        if self._budget <= 0:
            raise FuelExhausted("big-step fuel exhausted")
        self._budget -= 1
        maybe_fault("machine.step")
        if self._resource_budget is not None:
            self._resource_budget.charge_steps(1)

    def _charge_objects(self, n: int) -> None:
        if self._resource_budget is not None:
            self._resource_budget.charge_objects(n)

    def _eval(self, env: dict[str, Query], q: Query) -> Query:
        self._tick()
        if isinstance(q, (IntLit, BoolLit, StrLit, OidRef)):
            return q
        if isinstance(q, Var):
            try:
                return env[q.name]
            except KeyError:
                raise StuckError(f"unbound identifier {q.name!r}") from None
        if isinstance(q, ExtentRef):
            maybe_fault("store.read")
            cname, members = self.ee.get(q.name)
            self.effect |= Effect.of(read_effect(cname))
            return make_set_value(OidRef(o) for o in members)
        if isinstance(q, SetLit):
            return make_set_value(self._eval(env, i) for i in q.items)
        if isinstance(q, BagLit):
            return make_bag_value(self._eval(env, i) for i in q.items)
        if isinstance(q, ListLit):
            return ListLit(tuple(self._eval(env, i) for i in q.items))
        if isinstance(q, SetOp):
            l = self._eval(env, q.left)
            r = self._eval(env, q.right)
            if isinstance(l, SetLit) and isinstance(r, SetLit):
                fn = {
                    SetOpKind.UNION: set_union,
                    SetOpKind.INTERSECT: set_intersect,
                    SetOpKind.EXCEPT: set_except,
                }[q.op]
                return fn(l, r)
            if isinstance(l, BagLit) and isinstance(r, BagLit):
                fn = {
                    SetOpKind.UNION: bag_union,
                    SetOpKind.INTERSECT: bag_intersect,
                    SetOpKind.EXCEPT: bag_except,
                }[q.op]
                return fn(l, r)
            if isinstance(l, ListLit) and isinstance(r, ListLit):
                if q.op is not SetOpKind.UNION:
                    raise StuckError("lists support only union")
                return list_concat(l, r)
            raise StuckError(f"set operator on {l}, {r}")
        if isinstance(q, IntOp):
            l = self._int(env, q.left)
            r = self._int(env, q.right)
            fn = {
                IntOpKind.ADD: lambda a, b: a + b,
                IntOpKind.SUB: lambda a, b: a - b,
                IntOpKind.MUL: lambda a, b: a * b,
            }[q.op]
            return IntLit(fn(l, r))
        if isinstance(q, Cmp):
            l = self._int(env, q.left)
            r = self._int(env, q.right)
            return BoolLit(
                {
                    CmpKind.LT: l < r,
                    CmpKind.LE: l <= r,
                    CmpKind.GT: l > r,
                    CmpKind.GE: l >= r,
                }[q.op]
            )
        if isinstance(q, PrimEq):
            l = self._eval(env, q.left)
            r = self._eval(env, q.right)
            if type(l) is not type(r) or not isinstance(
                l, (IntLit, BoolLit, StrLit)
            ):
                raise StuckError(f"'=' on {l}, {r}")
            return BoolLit(l == r)
        if isinstance(q, ObjEq):
            l = self._eval(env, q.left)
            r = self._eval(env, q.right)
            if not isinstance(l, OidRef) or not isinstance(r, OidRef):
                raise StuckError("'==' on non-oids")
            self.oe.get(l.name)
            self.oe.get(r.name)
            return BoolLit(l.name == r.name)
        if isinstance(q, RecordLit):
            return RecordLit(
                tuple((lbl, self._eval(env, sub)) for lbl, sub in q.fields)
            )
        if isinstance(q, Field):
            target = self._eval(env, q.target)
            if isinstance(target, RecordLit):
                hit = target.field(q.name)
                if hit is None:
                    raise StuckError(f"record has no label {q.name!r}")
                return hit
            if isinstance(target, OidRef):
                return self.oe.get(target.name).attr(q.name)
            raise StuckError(f"projection from {target}")
        if isinstance(q, DefCall):
            d = self.defs.get(q.name)
            if d is None:
                raise StuckError(f"unknown definition {q.name!r}")
            args = [self._eval(env, a) for a in q.args]
            if len(args) != len(d.params):
                raise StuckError(f"definition {q.name!r}: arity mismatch")
            # definitions are closed except for their parameters
            call_env = dict(zip(d.param_names(), args))
            return self._eval(call_env, d.body)
        if isinstance(q, Size):
            v = self._eval(env, q.arg)
            if not isinstance(v, (SetLit, BagLit, ListLit)):
                raise StuckError(f"size of {v}")
            return IntLit(len(v.items))
        if isinstance(q, ToSet):
            v = self._eval(env, q.arg)
            if not isinstance(v, (SetLit, BagLit, ListLit)):
                raise StuckError(f"toset of {v}")
            return collection_to_set(v)
        if isinstance(q, Sum):
            v = self._eval(env, q.arg)
            if not isinstance(v, (SetLit, BagLit, ListLit)):
                raise StuckError(f"sum of {v}")
            total = 0
            for item in v.items:
                if not isinstance(item, IntLit):
                    raise StuckError("sum over non-integers")
                total += item.value
            return IntLit(total)
        if isinstance(q, Cast):
            v = self._eval(env, q.arg)
            if not isinstance(v, OidRef):
                raise StuckError("cast of a non-object")
            cname = self.oe.get(v.name).cname
            if not self.schema.hierarchy.is_subclass(cname, q.cname):
                raise StuckError(f"failed upcast to {q.cname}")
            return v
        if isinstance(q, MethodCall):
            target = self._eval(env, q.target)
            if not isinstance(target, OidRef):
                raise StuckError("method call on a non-object")
            args = tuple(self._eval(env, a) for a in q.args)
            maybe_fault("method.call")
            interp = MethodInterpreter(
                self.schema,
                self.ee,
                self.oe,
                mode=self.method_mode,
                fuel=Fuel(self.method_fuel),
                oid_supply=self.supply,
            )
            outcome = interp.invoke(target.name, q.mname, args)
            self._charge_objects(len(outcome.oe) - len(self.oe))
            self.ee, self.oe = outcome.ee, outcome.oe
            self.effect |= outcome.effect
            return outcome.value
        if isinstance(q, New):
            attrs = tuple((a, self._eval(env, sub)) for a, sub in q.fields)
            self._charge_objects(1)
            oid = self.supply.fresh(q.cname, self.oe)
            self.oe = self.oe.with_object(oid, ObjectRecord(q.cname, attrs))
            self.ee = self.ee.with_member(
                self.schema.class_extent(q.cname), oid
            )
            self.effect |= Effect.of(add_effect(q.cname))
            return OidRef(oid)
        if isinstance(q, If):
            cond = self._eval(env, q.cond)
            if not isinstance(cond, BoolLit):
                raise StuckError("non-boolean guard")
            return self._eval(env, q.then if cond.value else q.els)
        if isinstance(q, Traverse):
            source = self._eval(env, q.source)
            if not isinstance(source, SetLit):
                raise StuckError(f"traverse over non-set {source}")
            start: list[str] = []
            for item in source.items:
                if not isinstance(item, OidRef):
                    raise StuckError(f"traverse over non-object {item}")
                start.append(item.name)
            # the chase charges fuel per visited node, so an unbounded
            # fixpoint over a pathological store degrades loudly
            # (FuelExhausted) rather than silently stalling
            oids, classes = chase(
                self.oe, start, q.attr, q.depth, tick=self._tick
            )
            self.effect |= Effect.of(*(read_effect(c) for c in sorted(classes)))
            return make_set_value(OidRef(o) for o in sorted(oids))
        if isinstance(q, Comp):
            acc: list[Query] = []
            self._comp(env, q.head, q.qualifiers, acc)
            return make_set_value(acc)
        raise StuckError(f"unknown query node {type(q).__name__}")

    def _comp(
        self,
        env: dict[str, Query],
        head: Query,
        quals: tuple[Qualifier, ...],
        acc: list[Query],
    ) -> None:
        """Evaluate one comprehension frame, appending produced values.

        Follows the machine's schedule exactly: the first qualifier is
        discharged before the rest; a generator over a set/bag asks the
        strategy which remaining element goes first, recursing on the
        chosen element *before* the residual — the order the (ND comp)
        union imposes.
        """
        self._tick()
        if not quals:
            acc.append(self._eval(env, head))
            return
        first, rest = quals[0], quals[1:]
        if isinstance(first, Pred):
            cond = self._eval(env, first.cond)
            if not isinstance(cond, BoolLit):
                raise StuckError("non-boolean comprehension predicate")
            if cond.value:
                self._comp(env, head, rest, acc)
            return
        assert isinstance(first, Gen)
        source = self._eval(env, first.source)
        if isinstance(source, ListLit):
            for item in source.items:  # (List comp): in order
                inner = dict(env)
                inner[first.var] = item
                self._comp(inner, head, rest, acc)
            return
        if not isinstance(source, (SetLit, BagLit)):
            raise StuckError(f"generator over {source}")
        remaining: Query = source
        while remaining.items:
            idx = self.strategy.choose(remaining.items)
            item = remaining.items[idx]
            inner = dict(env)
            inner[first.var] = item
            self._comp(inner, head, rest, acc)
            if isinstance(remaining, SetLit):
                remaining = set_remove(remaining, item)
            else:
                remaining = bag_remove_one(remaining, item)

    def _int(self, env: dict[str, Query], q: Query) -> int:
        v = self._eval(env, q)
        if not isinstance(v, IntLit):
            raise StuckError(f"expected an int, got {v}")
        return v.value


def evaluate_bigstep(
    machine_like,
    ee: ExtentEnv,
    oe: ObjectEnv,
    q: Query,
    *,
    strategy: Strategy = FIRST,
    fuel: int = 1_000_000,
    budget: Budget | None = None,
) -> BigStepResult:
    """Big-step evaluation configured from an existing Machine/Database.

    ``machine_like`` is anything with ``schema``, ``defs``/``machine``,
    ``method_mode``, ``method_fuel``, ``supply`` — a
    :class:`~repro.semantics.machine.Machine` works directly.
    """
    machine = getattr(machine_like, "machine", machine_like)
    ev = BigStepEvaluator(
        machine.schema,
        machine.defs,
        method_mode=machine.method_mode,
        method_fuel=machine.method_fuel,
        oid_supply=machine.supply,
        fuel=fuel,
    )
    return ev.evaluate(ee, oe, q, strategy=strategy, budget=budget)
