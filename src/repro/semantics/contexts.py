"""Evaluation contexts and unique decomposition (§3.3, Figure 2).

An evaluation context ℰ is a query with one hole • marking the next
subexpression to evaluate.  The context grammar fixes the evaluation
*order*: operators evaluate left-to-right, arguments are call-by-value
left-to-right, set/record components left-to-right, the conditional
evaluates only its guard, and a comprehension evaluates its *first*
qualifier (the head only once all qualifiers are discharged).

The paper's "fundamental property of evaluation contexts" — any query
is either a value or decomposes *uniquely* into ℰ[redex] — is realised
by :func:`decompose`, which returns the redex together with a plug
function rebuilding ℰ[·].  Uniqueness holds by construction (the
recursion is deterministic); the property-based test-suite checks
plug(redex) == original on random queries.

Note the one administrative wrinkle: a set literal whose items are all
values but which is not in canonical (deduplicated, sorted) form is
treated as a redex — the machine normalises it in one ∅-effect step
((Set canon)).  The paper identifies such literals with the set value
directly; an executable semantics needs the identification to be a
step so that structural equality of values is honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lang.ast import (
    BagLit,
    Cast,
    Cmp,
    Comp,
    DefCall,
    Field,
    Gen,
    If,
    IntOp,
    ListLit,
    MethodCall,
    New,
    ObjEq,
    Pred,
    PrimEq,
    Query,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    Sum,
    ToSet,
    Traverse,
)
from repro.lang.values import is_value


@dataclass(frozen=True)
class Decomposition:
    """A query split as ℰ[redex]: ``plug(q) == ℰ[q]``.

    ``depth`` counts the context frames between the hole and the root
    (0 when ℰ = •) — the "redex depth" the observability layer reports
    per reduction event.
    """

    redex: Query
    plug: Callable[[Query], Query]
    depth: int = 0

    def is_toplevel(self) -> bool:
        """True when ℰ = • (the redex is the whole query)."""
        probe = self.plug(self.redex)
        return probe is self.redex or probe == self.redex


_IDENTITY: Callable[[Query], Query] = lambda q: q


def decompose(q: Query) -> Decomposition | None:
    """Split ``q`` into ℰ[redex], or return None when ``q`` is a value."""
    if is_value(q):
        return None
    return _decompose(q)


def _under(
    inner: Decomposition, rebuild: Callable[[Query], Query]
) -> Decomposition:
    plug_inner = inner.plug
    return Decomposition(
        inner.redex,
        lambda filled: rebuild(plug_inner(filled)),
        inner.depth + 1,
    )


def _decompose(q: Query) -> Decomposition:
    # -- binary operators: left then right ------------------------------
    if isinstance(q, (SetOp, IntOp, Cmp, PrimEq, ObjEq)):
        ctor = _binary_ctor(q)
        if not is_value(q.left):
            return _under(_decompose(q.left), lambda l: ctor(l, q.right))
        if not is_value(q.right):
            return _under(_decompose(q.right), lambda r: ctor(q.left, r))
        return Decomposition(q, _IDENTITY)

    # -- collection literals: items left-to-right, then canonicalisation -
    if isinstance(q, (SetLit, BagLit, ListLit)):
        ctor = type(q)
        for i, item in enumerate(q.items):
            if not is_value(item):
                before, after = q.items[:i], q.items[i + 1 :]
                return _under(
                    _decompose(item),
                    lambda v: ctor((*before, v, *after)),
                )
        # all items are values but the literal is not canonical
        # (unreachable for lists — an all-value list IS a value)
        return Decomposition(q, _IDENTITY)

    # -- record literal: fields left-to-right -----------------------------
    if isinstance(q, RecordLit):
        for i, (label, sub) in enumerate(q.fields):
            if not is_value(sub):
                before, after = q.fields[:i], q.fields[i + 1 :]
                return _under(
                    _decompose(sub),
                    lambda v: RecordLit((*before, (label, v), *after)),
                )
        raise AssertionError("all-value record is a value")  # pragma: no cover

    # -- projections / casts / size -----------------------------------------
    if isinstance(q, Field):
        if not is_value(q.target):
            return _under(_decompose(q.target), lambda t: Field(t, q.name))
        return Decomposition(q, _IDENTITY)
    if isinstance(q, Size):
        if not is_value(q.arg):
            return _under(_decompose(q.arg), lambda a: Size(a))
        return Decomposition(q, _IDENTITY)
    if isinstance(q, ToSet):
        if not is_value(q.arg):
            return _under(_decompose(q.arg), lambda a: ToSet(a))
        return Decomposition(q, _IDENTITY)
    if isinstance(q, Sum):
        if not is_value(q.arg):
            return _under(_decompose(q.arg), lambda a: Sum(a))
        return Decomposition(q, _IDENTITY)
    if isinstance(q, Cast):
        if not is_value(q.arg):
            return _under(_decompose(q.arg), lambda a: Cast(q.cname, a))
        return Decomposition(q, _IDENTITY)

    # -- calls: call-by-value, left-to-right ------------------------------------
    if isinstance(q, DefCall):
        for i, a in enumerate(q.args):
            if not is_value(a):
                before, after = q.args[:i], q.args[i + 1 :]
                return _under(
                    _decompose(a),
                    lambda v: DefCall(q.name, (*before, v, *after)),
                )
        return Decomposition(q, _IDENTITY)
    if isinstance(q, MethodCall):
        if not is_value(q.target):
            return _under(
                _decompose(q.target),
                lambda t: MethodCall(t, q.mname, q.args),
            )
        for i, a in enumerate(q.args):
            if not is_value(a):
                before, after = q.args[:i], q.args[i + 1 :]
                return _under(
                    _decompose(a),
                    lambda v: MethodCall(q.target, q.mname, (*before, v, *after)),
                )
        return Decomposition(q, _IDENTITY)
    if isinstance(q, New):
        for i, (label, sub) in enumerate(q.fields):
            if not is_value(sub):
                before, after = q.fields[:i], q.fields[i + 1 :]
                return _under(
                    _decompose(sub),
                    lambda v: New(q.cname, (*before, (label, v), *after)),
                )
        return Decomposition(q, _IDENTITY)

    # -- traverse: source first, then the closure fires as one redex ------------------
    if isinstance(q, Traverse):
        if not is_value(q.source):
            return _under(
                _decompose(q.source),
                lambda s: Traverse(q.var, s, q.attr, q.depth),
            )
        return Decomposition(q, _IDENTITY)

    # -- conditional: guard only ----------------------------------------------------
    if isinstance(q, If):
        if not is_value(q.cond):
            return _under(_decompose(q.cond), lambda c: If(c, q.then, q.els))
        return Decomposition(q, _IDENTITY)

    # -- comprehension: first qualifier; head when qualifiers are done ----------------
    if isinstance(q, Comp):
        if not q.qualifiers:
            if not is_value(q.head):
                return _under(_decompose(q.head), lambda h: Comp(h, ()))
            return Decomposition(q, _IDENTITY)  # (Empty comp)
        first, rest = q.qualifiers[0], q.qualifiers[1:]
        if isinstance(first, Pred):
            if not is_value(first.cond):
                return _under(
                    _decompose(first.cond),
                    lambda c: Comp(q.head, (Pred(c), *rest)),
                )
            return Decomposition(q, _IDENTITY)  # (True/False comp)
        assert isinstance(first, Gen)
        if not is_value(first.source):
            return _under(
                _decompose(first.source),
                lambda s: Comp(q.head, (Gen(first.var, s), *rest)),
            )
        return Decomposition(q, _IDENTITY)  # (Triv/ND comp)

    # Anything else that is not a value is a top-level redex candidate
    # (identifiers, extents, …) — the machine decides whether a rule
    # applies or the configuration is stuck.
    return Decomposition(q, _IDENTITY)


def _binary_ctor(q: Query) -> Callable[[Query, Query], Query]:
    if isinstance(q, SetOp):
        return lambda l, r: SetOp(q.op, l, r)
    if isinstance(q, IntOp):
        return lambda l, r: IntOp(q.op, l, r)
    if isinstance(q, Cmp):
        return lambda l, r: Cmp(q.op, l, r)
    if isinstance(q, PrimEq):
        return PrimEq
    assert isinstance(q, ObjEq)
    return ObjEq
