"""Driving the machine: →→ (the reflexive–transitive closure).

:func:`evaluate` iterates :meth:`Machine.step` until the query is a
value, the step budget runs out (:class:`FuelExhausted` — observable
non-termination), or no rule applies (:class:`StuckError` — ruled out
for well-typed queries by Theorem 3).

The result carries the accumulated effect trace ε₁ ∪ … ∪ εₙ of the
instrumented semantics (Figure 4, (Transitivity) rule), the step count
and the rule history — Theorem 5 is checked against exactly this trace
by the metatheory harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.effects.algebra import EMPTY, Effect
from repro.errors import FuelExhausted
from repro.lang.ast import Query
from repro.lang.values import is_value
from repro.db.store import ExtentEnv, ObjectEnv
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.resilience.budget import Budget
from repro.semantics.machine import Config, Machine, StepResult
from repro.semantics.strategy import FIRST, Strategy

DEFAULT_MAX_STEPS = 100_000


@dataclass(frozen=True)
class EvalResult:
    """A finished evaluation: final value, environments, and the trace."""

    value: Query
    ee: ExtentEnv
    oe: ObjectEnv
    steps: int
    effect: Effect
    rules: tuple[str, ...] = field(default=(), repr=False)
    #: which engine produced this result: "reduction" (the Figure 2/4
    #: machine), "bigstep", or "compiled" (the set-at-a-time plans of
    #: :mod:`repro.exec`); for compiled runs ``steps`` counts operator
    #: row events, not reduction steps
    engine: str = "reduction"

    @property
    def config(self) -> Config:
        return Config(self.ee, self.oe, self.value)

    def python(self) -> object:
        """The final value as a plain Python object (sets → frozensets,
        records → dicts, oids → their name strings)."""
        from repro.lang.values import from_value

        return from_value(self.value)


def trace_steps(
    machine: Machine,
    config: Config,
    strategy: Strategy = FIRST,
    max_steps: int = DEFAULT_MAX_STEPS,
    budget: "Budget | None" = None,
) -> Iterator[StepResult]:
    """Yield each reduction step from ``config`` until a value is reached.

    Raises :class:`FuelExhausted` when ``max_steps`` is hit — the
    executable rendering of a non-terminating query (§1's ``loop``).
    A :class:`~repro.resilience.budget.Budget` additionally enforces a
    wall-clock deadline and a new-object quota, raising the matching
    :class:`~repro.errors.BudgetExceeded` subclass.
    """
    steps = 0
    if budget is not None:
        budget.start()
    track_objects = budget is not None and budget.max_new_objects is not None
    while not is_value(config.query):
        if steps >= max_steps:
            if _OBS.enabled:
                _METRICS.counter("fuel_exhausted_total").inc()
            raise FuelExhausted(
                f"no value after {steps} steps (query diverges or the "
                f"budget is too small)",
                steps=steps,
            )
        if budget is not None:
            budget.charge_steps(1)
        result = machine.step(config, strategy)
        if track_objects:
            budget.charge_objects(len(result.config.oe) - len(config.oe))
        yield result
        config = result.config
        steps += 1


def evaluate(
    machine: Machine,
    ee: ExtentEnv,
    oe: ObjectEnv,
    query: Query,
    *,
    strategy: Strategy = FIRST,
    max_steps: int = DEFAULT_MAX_STEPS,
    keep_rules: bool = False,
    budget: "Budget | None" = None,
) -> EvalResult:
    """Run ``query`` to a value under one strategy.

    The returned :class:`EvalResult` contains the final (EE′, OE′, v)
    and the union of the per-step effects — i.e. one derivation of the
    instrumented →→ of Figure 4.
    """
    config = Config(ee, oe, query)
    effect = EMPTY
    rules: list[str] = []
    steps = 0
    for result in trace_steps(machine, config, strategy, max_steps, budget):
        effect |= result.effect
        if keep_rules:
            rules.append(result.rule)
        config = result.config
        steps += 1
    if _OBS.enabled:
        _METRICS.counter("eval_queries_total").inc()
        _METRICS.counter("eval_steps_total").inc(steps)
        _METRICS.histogram(
            "eval_steps", bounds=(1, 10, 100, 1_000, 10_000, 100_000)
        ).observe(steps)
    return EvalResult(
        value=config.query,
        ee=config.ee,
        oe=config.oe,
        steps=steps,
        effect=effect,
        rules=tuple(rules),
    )
