"""repro.resilience — budgets, transactions, retry and fault injection.

The effect system of §4 tells the runtime statically *what a query can
touch* (``R(C)``/``A(C)``) and the ⊢′ system tells it *when replaying
is safe* (Theorems 4/7).  This package turns those guarantees into a
recovery layer (see ``docs/ROBUSTNESS.md`` for the full mapping):

* :class:`~repro.resilience.budget.Budget` — step fuel, wall-clock
  deadline and new-object quota, enforced by every engine through the
  typed :class:`~repro.errors.BudgetExceeded` hierarchy;
* :class:`~repro.resilience.transactions.TransactionScope` /
  :class:`~repro.resilience.transactions.Transaction` — effect-guided
  snapshotting behind ``Database.run(..., atomic=True)`` and
  ``Database.transaction()``;
* :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  replay, gated on :func:`~repro.resilience.retry.replay_decision`;
* :class:`~repro.resilience.faults.FaultPlan` — seeded, deterministic
  fault/latency injection at named pipeline sites, so every recovery
  path above is exercised in tests and CI.
"""

from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    FuelExhausted,
    ObjectQuotaExceeded,
    TransientFault,
)
from repro.resilience.budget import Budget
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    SITES,
    active,
    inject,
    install,
    maybe_fault,
    uninstall,
)
from repro.resilience.retry import (
    ReplayDecision,
    RetryExhausted,
    RetryPolicy,
    replay_decision,
)
from repro.resilience.transactions import (
    Transaction,
    TransactionScope,
    scope_extents,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultRule",
    "FuelExhausted",
    "ObjectQuotaExceeded",
    "ReplayDecision",
    "RetryExhausted",
    "RetryPolicy",
    "SITES",
    "Transaction",
    "TransactionScope",
    "TransientFault",
    "active",
    "inject",
    "install",
    "maybe_fault",
    "replay_decision",
    "scope_extents",
    "uninstall",
]
