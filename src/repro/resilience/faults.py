"""Deterministic fault injection for the whole pipeline.

Resilience claims are worthless untested: this module lets tests and CI
*inject* failures at the exact seams a production deployment would see
them, deterministically, and prove every recovery path works.  A
:class:`FaultPlan` is a seeded set of :class:`FaultRule` triggers over
named **sites**:

========================  =============================================
``store.read``            the (Extent) rule reads an extent
``machine.step``          one reduction step (or big-step node visit)
``method.call``           the (Method) rule invokes an MJava body
``commit``                :meth:`Database.run` installs EE′/OE′
``persistence.save``      between temp-file write and ``os.replace``
``persistence.load``      before a dump file is parsed
``sched.admit``           :meth:`Database.run_many` admits one query
``wal.append``            before a WAL record's bytes are written
``wal.fsync``             after a record is written, before its fsync
``recovery.replay``       before each WAL record is replayed
``replica.ship``          a replica's shipper polls the primary's log
``replica.apply``         before a shipped record is applied to a replica
``failover.promote``      a replica is promoted to primary
``shard.install``         before one shard's partition install in a commit
``exec.shard``            a per-shard pipeline task starts on the pool
``exec.traverse``         a compiled ``traverse`` closure starts chasing
========================  =============================================

Sites guard themselves with one global-load-plus-``None``-check
(:func:`maybe_fault`), the same cost discipline as :mod:`repro.obs` —
an uninstrumented run pays nothing measurable.

A rule can raise a :class:`~repro.errors.TransientFault` ("transient"),
inject latency via the plan's injectable ``sleep`` ("latency"), or
both.  Firing is deterministic: hit counters plus a seeded RNG for
probabilistic rules, so a failing CI run replays exactly.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ReproError, TransientFault
from repro.obs import flight as _flight
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS

#: Every site the pipeline exposes, in pipeline order.
SITES: tuple[str, ...] = (
    "store.read",
    "machine.step",
    "method.call",
    "commit",
    "persistence.save",
    "persistence.load",
    "sched.admit",
    "wal.append",
    "wal.fsync",
    "recovery.replay",
    "replica.ship",
    "replica.apply",
    "failover.promote",
    "shard.install",
    "exec.shard",
    "exec.traverse",
)

KINDS: tuple[str, ...] = ("transient", "latency")


@dataclass(frozen=True)
class FaultRule:
    """One trigger: *where* (site), *when* (at/every/times/probability),
    *what* (kind + delay).

    ``at`` fires on the nth hit of the site (1-based); ``every`` fires
    on every kth hit; ``probability`` fires with the given chance per
    hit (seeded — deterministic per plan).  ``times`` caps total
    firings (``None`` = unlimited).  Conditions compose conjunctively.
    """

    site: str
    at: int | None = None
    every: int | None = None
    probability: float | None = None
    times: int | None = None
    kind: str = "transient"
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ReproError(
                f"unknown fault site {self.site!r} (known: {', '.join(SITES)})"
            )
        if self.kind not in KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(KINDS)})"
            )
        if self.at is not None and self.at < 1:
            raise ReproError("fault rule 'at' is 1-based; must be >= 1")
        if self.every is not None and self.every < 1:
            raise ReproError("fault rule 'every' must be >= 1")
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise ReproError("fault rule probability must be in [0, 1]")
        if self.delay < 0:
            raise ReproError("fault rule delay must be >= 0")

    def describe(self) -> str:
        conds = []
        if self.at is not None:
            conds.append(f"at={self.at}")
        if self.every is not None:
            conds.append(f"every={self.every}")
        if self.probability is not None:
            conds.append(f"p={self.probability:g}")
        if self.times is not None:
            conds.append(f"times={self.times}")
        what = self.kind + (f"+{self.delay:g}s" if self.delay else "")
        return f"{self.site} [{', '.join(conds) or 'always'}] -> {what}"


def _validated_rule(rule: FaultRule) -> FaultRule:
    """Reject anything that is not a known-site :class:`FaultRule`.

    ``FaultRule.__post_init__`` already validates genuine rules, but a
    plan built from duck-typed objects (or a rule whose fields were
    mutated via ``object.__setattr__``) would otherwise sit silently in
    the plan and never fire — a typo'd site must fail at construction,
    not during the experiment it was supposed to run.
    """
    if not isinstance(rule, FaultRule):
        raise ReproError(
            f"fault plans take FaultRule instances, got {type(rule).__name__}"
        )
    if rule.site not in SITES:
        raise ReproError(
            f"unknown fault site {rule.site!r} (known: {', '.join(SITES)})"
        )
    if rule.kind not in KINDS:
        raise ReproError(
            f"unknown fault kind {rule.kind!r} (known: {', '.join(KINDS)})"
        )
    return rule


class FaultPlan:
    """A seeded, deterministic set of fault rules plus firing state.

    Install with :func:`install`/:func:`uninstall` or scoped::

        with inject(FaultPlan([FaultRule("commit", at=1)], seed=7)):
            db.run(q, atomic=True)

    ``sleep`` is injectable so latency rules are instantaneous in tests.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        *,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.rules: list[FaultRule] = [
            _validated_rule(rule) for rule in rules
        ]
        self.seed = seed
        self.sleep = sleep
        self.rng = random.Random(seed)
        self.hits: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self._rule_firings: dict[int, int] = {}
        # scheduled workers hit one shared plan concurrently; counters
        # and the seeded RNG must stay consistent under that interleaving
        self._lock = threading.Lock()

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(_validated_rule(rule))
        return self

    # -- firing ----------------------------------------------------------
    def hit(self, site: str) -> None:
        """Record one hit of ``site``; fire any matching rule.

        The hit/firing bookkeeping runs under the plan's lock; the
        *consequences* (sleeping, raising) happen outside it so a
        latency rule never stalls other threads' fault decisions.
        """
        to_sleep = 0.0
        to_raise: TransientFault | None = None
        fired: list[tuple[str, int]] = []
        with self._lock:
            count = self.hits.get(site, 0) + 1
            self.hits[site] = count
            for idx, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if not self._matches(idx, rule, count):
                    continue
                self._rule_firings[idx] = self._rule_firings.get(idx, 0) + 1
                self.fired[site] = self.fired.get(site, 0) + 1
                fired.append((rule.kind, count))
                if _OBS.enabled:
                    _METRICS.counter(
                        "faults_injected_total", site=site, kind=rule.kind
                    ).inc()
                if rule.delay:
                    to_sleep += rule.delay
                if rule.kind == "transient" and to_raise is None:
                    to_raise = TransientFault(
                        f"injected fault at {site} (hit #{count})", site=site
                    )
        # flight-record outside the plan lock: the ring has its own
        for kind, hit_no in fired:
            _flight.record("fault", site=site, kind=kind, hit=hit_no)
        if to_sleep:
            self.sleep(to_sleep)
        if to_raise is not None:
            raise to_raise

    def _matches(self, idx: int, rule: FaultRule, count: int) -> bool:
        if rule.times is not None and self._rule_firings.get(idx, 0) >= rule.times:
            return False
        if rule.at is not None and count != rule.at:
            return False
        if rule.every is not None and count % rule.every != 0:
            return False
        if rule.probability is not None and self.rng.random() >= rule.probability:
            return False
        return True

    # -- reporting -------------------------------------------------------
    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}):"]
        for rule in self.rules:
            lines.append(f"  {rule.describe()}")
        if not self.rules:
            lines.append("  (no rules)")
        total_hits = sum(self.hits.values())
        total_fired = sum(self.fired.values())
        lines.append(f"hits: {total_hits}, fired: {total_fired}")
        for site in SITES:
            if site in self.hits:
                lines.append(
                    f"  {site}: {self.hits[site]} hit(s), "
                    f"{self.fired.get(site, 0)} fired"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The active plan (process-local, same discipline as repro.obs._state)
# ---------------------------------------------------------------------------


class _FaultState:
    __slots__ = ("plan",)

    def __init__(self) -> None:
        self.plan: FaultPlan | None = None


STATE = _FaultState()


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active fault plan."""
    STATE.plan = plan


def uninstall() -> None:
    """Deactivate fault injection."""
    STATE.plan = None


def active() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return STATE.plan


@dataclass
class _Injection:
    """Context manager returned by :func:`inject`; restores the prior plan."""

    plan: FaultPlan
    _prev: FaultPlan | None = field(default=None, repr=False)

    def __enter__(self) -> FaultPlan:
        self._prev = STATE.plan
        STATE.plan = self.plan
        return self.plan

    def __exit__(self, *exc: object) -> bool:
        STATE.plan = self._prev
        return False


def inject(plan: FaultPlan) -> _Injection:
    """Scoped installation: ``with inject(plan): ...``."""
    return _Injection(plan)


def maybe_fault(site: str) -> None:
    """The hook every site calls; near-free when no plan is installed."""
    plan = STATE.plan
    if plan is not None:
        plan.hit(site)
