"""Effect-guided retry with exponential backoff.

A failed query may be replayed **only when the static analyses prove the
replay is indistinguishable from a first run**:

* the ⊢′ determinism system must accept the query (Theorems 4/7: every
  schedule of a ⊢′-accepted query produces the same answer up to the
  oid bijection ∼ — so the retry cannot "answer differently");
* if the query *writes* (``A``/``U`` atoms in its Figure 3 effect), the
  failed attempt must have been rolled back first (``atomic=True``),
  otherwise the partial extent growth of the failed attempt would be
  observed twice.

Queries that fail either test are **not** retried — the caller gets the
original failure after rollback, which is the honest outcome.

The backoff is standard exponential-with-jitter; ``sleep`` and ``rng``
are injectable so tests run instantly and deterministically.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError, TransientFault


@dataclass(frozen=True)
class ReplayDecision:
    """Whether a failed query may be replayed, and the static reason."""

    safe: bool
    reason: str

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.safe


def replay_decision(db, query, *, rolled_back: bool = False) -> ReplayDecision:
    """Decide replay safety from the ⊢′ system and the inferred effect.

    ``db`` is a :class:`repro.db.Database`; ``query`` is source text or
    a parsed query.  ``rolled_back`` says the failed attempt's state
    changes were already undone (a transaction scope was restored).
    """
    witnesses = db.determinism_witnesses(query)
    if witnesses:
        return ReplayDecision(
            False,
            "⊢′ rejects the query ("
            + "; ".join(str(w) for w in witnesses)
            + ") — a replay could observe a different schedule",
        )
    effect = db.effect_of(query)
    if effect.writes() and not rolled_back:
        return ReplayDecision(
            False,
            f"query writes {sorted(effect.writes())} and the failed "
            "attempt was not rolled back — a replay would double-apply",
        )
    if effect.writes():
        return ReplayDecision(
            True,
            "⊢′ accepts and the failed attempt was rolled back "
            "(Theorem 7: any schedule of the replay agrees up to ∼)",
        )
    return ReplayDecision(
        True, "⊢′ accepts and the query is read-only (Theorem 4)"
    )


@dataclass
class RetryPolicy:
    """How many times to replay, and how long to wait between attempts.

    Delay for attempt *n* (1-based count of *failures so far*) is::

        min(max_delay, base_delay * 2**(n-1)) * (1 + jitter * U[0,1))

    ``retry_on`` lists the exception types considered transient; by
    default only injected/infrastructure :class:`TransientFault` — a
    type error or a ⊢-rejection is deterministic and will fail again.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 1.0
    jitter: float = 0.1
    retry_on: tuple[type[BaseException], ...] = (TransientFault,)
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")

    @staticmethod
    def seeded(seed: int, **kw) -> "RetryPolicy":
        """A policy whose jitter stream is reproducible from ``seed``."""
        return RetryPolicy(rng=random.Random(seed), **kw)

    def retryable(self, exc: BaseException) -> bool:
        """Is this failure worth replaying at all?"""
        return isinstance(exc, self.retry_on)

    def delay_for(self, failures: int) -> float:
        """Backoff after the ``failures``-th failure (1-based)."""
        if failures < 1:
            raise ValueError("failures is 1-based")
        base = min(self.max_delay, self.base_delay * 2 ** (failures - 1))
        return base * (1.0 + self.jitter * self.rng.random())

    def backoff(self, failures: int) -> float:
        """Sleep for :meth:`delay_for` and return the delay slept."""
        delay = self.delay_for(failures)
        if delay > 0:
            self.sleep(delay)
        return delay


class RetryExhausted(ReproError):
    """Every permitted attempt failed; carries the last failure.

    Deliberately **not** a :class:`TransientFault`: exhaustion is a
    *terminal* verdict on the whole replay loop.  If it were itself
    transient, a nested/outer :class:`RetryPolicy` would treat "my
    inner retries ran out" as one more retryable fault and multiply the
    attempt count (inner × outer) against a persistently failing
    backend.  ``site`` still carries the last failure's site so fault
    dashboards can aggregate by origin.
    """

    def __init__(self, attempts: int, last: BaseException):
        self.attempts = attempts
        self.last = last
        self.site = getattr(last, "site", "")
        super().__init__(
            f"query still failing after {attempts} attempt(s): {last}"
        )
