"""Resource budgets for query evaluation.

The paper bounds divergence with step fuel alone (§1's ``loop`` becomes
:class:`~repro.errors.FuelExhausted`).  A production store needs two
more bounds: a wall-clock *deadline* (a slow query must not hold a
session hostage) and a *new-object quota* (the (New) rule grows extents;
an unbounded query must not exhaust the store).  :class:`Budget` carries
all three and is threaded through every engine:

* :func:`repro.semantics.evaluator.evaluate` charges one step per
  reduction;
* :class:`repro.semantics.bigstep.BigStepEvaluator` charges one step per
  node visit;
* :func:`repro.semantics.explorer.explore` charges per expansion and
  *degrades gracefully* — a spent budget marks the exploration
  ``truncated`` instead of raising.

Every violation raises a typed subclass of
:class:`~repro.errors.BudgetExceeded`, so one ``except`` bounds any
resource.  The clock is injectable for deterministic tests.

A budget is *stateful* (it accumulates charges); use :meth:`fresh` to
reuse the same limits across statements, e.g. one budget per shell
session applied anew to each query.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import (
    DeadlineExceeded,
    FuelExhausted,
    ObjectQuotaExceeded,
)

#: How many step charges between wall-clock reads; reading the clock on
#: every reduction would dominate the per-step cost.
DEADLINE_CHECK_INTERVAL = 64


class Budget:
    """Step fuel + wall-clock deadline + new-object quota, enforced.

    Any limit may be ``None`` (unbounded).  ``deadline`` is in seconds
    from :meth:`start` (engines call it lazily on the first charge).
    """

    __slots__ = (
        "max_steps",
        "deadline",
        "max_new_objects",
        "steps_used",
        "objects_created",
        "_clock",
        "_started_at",
        "_check_interval",
    )

    def __init__(
        self,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        max_new_objects: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        check_interval: int = DEADLINE_CHECK_INTERVAL,
    ):
        for name, limit in (
            ("max_steps", max_steps),
            ("deadline", deadline),
            ("max_new_objects", max_new_objects),
        ):
            if limit is not None and limit < 0:
                raise ValueError(f"budget {name} must be >= 0, got {limit}")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.max_steps = max_steps
        self.deadline = deadline
        self.max_new_objects = max_new_objects
        self.steps_used = 0
        self.objects_created = 0
        self._clock = clock
        self._started_at: float | None = None
        self._check_interval = check_interval

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "Budget":
        """Begin the deadline clock (idempotent); returns ``self``."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    def fresh(self) -> "Budget":
        """A new budget with the same limits and zero consumption."""
        return Budget(
            max_steps=self.max_steps,
            deadline=self.deadline,
            max_new_objects=self.max_new_objects,
            clock=self._clock,
            check_interval=self._check_interval,
        )

    # -- charging --------------------------------------------------------
    def charge_steps(self, n: int = 1) -> None:
        """Consume ``n`` steps; check the deadline every few charges."""
        self.steps_used += n
        if self.max_steps is not None and self.steps_used > self.max_steps:
            raise FuelExhausted(
                f"step budget of {self.max_steps} exhausted",
                steps=self.steps_used,
            )
        if (
            self.deadline is not None
            and self.steps_used % self._check_interval == 0
        ):
            self.check_deadline()

    def charge_objects(self, n: int) -> None:
        """Consume ``n`` units of the new-object quota."""
        if n <= 0:
            return
        self.objects_created += n
        if (
            self.max_new_objects is not None
            and self.objects_created > self.max_new_objects
        ):
            raise ObjectQuotaExceeded(
                f"new-object quota of {self.max_new_objects} exceeded",
                created=self.objects_created,
            )

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceeded` if the wall clock ran out."""
        if self.deadline is None:
            return
        elapsed = self.elapsed()
        if elapsed > self.deadline:
            raise DeadlineExceeded(
                f"deadline of {self.deadline:g}s exceeded "
                f"after {elapsed:.3f}s",
                elapsed=elapsed,
            )

    # -- accounting ------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_steps(self) -> int | None:
        """Steps left, or ``None`` when unbounded (never negative)."""
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self.steps_used)

    def remaining_objects(self) -> int | None:
        """Quota left, or ``None`` when unbounded (never negative)."""
        if self.max_new_objects is None:
            return None
        return max(0, self.max_new_objects - self.objects_created)

    def is_unlimited(self) -> bool:
        """True when no limit is set — charging can never raise."""
        return (
            self.max_steps is None
            and self.deadline is None
            and self.max_new_objects is None
        )

    def describe(self) -> str:
        """One line for the shell's ``.budget`` command."""
        parts = []
        if self.max_steps is not None:
            parts.append(f"steps {self.steps_used}/{self.max_steps}")
        if self.deadline is not None:
            parts.append(f"deadline {self.deadline:g}s")
        if self.max_new_objects is not None:
            parts.append(
                f"objects {self.objects_created}/{self.max_new_objects}"
            )
        return ", ".join(parts) if parts else "unlimited"

    def __repr__(self) -> str:
        return f"Budget({self.describe()})"
