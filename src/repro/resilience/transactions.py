"""Effect-guided transactions over the EE/OE environments.

The Figure 3 effect of a query is a *static upper bound* on what it can
touch at run time (Theorem 5: every dynamic trace is a subeffect of the
static effect).  That bound is exactly what a transaction needs: to
make a statement atomic it suffices to snapshot **only the extents of
the classes in R(C) ∪ A(C) (∪ U(C) in §5 mode)** and, on failure,
restore those — everything else is untouched by construction.

Two grains are provided:

* :class:`TransactionScope` — the per-statement scope behind
  ``Database.run(..., atomic=True)``: capture before evaluation,
  :meth:`rollback` on any failure;
* :class:`Transaction` — the multi-statement context manager behind
  ``Database.transaction()``: statements commit as they run, the
  accumulated *dynamic* effect tracks which extents were really
  touched, and an exception (or explicit :meth:`rollback`) restores the
  session to the entry state — all-or-nothing shell sessions.

Rollback restores scoped extent memberships, drops objects created in
scoped extents, restores the prior records of surviving scoped objects
(undoing §5 in-place updates) and removes definitions added inside the
transaction.  The oid supply is deliberately *not* rewound: reusing a
burnt oid could collide with an object created outside the scope, and
fresher-than-necessary oids are absorbed by the paper's bijection ∼.

Every rollback runs under an obs span and bumps
``rollbacks_total{scope=…}``; transactions bump
``transactions_total{outcome=committed|rolled_back}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.effects.algebra import EMPTY, Effect
from repro.errors import ReproError
from repro.obs._state import STATE as _OBS
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.spans import span as _span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database
    from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord


def scope_extents(db: "Database", effect: Effect) -> tuple[str, ...]:
    """The extents a query with this effect could read or grow.

    One extent per class named by an R/A/U atom (the paper attaches one
    extent per class; (New) inserts only into the extent of the created
    class).  Classes without a declared extent contribute nothing.
    """
    names = set()
    for cname in sorted(effect.reads() | effect.adds() | effect.updates()):
        try:
            names.add(db.schema.class_extent(cname))
        except Exception:
            continue  # abstract/extent-less class: nothing to snapshot
    return tuple(sorted(names))


@dataclass(frozen=True)
class TransactionScope:
    """What one atomic statement may touch, and its pre-state.

    ``prior_members`` maps each scoped extent to its membership at
    capture time; ``prior_records`` holds the then-current record of
    every object in those extents (to undo §5 updates).
    """

    extents: tuple[str, ...]
    prior_members: tuple[tuple[str, frozenset[str]], ...]
    prior_records: tuple[tuple[str, ObjectRecord], ...]

    @staticmethod
    def capture(db: "Database", effect: Effect) -> "TransactionScope":
        """Snapshot the parts of EE/OE the effect says are at risk."""
        extents = scope_extents(db, effect)
        members = tuple((e, db.ee.members(e)) for e in extents)
        records = tuple(
            (oid, db.oe.get(oid))
            for _, oids in members
            for oid in sorted(oids)
        )
        return TransactionScope(extents, members, records)

    def rollback(self, db: "Database") -> None:
        """Restore the scoped extents/objects; leave the rest alone."""
        with _span("rollback", scope="query", extents=len(self.extents)):
            with db._commit_lock:
                ee, oe = db.ee, db.oe
                dropped = 0
                for extent, prior in self.prior_members:
                    current = ee.members(extent)
                    added = current - prior
                    if added:
                        oe = oe.without_objects(added)
                        dropped += len(added)
                    if current != prior:
                        ee = ee.with_members(extent, prior)
                for oid, rec in self.prior_records:
                    if oe.get(oid) is not rec:
                        oe = oe.with_object(oid, rec)
                changed = ee is not db.ee or oe is not db.oe
                # under the commit lock no writer interleaves; concurrent
                # *disjoint* readers are safe in either order because the
                # dropped oids were created by the failed attempt and
                # cannot be referenced from outside its effect scope
                db.ee = ee
                db.oe = oe
                if changed:
                    # a rollback has no static effect bounding what it
                    # undid: journal the whole state (see db.wal)
                    db._wal_log_unattributed("rollback(query)")
            if _OBS.enabled:
                _METRICS.counter("rollbacks_total", scope="query").inc()
                if dropped:
                    _METRICS.counter("rolled_back_objects_total").inc(dropped)


class Transaction:
    """All-or-nothing grouping of several statements on one database.

    Usage::

        with db.transaction():
            db.run('new Person(name: "Ada", age: 36)')
            db.run(failing_statement)      # raises
        # the Person above is gone again

    Statements commit as they execute; the transaction accumulates
    their *dynamic* effects (plus ``A`` atoms for direct ``insert``
    calls) and a rollback restores exactly the scoped state from the
    entry snapshot.  Definitions added inside are removed again.
    Transactions do not nest.
    """

    def __init__(self, db: "Database"):
        self._db = db
        self.effect: Effect = EMPTY
        self._active = False
        self._entry_ee: ExtentEnv | None = None
        self._entry_oe: ObjectEnv | None = None
        self._entry_defs: dict | None = None
        self._entry_def_types: dict | None = None

    # -- lifecycle -------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def __enter__(self) -> "Transaction":
        db = self._db
        if db._active_txn is not None:
            raise ReproError("transactions do not nest")
        self._entry_ee = db.ee
        self._entry_oe = db.oe
        self._entry_defs = dict(db._definitions)
        self._entry_def_types = dict(db._def_types)
        self._active = True
        db._active_txn = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:  # already resolved explicitly
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False  # never swallow the exception

    def record(self, effect: Effect) -> None:
        """Accumulate one statement's dynamic effect (Figure 4 trace)."""
        self.effect |= effect

    # -- resolution ------------------------------------------------------
    def commit(self) -> None:
        """Keep everything; the transaction ends."""
        self._ensure_active()
        self._finish("committed")

    def rollback(self) -> None:
        """Restore the entry state for every scoped extent/object."""
        self._ensure_active()
        db = self._db
        with _span("rollback", scope="transaction"):
            with db._commit_lock:
                extents = scope_extents(db, self.effect)
                ee, oe = db.ee, db.oe
                for extent in extents:
                    prior = self._entry_ee.members(extent)
                    current = ee.members(extent)
                    added = current - prior
                    if added:
                        oe = oe.without_objects(added)
                    if current != prior:
                        ee = ee.with_members(extent, prior)
                    for oid in prior:
                        entry_rec = self._entry_oe.get(oid)
                        if oe.get(oid) is not entry_rec:
                            oe = oe.with_object(oid, entry_rec)
                db.ee = ee
                db.oe = oe
            # definitions added inside the transaction are removed; the
            # dicts are restored wholesale (defs are never huge) and the
            # DE version is bumped so compiled plans against them retire
            db._defs_version += 1
            db._definitions.clear()
            db._definitions.update(self._entry_defs)
            db._def_types.clear()
            db._def_types.update(self._entry_def_types)
            db.machine.defs = db._definitions
            # the statements this undid were individually journalled;
            # only a full record can express their un-doing
            db._wal_log_unattributed("rollback(transaction)")
            if _OBS.enabled:
                _METRICS.counter("rollbacks_total", scope="transaction").inc()
        self._finish("rolled_back")

    # -- internals -------------------------------------------------------
    def _ensure_active(self) -> None:
        if not self._active:
            raise ReproError("transaction is not active")

    def _finish(self, outcome: str) -> None:
        self._active = False
        if self._db._active_txn is self:
            self._db._active_txn = None
        if _OBS.enabled:
            _METRICS.counter("transactions_total", outcome=outcome).inc()
