"""A process-local metrics registry: counters, gauges and histograms.

The shapes follow the Prometheus data model (a metric is a *name* plus
a set of *label* key/values; histograms keep cumulative buckets) so
:mod:`repro.obs.export` can render the standard text format, but there
is no wire protocol here — everything is plain in-process Python.

Cost discipline: instrumented call sites guard every touch with the
``STATE.enabled`` flag (:mod:`repro.obs._state`), so a disabled
pipeline never reaches this module at all.  When enabled, the get-or-
create path is one dict lookup on an interned ``(name, labels)`` key.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

# The Prometheus exposition charsets.  Enforced at registration time so
# a bad name fails at the call site that minted it, not as a silently
# unscrapable exposition page hours later.
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _validate_names(name: str, labels: LabelKey) -> None:
    """Reject names the Prometheus text format cannot carry."""
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    for key, _ in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(
                f"metric {name!r}: invalid label name {key!r}: must match "
                "[a-zA-Z_][a-zA-Z0-9_]*"
            )

# Exponential latency buckets in seconds: 10 µs … 10 s.  Chosen to
# resolve both a single reduction step (~µs) and a full exhaustive
# exploration (~s) on the same scale.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (events, steps, rule firings)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (extent sizes, live objects)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """A distribution: count/sum/min/max plus cumulative buckets.

    ``observe`` is the only write path; ``bounds`` are upper bounds of
    the non-infinity buckets (the +Inf bucket is implicit — it always
    equals ``count``).
    """

    name: str
    labels: LabelKey = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) from the buckets.

        Linear interpolation within the covering bucket, the same
        scheme Prometheus's ``histogram_quantile`` uses, clamped to the
        observed ``[min, max]`` so tails never extrapolate past real
        data.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        rank = q * self.count
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in zip(self.bounds, self.counts):
            if cum >= rank:
                in_bucket = cum - prev_cum
                if in_bucket <= 0:
                    est = bound
                else:
                    frac = (rank - prev_cum) / in_bucket
                    est = prev_bound + (bound - prev_bound) * frac
                return min(max(est, self.min), self.max)
            prev_bound, prev_cum = bound, cum
        # rank falls in the implicit +Inf bucket
        return self.max


Metric = Counter | Gauge | Histogram


class Registry:
    """Get-or-create storage for every metric in the process.

    Metrics are identified by ``(kind, name, labels)``; asking twice
    returns the same object, so call sites never hold references across
    a :meth:`reset`.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, LabelKey], Metric] = {}
        # get-or-create must be atomic: two scheduler workers asking
        # for the same metric must share one object, not race two
        self._lock = threading.Lock()

    # -- accessors -------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = ("counter", name, _label_key(labels))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                _validate_names(name, key[2])
                m = self._metrics[key] = Counter(name, key[2])
        return m  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = ("gauge", name, _label_key(labels))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                _validate_names(name, key[2])
                m = self._metrics[key] = Gauge(name, key[2])
        return m  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        *,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                _validate_names(name, key[2])
                m = self._metrics[key] = Histogram(name, key[2], bounds)
        return m  # type: ignore[return-value]

    # -- introspection ---------------------------------------------------
    def collect(self) -> list[Metric]:
        """Every live metric, sorted by (name, labels) for stable output."""
        return sorted(
            self._metrics.values(), key=lambda m: (m.name, m.labels)
        )

    def counter_values(self, name: str) -> dict[LabelKey, float]:
        """All label-variants of one counter family: labels → value."""
        return {
            m.labels: m.value
            for (kind, n, _), m in self._metrics.items()
            if kind == "counter" and n == name
        }

    def value(self, name: str, **labels: str) -> float:
        """The current value of a counter/gauge, 0.0 if never touched."""
        for kind in ("counter", "gauge"):
            m = self._metrics.get((kind, name, _label_key(labels)))
            if m is not None:
                return m.value  # type: ignore[union-attr]
        return 0.0

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-wide default registry every instrumented call site uses.
REGISTRY = Registry()
