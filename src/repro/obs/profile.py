"""Per-operator query profiles: the data model behind ``.explain analyze``.

A profiled execution of a compiled plan produces three layers:

* :class:`OpDescr` — the *static* side, one record per plan operator
  (scan, filter, hash join, emit, nested comprehension), created by the
  compiler in profile mode.  Each carries the cost model's **estimated**
  output cardinality, so the profile can hold estimate and actual side
  by side — the data feed a cost-based replanner needs.
* :class:`ProfileRun` — the *dynamic* side, two flat arrays (call
  counts and inclusive wall-times) indexed by operator id, written by
  the per-operator wrappers the compiler installs.  Kept deliberately
  dumb: the hot path does one list-index increment and two clock reads
  per operator invocation.
* :class:`QueryProfile` — the joined result: a tree of
  :class:`ProfileNode` rows (estimated rows, actual rows, misestimate
  ratio, calls, inclusive/self time), a summary dict, and JSON-safe
  :meth:`~QueryProfile.profile_dict` / human :meth:`~QueryProfile.render`
  presentations.

This module is a **leaf**: stdlib imports only, so the compiler, the
engine and the database can all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_LABEL_WIDTH = 44


def _short(text: str, width: int = 120) -> str:
    text = " ".join(str(text).split())
    return text if len(text) <= width else text[: width - 1] + "…"


@dataclass
class OpDescr:
    """One plan operator, as the compiler described it.

    ``rows_from`` is the id of the operator whose *call count* equals
    this operator's output row count — for a chain operator that is the
    next operator downstream, for the last one (emit) it is itself.
    ``parent`` reflects the actual call nesting, so inclusive times
    subtract correctly.
    """

    op_id: int
    parent: int | None
    kind: str  # result | comp | scan | filter | hash-join | emit
    label: str
    est_rows: float
    rows_from: int
    extra: dict = field(default_factory=dict)


class ProfileRun:
    """The dynamic counters of one instrumented plan execution."""

    __slots__ = ("rows", "times", "scans", "index_lookups")

    def __init__(self, n_ops: int) -> None:
        self.rows = [0] * n_ops
        self.times = [0.0] * n_ops
        self.scans = 0
        self.index_lookups = 0


@dataclass
class ProfileNode:
    """One rendered row of the profile tree (estimate vs actual)."""

    op_id: int
    parent: int | None
    kind: str
    label: str
    est_rows: float
    rows_in: int
    rows_out: int
    time_s: float
    self_time_s: float
    misestimate: float | None  # actual/estimated; None when no estimate basis

    def as_dict(self) -> dict:
        return {
            "op_id": self.op_id,
            "parent": self.parent,
            "kind": self.kind,
            "label": self.label,
            "est_rows": self.est_rows,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "time_ms": self.time_s * 1e3,
            "self_time_ms": self.self_time_s * 1e3,
            "misestimate": self.misestimate,
        }


def _ratio(actual: int, est: float) -> float | None:
    if est > 0:
        return actual / est
    return 1.0 if actual == 0 else None


def misestimate_percentile(
    nodes: "list[ProfileNode]", q: float = 0.9
) -> float:
    """The ``q``-percentile misestimate factor across a plan's nodes.

    The factor is symmetric — ``max(actual/est, est/actual)`` — so a
    10× *under*-estimate scores the same as a 10× *over*-estimate, and
    a node with no estimate basis (``misestimate is None``) is scored
    at the benchmark's worst observed factor rather than skipped.
    Returns 1.0 for an empty plan (every estimate exact).  This is the
    quality gate the optimizer benchmark's ``misestimate_p90`` uses.
    """
    factors: list[float] = []
    worst = 1.0
    missing = 0
    for n in nodes:
        r = n.misestimate
        if r is None:
            missing += 1
            continue
        f = max(r, 1.0 / r) if r > 0 else 1.0
        factors.append(f)
        worst = max(worst, f)
    factors.extend([worst] * missing)
    if not factors:
        return 1.0
    factors.sort()
    pos = min(len(factors) - 1, int(q * len(factors)))
    return factors[pos]


def build_nodes(
    ops, run: ProfileRun, *, result_rows: int | None = None
) -> list[ProfileNode]:
    """Join static operator descriptions with one run's counters."""
    child_time: dict[int, float] = {}
    for op in ops:
        if op.parent is not None:
            child_time[op.parent] = (
                child_time.get(op.parent, 0.0) + run.times[op.op_id]
            )
    nodes: list[ProfileNode] = []
    for op in ops:
        rows_in = run.rows[op.op_id]
        rows_out = run.rows[op.rows_from]
        if op.kind == "result" and result_rows is not None:
            rows_out = result_rows
        t = run.times[op.op_id]
        nodes.append(
            ProfileNode(
                op_id=op.op_id,
                parent=op.parent,
                kind=op.kind,
                label=op.label,
                est_rows=op.est_rows,
                rows_in=rows_in,
                rows_out=rows_out,
                time_s=t,
                self_time_s=max(0.0, t - child_time.get(op.op_id, 0.0)),
                misestimate=_ratio(rows_out, op.est_rows),
            )
        )
    return nodes


@dataclass
class QueryProfile:
    """Everything ``.explain analyze`` learned about one execution."""

    query: str
    engine: str  # "compiled" | "reduction"
    elapsed_s: float
    fuel: int  # budget fuel consumed (compiled ops / machine steps)
    effect: str
    est_cost: float
    actual_steps: int
    nodes: list[ProfileNode] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    value: object = field(default=None, repr=False)

    def profile_dict(self) -> dict:
        """The machine-readable profile (JSON round-trip safe)."""
        return {
            "query": self.query,
            "engine": self.engine,
            "elapsed_ms": self.elapsed_s * 1e3,
            "fuel": self.fuel,
            "effect": self.effect,
            "est_cost": self.est_cost,
            "actual_steps": self.actual_steps,
            "nodes": [n.as_dict() for n in self.nodes],
            "summary": self.summary,
        }

    # -- human rendering -------------------------------------------------
    def render(self) -> str:
        lines = [
            f"profile : {self.engine} engine — "
            f"{self.elapsed_s * 1e3:.3f} ms, fuel {self.fuel}, "
            f"effect {self.effect or '∅'}",
            f"query   : {_short(self.query, 100)}",
            f"cost    : estimated {self.est_cost:.0f} steps, "
            f"actual {self.actual_steps}",
        ]
        for key, val in sorted(self.summary.items()):
            if key in ("rules", "plan_notes"):
                continue
            lines.append(f"{key:<8}: {val}")
        if self.nodes:
            lines.append(
                f"{'operator':<{_LABEL_WIDTH}} "
                f"{'est rows':>10} {'actual':>8} {'ratio':>7} "
                f"{'calls':>7} {'ms':>9} {'self ms':>9}"
            )
            depth = {
                n.op_id: (0 if n.parent is None else -1) for n in self.nodes
            }
            by_id = {n.op_id: n for n in self.nodes}

            def _depth(op_id: int) -> int:
                if depth[op_id] < 0:
                    depth[op_id] = _depth(by_id[op_id].parent) + 1
                return depth[op_id]

            for n in self.nodes:
                d = _depth(n.op_id)
                label = _short("  " * d + n.label, _LABEL_WIDTH)
                ratio = (
                    "   inf" if n.misestimate is None
                    else f"{n.misestimate:5.2f}x"
                )
                lines.append(
                    f"{label:<{_LABEL_WIDTH}} "
                    f"{n.est_rows:>10.1f} {n.rows_out:>8} {ratio:>7} "
                    f"{n.rows_in:>7} {n.time_s * 1e3:>9.3f} "
                    f"{n.self_time_s * 1e3:>9.3f}"
                )
        rules = self.summary.get("rules")
        if rules:
            lines.append("rules fired:")
            for rule, n in sorted(rules.items(), key=lambda kv: (-kv[1], kv[0])):
                lines.append(f"  {rule:<20}{n:>7}")
        notes = self.summary.get("plan_notes")
        if notes:
            for note in notes:
                lines.append(f"note    : {note}")
        return "\n".join(lines)
