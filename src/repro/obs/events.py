"""A typed event stream for reduction steps.

Every committed step of the Figure 2/4 machine emits one
:class:`ReductionEvent` carrying exactly what the paper's judgement
shows: the rule name, the effect label ε, the redex depth (how far
inside the evaluation context ℰ the rule fired) and the extent sizes
after the step.  The derivation renderer
(:mod:`repro.semantics.tracing`), the JSONL exporter and the shell's
``.trace --json`` all consume this one stream instead of re-walking
steps themselves.

Delivery is via *sinks* — plain append-targets registered in
``_SINKS``:

* enabling instrumentation globally attaches the process-wide
  :data:`STREAM`;
* :func:`capture` attaches a private list for the duration of a
  ``with`` block (how the tracer collects one derivation without
  turning global instrumentation on).

With no sinks attached, :func:`emit_step` returns before constructing
the event — a disabled pipeline allocates nothing here.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.effects.algebra import Effect
    from repro.db.store import ExtentEnv


@dataclass(frozen=True, slots=True)
class ReductionEvent:
    """One machine step, as data."""

    rule: str
    effect: "Effect"
    depth: int
    extents: tuple[tuple[str, int], ...]

    def effect_label(self) -> str:
        """ε rendered the way the paper writes it ("∅" when empty)."""
        return "∅" if self.effect.is_empty() else str(self.effect)


class EventStream:
    """The global buffer of reduction events (bounded, dropping-new)."""

    def __init__(self, limit: int = 200_000) -> None:
        self.events: list[ReductionEvent] = []
        self.limit = limit
        self.dropped = 0

    def append(self, event: ReductionEvent) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ReductionEvent]:
        return iter(self.events)


STREAM = EventStream()

# Active delivery targets.  A sink is anything with ``append``; the
# machine checks ``active()`` before building an event at all.
_SINKS: list[object] = []


def active() -> bool:
    """Is anyone listening?  The machine's pre-allocation guard."""
    return bool(_SINKS)


def emit(event: ReductionEvent) -> None:
    for sink in _SINKS:
        sink.append(event)  # type: ignore[attr-defined]


def emit_step(rule: str, effect: "Effect", depth: int, ee: "ExtentEnv") -> None:
    """Build and deliver one step event — only if a sink is attached."""
    if not _SINKS:
        return
    emit(
        ReductionEvent(
            rule=rule,
            effect=effect,
            depth=depth,
            extents=tuple(
                (e, len(ee.members(e))) for e in sorted(ee.names())
            ),
        )
    )


@contextmanager
def capture() -> Iterator[list[ReductionEvent]]:
    """Collect every event emitted inside the block into a fresh list.

    Works whether or not global instrumentation is enabled — this is
    how a single derivation is recorded without touching global state.
    """
    sink: list[ReductionEvent] = []
    _SINKS.append(sink)
    try:
        yield sink
    finally:
        _SINKS.remove(sink)


def attach_global() -> None:
    """Route events into :data:`STREAM` (idempotent)."""
    if STREAM not in _SINKS:
        _SINKS.append(STREAM)


def detach_global() -> None:
    if STREAM in _SINKS:
        _SINKS.remove(STREAM)
