"""Flight recorder: an always-on black box for post-mortem forensics.

The obs tracer/metrics layer is opt-in because instrumentation costs;
the flight recorder inverts the trade.  It is **always on**, but all it
does on the happy path is append a small dict to a bounded
:class:`collections.deque` — no I/O, no JSON, no locks on read-mostly
state beyond one short critical section.  When something goes wrong
(unhandled query error, WAL detach, budget exhaustion, recovery
replay, injected crash), the recent history is dumped as JSONL so the
failure ships with its own context: the commits (and their static
effects, Figure 3) that preceded it, the WAL LSNs involved, the faults
injected, the scheduler admissions in flight.

Design points:

* Bounded: a ring of ``capacity`` events (default 512).  Overflow drops
  the oldest and counts ``dropped`` so dumps are honest about gaps.
* Timestamps are ``time.monotonic()`` deltas plus one wall-clock
  annotation per dump header (same discipline as :mod:`repro.obs.spans`).
* ``crash_dump`` never raises: diagnostics must not break the primary
  path, so ``OSError`` during the dump is swallowed (and counted).
* Leaf module: stdlib only, importable from anywhere in the stack.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

#: File name used for automatic crash dumps inside a database directory.
DUMP_FILE = "flight.jsonl"


class FlightRecorder:
    """A bounded ring buffer of recent events with JSONL dumping."""

    def __init__(self, capacity: int = 512, *, dump_dir: str | None = None):
        self.capacity = capacity
        self.enabled = True
        #: default directory for :meth:`crash_dump` when the caller has none
        self.dump_dir = dump_dir or os.environ.get("REPRO_FLIGHT_DIR") or None
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._dumps = 0
        self._dump_errors = 0
        self._last_dump: str | None = None
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------
    def record(self, category: str, **fields) -> None:
        """Append one event; near-free, safe from any thread."""
        if not self.enabled:
            return
        ev = {"seq": 0, "t": time.monotonic(), "category": category}
        ev.update(fields)
        with self._lock:
            self._seq += 1
            ev["seq"] = self._seq
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(ev)

    # -- inspection ------------------------------------------------------
    def events(self) -> list[dict]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            return [dict(ev) for ev in self._ring]

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "recorded": self._seq,
                "dropped": self._dropped,
                "dumps": self._dumps,
                "dump_errors": self._dump_errors,
                "last_dump": self._last_dump,
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0
            self._dropped = 0
            self._dumps = 0
            self._dump_errors = 0
            self._last_dump = None

    # -- dumping ---------------------------------------------------------
    def dump(self, dest: str, *, reason: str = "manual") -> str:
        """Write the ring to ``dest`` as JSONL (header line + events).

        The whole dump is a single ``write`` of pre-joined text so a
        concurrent dump from another thread cannot tear lines.
        """
        with self._lock:
            events = [dict(ev) for ev in self._ring]
            header = {
                "category": "flight-header",
                "reason": reason,
                "wall": time.time(),
                "events": len(events),
                "recorded": self._seq,
                "dropped": self._dropped,
            }
        lines = [json.dumps(header, default=str)]
        lines.extend(json.dumps(ev, default=str) for ev in events)
        text = "\n".join(lines) + "\n"
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(text)
        with self._lock:
            self._dumps += 1
            self._last_dump = dest
        return dest

    def crash_dump(
        self,
        reason: str,
        *,
        error: BaseException | None = None,
        directory: str | None = None,
        filename: str | None = None,
    ) -> str | None:
        """Best-effort automatic dump; returns the path or ``None``.

        Records a terminal ``crash`` event first, so the dump's last
        line names what killed the run.  Swallows ``OSError`` — the
        black box must never turn a recoverable failure into a new one.
        ``filename`` overrides the default ``flight.jsonl`` so dumps
        about a *specific* casualty (a quarantined replica) survive
        later generic dumps into the same directory.
        """
        if not self.enabled:
            return None
        target_dir = directory or self.dump_dir
        if target_dir is None:
            return None
        self.record(
            "crash",
            reason=reason,
            error=(f"{type(error).__name__}: {error}" if error else None),
        )
        dest = os.path.join(target_dir, filename or DUMP_FILE)
        try:
            return self.dump(dest, reason=reason)
        except OSError:
            with self._lock:
                self._dump_errors += 1
            return None


#: The process-wide recorder every subsystem feeds.
RECORDER = FlightRecorder()


def record(category: str, **fields) -> None:
    """Module-level shorthand for ``RECORDER.record``."""
    RECORDER.record(category, **fields)


def crash_dump(
    reason: str,
    *,
    error: BaseException | None = None,
    directory: str | None = None,
    filename: str | None = None,
) -> str | None:
    """Module-level shorthand for ``RECORDER.crash_dump``."""
    return RECORDER.crash_dump(
        reason, error=error, directory=directory, filename=filename
    )


def configure(
    *,
    capacity: int | None = None,
    dump_dir: str | None = None,
    enabled: bool | None = None,
) -> FlightRecorder:
    """Adjust the process-wide recorder (tests, shell, embedders)."""
    if capacity is not None and capacity != RECORDER.capacity:
        RECORDER.capacity = capacity
        with RECORDER._lock:
            RECORDER._ring = deque(RECORDER._ring, maxlen=capacity)
    if dump_dir is not None:
        RECORDER.dump_dir = dump_dir or None
    if enabled is not None:
        RECORDER.enabled = enabled
    return RECORDER
