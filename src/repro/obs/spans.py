"""Nested span tracing with a context-manager API.

A span is a named, timed region of the pipeline::

    with span("typecheck", query=src):
        ...

Spans nest: entering a span while another is open records the new one
as a child, so one ``db.run`` produces a small tree —
``query → parse → typecheck → eval → commit`` — whose wall-times the
exporters (:mod:`repro.obs.export`) render as a profile.

When instrumentation is off (:mod:`repro.obs._state`), :func:`span`
returns a shared do-nothing singleton: no allocation, no clock read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs._state import STATE

#: Keep at most this many finished root spans; beyond it the oldest are
#: dropped (the tracer is a diagnostic buffer, not a database).
MAX_FINISHED_ROOTS = 10_000


@dataclass
class Span:
    """One timed region: name, attributes, children, duration.

    ``start``/``end`` are :func:`time.monotonic` readings, so a span's
    duration can never go negative under wall-clock adjustments (NTP
    slew, DST, manual changes).  ``wall`` is the wall-clock time at
    entry, kept purely as an annotation for correlating exports with
    external logs — never subtracted from anything.
    """

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    wall: float = 0.0
    children: list["Span"] = field(default_factory=list)
    _tracer: "Tracer | None" = field(default=None, repr=False)

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes after entry (e.g. results only known later)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._tracer is not None:
            self._tracer.finish(self)
        return False


class _NullSpan:
    """The disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Owns the open-span stack and the finished-root buffer.

    The open-span stack is **per thread**: scheduler workers each build
    their own span tree, so one worker's ``eval`` never nests under
    another worker's ``query``.  The finished-root buffer is shared
    (appended under a lock) so exporters see every thread's roots.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self.finished: list[Span] = []
        self._finished_lock = threading.Lock()

    @property
    def stack(self) -> list[Span]:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def begin(self, name: str, attrs: dict[str, object]) -> Span:
        sp = Span(
            name,
            attrs,
            start=time.monotonic(),
            wall=time.time(),
            _tracer=self,
        )
        self.stack.append(sp)
        return sp

    def finish(self, sp: Span) -> None:
        sp.end = time.monotonic()
        stack = self.stack
        # Tolerate out-of-order exits (an exception unwinding through
        # several spans closes them innermost-first anyway).
        if sp in stack:
            while stack and stack[-1] is not sp:
                stack.pop()
            stack.pop()
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._finished_lock:
                self.finished.append(sp)
                if len(self.finished) > MAX_FINISHED_ROOTS:
                    del self.finished[: -MAX_FINISHED_ROOTS]

    def current(self) -> Span | None:
        stack = self.stack
        return stack[-1] if stack else None

    def reset(self) -> None:
        self.stack.clear()
        with self._finished_lock:
            self.finished.clear()


#: The process-wide tracer behind :func:`span`.
TRACER = Tracer()


def span(name: str, /, **attrs: object) -> Span | _NullSpan:
    """Open a span on the global tracer — or a no-op when disabled.

    ``name`` is positional-only so ``name=…`` stays usable as an
    attribute key.
    """
    if not STATE.enabled:
        return NULL_SPAN
    return TRACER.begin(name, attrs)
