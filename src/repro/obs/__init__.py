"""repro.obs — observability for the whole pipeline.

Structured spans, a metrics registry and a reduction-event stream, all
process-local and all **off by default**: every instrumented call site
in the parser, type/effect checkers, machine, optimizer and database
guards itself on one flag, so the disabled hot path pays a single
attribute load.

Usage::

    import repro

    repro.instrument()                 # or repro.obs.enable()
    db = repro.open_database(ODL)
    db.run("{ p.name | p <- Persons }")
    print(repro.obs.export.summary())
    repro.obs.export.export_jsonl("run.jsonl")

What gets recorded (see ``docs/OBSERVABILITY.md`` for the full map back
to the paper's figures):

* spans — ``query → parse → typecheck → effects/optimize → eval →
  commit`` with wall-times and attributes;
* counters — ``rule_fired_total{rule=…}`` (Figure 2/4 rule firings),
  ``rewrite_attempts_total``/``rewrite_hits_total{rule=…}`` (§4
  rewrites), parser token counts, explorer path counts, fuel
  exhaustion;
* histograms — evaluation step counts, explorer branching factors,
  inferred effect sizes;
* events — one :class:`~repro.obs.events.ReductionEvent` per machine
  step (rule, ε, redex depth, extent sizes).
"""

from __future__ import annotations

from repro.obs import events, export, flight, profile
from repro.obs._state import STATE
from repro.obs.events import ReductionEvent, STREAM, capture
from repro.obs.flight import FlightRecorder, RECORDER
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    REGISTRY,
    Registry,
)
from repro.obs.profile import ProfileNode, QueryProfile
from repro.obs.spans import NULL_SPAN, Span, TRACER, Tracer, span

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "NULL_SPAN",
    "ProfileNode",
    "QueryProfile",
    "RECORDER",
    "REGISTRY",
    "ReductionEvent",
    "Registry",
    "STREAM",
    "Span",
    "TRACER",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "enabled",
    "events",
    "export",
    "flight",
    "profile",
    "reset",
    "span",
]


def enable() -> None:
    """Turn instrumentation on process-wide."""
    STATE.enabled = True
    events.attach_global()


def disable() -> None:
    """Turn instrumentation off (collected data is kept until reset)."""
    STATE.enabled = False
    events.detach_global()


def enabled() -> bool:
    """Is instrumentation currently on?"""
    return STATE.enabled


def reset() -> None:
    """Drop everything collected so far (flag state is unchanged)."""
    REGISTRY.reset()
    TRACER.reset()
    STREAM.clear()
    RECORDER.clear()
