"""Exporters: JSONL, Prometheus text format, and a human summary.

JSONL is the machine-readable archive — one JSON object per line, each
tagged with a ``kind`` (``span`` | ``event`` | ``counter`` | ``gauge``
| ``histogram``) so a consumer can stream-filter without parsing the
whole file.  Spans are flattened (children become their own lines with
a ``parent`` back-reference) to keep every line self-describing.

The Prometheus renderer emits the standard text exposition format for
the registry only (spans and events have no Prometheus analogue).
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable

from repro.obs.events import ReductionEvent, STREAM, EventStream
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    REGISTRY,
    Registry,
)
from repro.obs.spans import Span, TRACER, Tracer


# -- dict shapes ----------------------------------------------------------
def span_dicts(sp: Span, parent: str | None = None) -> Iterable[dict]:
    """One span and its subtree, flattened, parents before children."""
    yield {
        "kind": "span",
        "name": sp.name,
        "duration_ms": sp.duration * 1e3,
        "wall": sp.wall,
        "attrs": {k: _plain(v) for k, v in sp.attrs.items()},
        "parent": parent,
        "children": len(sp.children),
    }
    for child in sp.children:
        yield from span_dicts(child, parent=sp.name)


def event_dict(ev: ReductionEvent) -> dict:
    return {
        "kind": "event",
        "rule": ev.rule,
        "effect": ev.effect_label(),
        "depth": ev.depth,
        "extents": {name: size for name, size in ev.extents},
    }


def metric_dict(m: Metric) -> dict:
    base = {"name": m.name, "labels": dict(m.labels)}
    if isinstance(m, Counter):
        return {"kind": "counter", **base, "value": m.value}
    if isinstance(m, Gauge):
        return {"kind": "gauge", **base, "value": m.value}
    assert isinstance(m, Histogram)
    return {
        "kind": "histogram",
        **base,
        "count": m.count,
        "sum": m.total,
        "min": m.min if m.count else None,
        "max": m.max if m.count else None,
        "buckets": {str(b): c for b, c in zip(m.bounds, m.counts)},
    }


def _plain(v: object) -> object:
    """Attribute values as JSON-safe scalars."""
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    return str(v)


# -- JSONL ----------------------------------------------------------------

# Concurrent exporters (scheduler workers under run_many, a crash hook
# racing a periodic export) must not interleave lines.  Each export
# serialises everything first, then emits ONE write under this lock —
# a reader can never observe a torn or spliced JSON line.
_WRITE_LOCK = threading.Lock()


def export_jsonl(
    dest: str | IO[str],
    *,
    registry: Registry | None = None,
    tracer: Tracer | None = None,
    stream: EventStream | None = None,
) -> int:
    """Write everything collected so far as JSONL; returns line count."""
    registry = REGISTRY if registry is None else registry
    tracer = TRACER if tracer is None else tracer
    stream = STREAM if stream is None else stream
    records: list[dict] = []
    for root in tracer.finished:
        records.extend(span_dicts(root))
    records.extend(event_dict(ev) for ev in stream)
    records.extend(metric_dict(m) for m in registry.collect())
    text = "".join(
        json.dumps(rec, ensure_ascii=False) + "\n" for rec in records
    )
    if isinstance(dest, str):
        with _WRITE_LOCK:
            with open(dest, "w", encoding="utf-8") as fp:
                fp.write(text)
    else:
        with _WRITE_LOCK:
            dest.write(text)
    return len(records)


def read_jsonl(path: str) -> list[dict]:
    """Parse a JSONL export back into dicts (round-trip helper)."""
    out: list[dict] = []
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# -- Prometheus text format -----------------------------------------------
def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_prom_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: Registry | None = None) -> str:
    """The standard ``# TYPE`` + sample-line exposition format."""
    registry = REGISTRY if registry is None else registry
    lines: list[str] = []
    typed: set[str] = set()
    for m in registry.collect():
        kind = (
            "counter" if isinstance(m, Counter)
            else "gauge" if isinstance(m, Gauge)
            else "histogram"
        )
        if m.name not in typed:
            typed.add(m.name)
            lines.append(f"# TYPE {m.name} {kind}")
        if isinstance(m, (Counter, Gauge)):
            lines.append(f"{m.name}{_prom_labels(m.labels)} {m.value}")
        else:
            assert isinstance(m, Histogram)
            # bucket counts are already cumulative (observe() increments
            # every bucket whose bound covers the value)
            for bound, c in zip(m.bounds, m.counts):
                le = 'le="%s"' % bound
                lines.append(f"{m.name}_bucket{_prom_labels(m.labels, le)} {c}")
            inf = 'le="+Inf"'
            lines.append(
                f"{m.name}_bucket{_prom_labels(m.labels, inf)} {m.count}"
            )
            lines.append(f"{m.name}_sum{_prom_labels(m.labels)} {m.total}")
            lines.append(f"{m.name}_count{_prom_labels(m.labels)} {m.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human summary --------------------------------------------------------
def _span_rollup(tracer: Tracer) -> dict[str, tuple[int, float]]:
    """name → (count, total seconds), over every recorded span."""
    rollup: dict[str, tuple[int, float]] = {}

    def walk(sp: Span) -> None:
        n, t = rollup.get(sp.name, (0, 0.0))
        rollup[sp.name] = (n + 1, t + sp.duration)
        for child in sp.children:
            walk(child)

    for root in tracer.finished:
        walk(root)
    return rollup


def summary(
    *,
    registry: Registry | None = None,
    tracer: Tracer | None = None,
    stream: EventStream | None = None,
) -> str:
    """A compact, aligned table of everything collected so far."""
    registry = REGISTRY if registry is None else registry
    tracer = TRACER if tracer is None else tracer
    stream = STREAM if stream is None else stream
    lines: list[str] = []

    rollup = _span_rollup(tracer)
    if rollup:
        lines.append("spans (name, count, total ms):")
        for name, (n, total) in sorted(
            rollup.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(f"  {name:<24} {n:>7}  {total * 1e3:>10.2f}")

    counters = [m for m in registry.collect() if isinstance(m, Counter)]
    if counters:
        lines.append("counters:")
        for m in counters:
            label = "".join(f" {k}={v}" for k, v in m.labels)
            lines.append(f"  {m.name + label:<40} {m.value:>12g}")

    hists = [m for m in registry.collect() if isinstance(m, Histogram)]
    if hists:
        lines.append("histograms (count, mean, max):")
        for m in hists:
            label = "".join(f" {k}={v}" for k, v in m.labels)
            mx = m.max if m.count else 0.0
            lines.append(
                f"  {m.name + label:<32} {m.count:>8} {m.mean:>12.4g} "
                f"{mx:>12.4g}"
            )

    if len(stream):
        lines.append(f"events: {len(stream)} recorded"
                     + (f", {stream.dropped} dropped" if stream.dropped else ""))
    return "\n".join(lines) if lines else "(nothing recorded)"
