"""The process-wide observability switch.

A single mutable flag object, imported by every instrumented call site
as ``from repro.obs._state import STATE``.  The hot path pays exactly
one attribute load (``STATE.enabled``) when instrumentation is off —
no dict lookups, no allocations, no function calls.

The flag lives in its own leaf module so that :mod:`repro.obs.metrics`,
:mod:`repro.obs.spans` and :mod:`repro.obs.events` can all share it
without importing each other (or the package ``__init__``).
"""

from __future__ import annotations


class ObsFlag:
    """Mutable on/off switch; toggled via :func:`repro.obs.enable`."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


STATE = ObsFlag()
