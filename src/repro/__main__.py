"""``python -m repro`` — launch the interactive IOQL shell."""

from repro.shell import main

if __name__ == "__main__":
    raise SystemExit(main())
