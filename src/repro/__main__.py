"""``python -m repro`` — launch the interactive IOQL shell.

Flags (parsed by :func:`repro.shell.main`):

* ``--no-obs`` — lock observability instrumentation off for the whole
  session (it is already off by default; the flag additionally
  disables the ``.stats on`` opt-in).

Any remaining argument is an ODL schema file to load at startup.
"""

from repro.shell import main

if __name__ == "__main__":
    raise SystemExit(main())
