"""IOQL types (§3.2).

The paper's type grammar is::

    σ ::= φ | set(σ) | ⟨l₁:σ₁, …, lₖ:σₖ⟩
    φ ::= int | bool | C            (data-model types, §2)

plus function types ``σ⃗ →ᵋ σ′`` for definitions and methods, where the
effect annotation ε is the §4 extension (∅ for the plain Figure 1
system).

Extensions (documented in DESIGN.md): a ``string`` primitive type —
required to express the paper's own §1 examples (``"Jack"``/``"Jill"``)
— which behaves exactly like ``int``/``bool`` in every rule.

All types are immutable, hashable dataclasses; record fields are stored
in the order written.  Following the paper's record-subtyping rule, two
record types are comparable only when they have the *same labels in the
same order* (depth subtyping only; Note 3 points out width subtyping as
an easy extension, which we expose as an opt-in flag on the subtype
check, see :mod:`repro.model.subtyping`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.effects.algebra import EMPTY, Effect

OBJECT: str = "Object"
"""Name of the root class; superclass of all classes (§2)."""


class Type:
    """Abstract base of all IOQL types."""

    __slots__ = ()

    def is_primitive(self) -> bool:
        """True for ``int``, ``bool`` and the ``string`` extension."""
        return isinstance(self, (IntType, BoolType, StringType))

    def class_names(self) -> frozenset[str]:
        """All class names mentioned anywhere in this type."""
        return frozenset()


@dataclass(frozen=True, slots=True)
class NeverType(Type):
    """The bottom type ⊥ — subtype of every type; checker-internal.

    The paper's value grammar contains the empty set ``{}``, and the
    (False comp) / (Triv comp) reduction rules produce ``{}`` from a
    comprehension of *any* set type, so subject reduction (Theorem 1)
    forces ``{}`` to be typable at a subtype of every set type.  We
    realise the paper's implicit polymorphic empty-set axiom
    algorithmically by giving ``{}`` the type ``set(⊥)`` and making
    ``set`` covariant (see :mod:`repro.model.subtyping`).  ⊥ never
    appears in user-written schemas or definitions.
    """

    def __str__(self) -> str:
        return "never"


@dataclass(frozen=True, slots=True)
class IntType(Type):
    """The primitive type ``int``."""

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class BoolType(Type):
    """The primitive type ``bool``."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True, slots=True)
class StringType(Type):
    """The primitive type ``string`` (extension; see module docstring)."""

    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True, slots=True)
class ClassType(Type):
    """A class name ``C`` used as a type."""

    name: str

    def __str__(self) -> str:
        return self.name

    def class_names(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True, slots=True)
class SetType(Type):
    """The collection type ``set(σ)``."""

    elem: Type

    def __str__(self) -> str:
        return f"set<{self.elem}>"

    def class_names(self) -> frozenset[str]:
        return self.elem.class_names()


@dataclass(frozen=True, slots=True)
class BagType(Type):
    """The collection type ``bag(σ)`` — duplicates allowed, unordered.

    §3.1 extension ("we could have easily added others (bags, lists)").
    Bag iteration is non-deterministic like set iteration; bag union is
    additive (multiset sum).
    """

    elem: Type

    def __str__(self) -> str:
        return f"bag<{self.elem}>"

    def class_names(self) -> frozenset[str]:
        return self.elem.class_names()


@dataclass(frozen=True, slots=True)
class ListType(Type):
    """The collection type ``list(σ)`` — ordered, duplicates allowed.

    §3.1 extension.  List iteration is *ordered* and therefore
    deterministic — the property §6.2 credits for XQuery's determinism;
    the ⊢′ system exploits it (no ``nonint`` obligation for list
    generators).
    """

    elem: Type

    def __str__(self) -> str:
        return f"list<{self.elem}>"

    def class_names(self) -> frozenset[str]:
        return self.elem.class_names()


@dataclass(frozen=True, slots=True)
class RecordType(Type):
    """A record type ``⟨l₁:σ₁, …, lₖ:σₖ⟩`` (OQL ``struct``, unnamed).

    ``fields`` preserves the written label order; the paper's subtyping
    rule compares records positionally, label-for-label.
    """

    fields: tuple[tuple[str, Type], ...]

    def __post_init__(self) -> None:
        labels = [l for l, _ in self.fields]
        if len(labels) != len(set(labels)):
            raise ValueError(f"duplicate record labels in {labels}")

    @staticmethod
    def of(**fields: Type) -> "RecordType":
        """Convenience constructor: ``RecordType.of(name=STRING, age=INT)``."""
        return RecordType(tuple(fields.items()))

    def labels(self) -> tuple[str, ...]:
        return tuple(l for l, _ in self.fields)

    def field_type(self, label: str) -> Type | None:
        """The type of ``label``, or None if absent."""
        for l, t in self.fields:
            if l == label:
                return t
        return None

    def __str__(self) -> str:
        inner = ", ".join(f"{l}: {t}" for l, t in self.fields)
        return f"struct({inner})"

    def class_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for _, t in self.fields:
            out |= t.class_names()
        return out


@dataclass(frozen=True, slots=True)
class FuncType(Type):
    """A function type ``σ₀, …, σₖ →ᵋ σ′`` for definitions and methods.

    The ``effect`` annotation is the §4 latent effect: the effect that
    occurs when the definition/method is *applied*.  In the plain
    Figure 1 system it is ∅.
    """

    params: tuple[Type, ...]
    result: Type
    effect: Effect = field(default=EMPTY)

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        arrow = "->" if self.effect.is_empty() else f"-{self.effect}->"
        return f"({ps}) {arrow} {self.result}"

    def class_names(self) -> frozenset[str]:
        out = self.result.class_names()
        for p in self.params:
            out |= p.class_names()
        return out


INT: Type = IntType()
BOOL: Type = BoolType()
STRING: Type = StringType()
NEVER: Type = NeverType()
OBJECT_T: Type = ClassType(OBJECT)
EMPTY_SET_T: Type = SetType(NEVER)
"""The type of the empty set literal ``{}`` — ``set(⊥)``."""


def set_of(elem: Type) -> SetType:
    """Shorthand for ``SetType(elem)``."""
    return SetType(elem)


def record(fields: Iterable[tuple[str, Type]]) -> RecordType:
    """Shorthand for ``RecordType(tuple(fields))``."""
    return RecordType(tuple(fields))


def is_data_model_type(t: Type) -> bool:
    """True for the φ types of §2: primitives and class names.

    These are the only types allowed for attributes and method
    signatures in class definitions (Note 1: attribute/method types must
    be representable in the method language, so no ``set(σ)`` or record
    types inside classes).
    """
    return t.is_primitive() or isinstance(t, ClassType)
