"""Parser for the §2 class-definition grammar (an ODMG ODL fragment).

Concrete syntax::

    class C extends C′ (extent e) {
        attribute φ a;
        φ m(φ₀ x₀, …, φₘ xₘ);                      -- declaration only
        φ m(φ₀ x₀, …) native;                      -- bound to Python later
        φ m(φ₀ x₀, …) { …MJava… }                  -- inline body
        φ m(φ₀ x₀, …) effect R(C), A(D) { … }      -- §5 declared effect
    }

The paper insists every class states its superclass explicitly; so do
we (``extends Object`` for roots).  Method result/parameter types are φ
types only (Note 1); the shared type parser accepts more, and
:class:`~repro.model.schema.Schema` validation rejects the rest.
"""

from __future__ import annotations

from repro.effects.algebra import EMPTY, Atom, AccessKind, Effect
from repro.errors import ParseError
from repro.lang.lexer import TokenStream
from repro.model.schema import AttrDef, ClassDef, MethodDef, Schema
from repro.model.types import Type

_ATOM_KINDS = {"R": AccessKind.READ, "A": AccessKind.ADD, "U": AccessKind.UPDATE}


def parse_class_defs(source: str) -> list[ClassDef]:
    """Parse a sequence of class definitions."""
    from repro.lang.parser import Parser
    from repro.methods.parser import MethodBodyParser

    ts = TokenStream.of(source)
    type_parser = Parser(ts)
    out: list[ClassDef] = []
    while not ts.at_eof():
        out.append(_class_def(ts, type_parser, MethodBodyParser))
    return out


def parse_schema(source: str, *, allow_method_effects: bool = False) -> Schema:
    """Parse class definitions and build a validated :class:`Schema`."""
    return Schema(parse_class_defs(source), allow_method_effects=allow_method_effects)


def _class_def(ts: TokenStream, type_parser, body_parser_cls) -> ClassDef:
    ts.expect("class")
    name = ts.expect("IDENT").text
    ts.expect("extends")
    superclass = ts.expect("IDENT").text
    ts.expect("(")
    ts.expect("extent")
    extent = ts.expect("IDENT").text
    ts.expect(")")
    ts.expect("{")
    attrs: list[AttrDef] = []
    methods: list[MethodDef] = []
    while not ts.at("}"):
        if ts.accept("attribute"):
            t = type_parser.type_expr()
            a = ts.expect("IDENT").text
            ts.expect(";")
            attrs.append(AttrDef(a, t))
            continue
        methods.append(_method_def(ts, type_parser, body_parser_cls))
    ts.expect("}")
    return ClassDef(name, superclass, extent, tuple(attrs), tuple(methods))


def _method_def(ts: TokenStream, type_parser, body_parser_cls) -> MethodDef:
    result: Type = type_parser.type_expr()
    mname = ts.expect("IDENT").text
    ts.expect("(")
    params: list[tuple[str, Type]] = []
    if not ts.at(")"):
        while True:
            pt = type_parser.type_expr()
            px = ts.expect("IDENT").text
            params.append((px, pt))
            if not ts.accept(","):
                break
    ts.expect(")")
    effect = EMPTY
    if ts.accept("effect"):
        effect = _effect(ts)
    if ts.accept(";"):
        return MethodDef(mname, tuple(params), result, body=None, effect=effect)
    if ts.accept("native"):
        ts.expect(";")
        return MethodDef(mname, tuple(params), result, body=None, effect=effect)
    if ts.at("{"):
        body = body_parser_cls(ts).body()
        return MethodDef(mname, tuple(params), result, body=body, effect=effect)
    raise ts.error("expected ';', 'native;' or a method body")


def _effect(ts: TokenStream) -> Effect:
    """Parse ``R(C), A(D), …`` after the ``effect`` keyword."""
    atoms: list[Atom] = []
    while True:
        tok = ts.expect("IDENT")
        kind = _ATOM_KINDS.get(tok.text)
        if kind is None:
            raise ParseError(
                f"expected effect atom R/A/U, found {tok.text!r}",
                tok.line,
                tok.column,
            )
        ts.expect("(")
        cname = ts.expect("IDENT").text
        ts.expect(")")
        atoms.append(Atom(kind, cname))
        if not ts.accept(","):
            break
    return Effect(frozenset(atoms))
